"""Shared fixtures for the benchmark suite.

The FGCZ-scale deployment (the paper's Final-Remark table: 71,365
objects) takes a few seconds to synthesize, so it is built once per
session and shared by every benchmark that wants deployment-scale data.
Smaller, per-figure fixtures build fresh systems.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro import BFabric
from repro.dataimport import AffymetrixGeneChipProvider
from repro.util.clock import ManualClock
from repro.workload import DeploymentGenerator, FGCZ_JANUARY_2010


def fresh_system(path=None) -> BFabric:
    return BFabric(path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture(scope="session")
def fgcz_deployment():
    """The full January-2010 FGCZ deployment, indexed for search."""
    system = fresh_system()
    counts = DeploymentGenerator(system, seed=2010).generate(FGCZ_JANUARY_2010)
    assert counts == FGCZ_JANUARY_2010.as_paper_table()
    system.reindex_all()
    return system


@pytest.fixture
def system():
    """A fresh in-memory system with admin/scientist/expert actors."""
    sys_ = fresh_system()
    admin = sys_.bootstrap()
    scientist = sys_.add_user(admin, login="sci", full_name="Scientist")
    expert = sys_.add_user(
        admin, login="exp", full_name="Expert", role="employee"
    )
    return sys_, admin, scientist, expert


@pytest.fixture
def demo_project(system, tmp_path):
    """Project + sample + matching extracts + registered GeneChip provider."""
    sys_, admin, scientist, expert = system
    # Redirect the managed store into the test's tmp dir.
    sys_.store.root = tmp_path / "store"
    sys_.store.root.mkdir(parents=True, exist_ok=True)
    project = sys_.projects.create(scientist, "Arabidopsis light response")
    sample = sys_.samples.register_sample(
        scientist, project.id, "col0", species="Arabidopsis Thaliana"
    )
    sys_.samples.batch_register_extracts(
        scientist, sample.id,
        ["scan01 a", "scan01 b", "scan02 a", "scan02 b"],
    )
    sys_.imports.register_provider(AffymetrixGeneChipProvider("GeneChip", runs=2))
    return sys_, scientist, expert, project, sample
