"""Standalone entry point for the storage hot-path benchmarks.

Equivalent to ``python -m repro.bench`` but runnable straight from a
checkout without installing the package::

    python benchmarks/perf/run.py --scale 0.1 --out report.json
    python benchmarks/perf/run.py --validate BENCH_PR4.json
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
