"""A1 — secondary indexes on vs. off.

Design choice: every FK and declared column gets a hash index (plus a
sorted twin for ranges).  The ablation runs the deployment's dominant
query shapes with the planner allowed vs. forbidden to use indexes, and
asserts both the identical results and the expected asymmetics: indexed
equality lookups must beat full scans by a wide margin at 40k rows.
"""

import time


def _resource_query(db, workunit_id, *, indexed):
    query = db.query("data_resource").where("workunit_id", "=", workunit_id)
    if not indexed:
        query = query.without_indexes()
    return query.all()


def test_a1_same_results_either_way(fgcz_deployment):
    db = fgcz_deployment.db
    for workunit_id in (1, 100, 9999):
        indexed = _resource_query(db, workunit_id, indexed=True)
        scanned = _resource_query(db, workunit_id, indexed=False)
        key = lambda r: r["id"]
        assert sorted(indexed, key=key) == sorted(scanned, key=key)


def test_a1_planner_reports_strategies(fgcz_deployment):
    db = fgcz_deployment.db
    indexed_plan = (
        db.query("data_resource").where("workunit_id", "=", 1).explain()
    )
    scan_plan = (
        db.query("data_resource")
        .where("workunit_id", "=", 1)
        .without_indexes()
        .explain()
    )
    assert indexed_plan["strategy"].startswith("index:")
    assert scan_plan["strategy"] == "scan"
    assert indexed_plan["candidates"] < scan_plan["candidates"]


def test_a1_speedup_shape(fgcz_deployment):
    """Index-backed equality beats the scan by >=20x on the 40k table."""
    db = fgcz_deployment.db

    def timed(indexed, repeats=20):
        start = time.perf_counter()
        for i in range(repeats):
            _resource_query(db, i + 1, indexed=indexed)
        return time.perf_counter() - start

    with_index = timed(True)
    without_index = timed(False)
    assert without_index / max(with_index, 1e-9) >= 20


def test_a1_bench_indexed_lookup(benchmark, fgcz_deployment):
    db = fgcz_deployment.db
    rows = benchmark(_resource_query, db, 1, indexed=True)
    assert isinstance(rows, list)


def test_a1_bench_full_scan(benchmark, fgcz_deployment):
    db = fgcz_deployment.db
    rows = benchmark.pedantic(
        _resource_query, args=(db, 1), kwargs={"indexed": False},
        rounds=5, iterations=1,
    )
    assert isinstance(rows, list)


def test_a1_bench_range_with_sorted_index(benchmark, fgcz_deployment):
    db = fgcz_deployment.db

    def range_query():
        return (
            db.query("data_resource").where("size_bytes", ">=", 16000).count()
        )

    count = benchmark(range_query)
    assert count > 0
