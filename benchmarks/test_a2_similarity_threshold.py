"""A2 — similarity-threshold sweep for merge recommendations.

Design choice: the default detection threshold is 0.8.  The ablation
sweeps the threshold over a synthetic vocabulary with known duplicate
ground truth and reports precision/recall per setting, asserting the
expected shape: recall falls and precision rises as the threshold
climbs, with the default in the high-precision/high-recall corner.
"""

import pytest

from repro.annotations.similarity import SimilarityDetector

from test_f05_similarity_detection import build_vocabulary, duplicate_pairs


def precision_recall(threshold, rows, truth_pairs):
    detector = SimilarityDetector(threshold)
    recommended = {
        frozenset((r.keep_id, r.merge_id)) for r in detector.recommendations(rows)
    }
    if not recommended:
        return 1.0, 0.0
    true_positives = len(recommended & truth_pairs)
    return (
        true_positives / len(recommended),
        true_positives / len(truth_pairs),
    )


SWEEP = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def test_a2_shape_of_the_tradeoff():
    rows, clusters = build_vocabulary(100)
    truth = duplicate_pairs(clusters)
    curve = {t: precision_recall(t, rows, truth) for t in SWEEP}
    recalls = [curve[t][1] for t in SWEEP]
    precisions = [curve[t][0] for t in SWEEP]
    # Recall is monotonically non-increasing in the threshold.
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    # Loose thresholds over-merge: precision at 0.5 is clearly below 0.9's.
    assert precisions[0] < precisions[-2]
    # Strict thresholds miss typos: recall at 0.95 is clearly below 0.8's.
    assert curve[0.95][1] < curve[0.8][1]
    # The default sits in the good corner.
    precision_default, recall_default = curve[0.8]
    assert precision_default >= 0.9
    assert recall_default >= 0.8


def test_a2_default_beats_extremes_on_f1():
    rows, clusters = build_vocabulary(100)
    truth = duplicate_pairs(clusters)

    def f1(threshold):
        precision, recall = precision_recall(threshold, rows, truth)
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    assert f1(0.8) >= f1(0.5)
    assert f1(0.8) >= f1(0.95)


@pytest.mark.parametrize("threshold", SWEEP)
def test_a2_bench_scan_cost_by_threshold(benchmark, threshold):
    """Scan cost is threshold-independent (the comparison dominates)."""
    rows, _ = build_vocabulary(120)
    detector = SimilarityDetector(threshold)

    recommendations = benchmark.pedantic(
        detector.recommendations, args=(rows,), rounds=3, iterations=1
    )
    assert isinstance(recommendations, list)
