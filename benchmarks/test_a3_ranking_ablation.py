"""A3 — TF-IDF ranking vs. boolean-only retrieval.

Design choice: results are ranked by boosted TF-IDF rather than
returned in arbitrary boolean-match order.  The ablation builds a
corpus where exactly one document per query is the "best" answer
(matching in the name field, rare term) among many weaker matches, and
measures how often each strategy puts it first.
"""

import random

from repro.search.engine import SearchEngine
from repro.security.principals import Principal, Role

EXPERT = Principal(user_id=1, login="expert", role=Role.ADMIN)

FILLER = (
    "analysis of measurement data from the instrument run covering "
    "standard operating conditions and calibration"
).split()


def build_engine(queries=20, noise_per_query=30, seed=3):
    """An engine where query term i has one name-hit + many body-hits."""
    rng = random.Random(seed)
    engine = SearchEngine()
    targets = {}
    doc_id = 0
    for q in range(queries):
        term = f"markerterm{q}"
        doc_id += 1
        engine.index_document(
            "sample", doc_id,
            {"name": f"{term} sample", "description": " ".join(FILLER)},
            label=f"target {q}",
        )
        targets[term] = ("sample", doc_id)
        for _ in range(noise_per_query):
            doc_id += 1
            words = rng.sample(FILLER, k=6) + [term]
            rng.shuffle(words)
            engine.index_document(
                "workunit", doc_id,
                {"name": "routine workunit", "description": " ".join(words)},
                label=f"noise {doc_id}",
            )
    return engine, targets


def boolean_first_hit(engine, term):
    """Unranked retrieval: an arbitrary matching document.

    Boolean retrieval gives no meaningful order; we simulate "whatever
    comes first" deterministically by hashing the doc keys, which is as
    good (bad) as any storage order.
    """
    import hashlib

    candidates = engine.index.candidates(term)
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda key: hashlib.md5(repr(key).encode()).hexdigest(),
    )


def test_a3_ranked_beats_boolean_on_precision_at_1():
    engine, targets = build_engine()
    ranked_hits = 0
    boolean_hits = 0
    for term, target in targets.items():
        results = engine.search(EXPERT, term, limit=1)
        if results and (results[0].entity_type, results[0].entity_id) == target:
            ranked_hits += 1
        if boolean_first_hit(engine, term) == target:
            boolean_hits += 1
    total = len(targets)
    assert ranked_hits / total >= 0.95  # TF-IDF finds the name hit
    assert boolean_hits / total <= 0.5  # arbitrary order usually misses
    assert ranked_hits > boolean_hits


def test_a3_field_boost_matters():
    """Disabling the name boost degrades precision@1 on this corpus."""
    from repro.search.index import InvertedIndex

    engine, targets = build_engine()
    flat = SearchEngine()
    flat.index = InvertedIndex(field_boosts={})  # no boosts
    for document in engine.index.documents():
        flat.index.add(document)

    def precision(e):
        hits = 0
        for term, target in targets.items():
            results = e.search(EXPERT, term, limit=1)
            if results and (
                results[0].entity_type, results[0].entity_id
            ) == target:
                hits += 1
        return hits / len(targets)

    assert precision(engine) >= precision(flat)


def test_a3_bench_ranked_search(benchmark):
    engine, targets = build_engine(queries=30, noise_per_query=60)

    results = benchmark(engine.search, EXPERT, "markerterm7", limit=10)
    assert results


def test_a3_bench_boolean_candidates_only(benchmark):
    engine, _ = build_engine(queries=30, noise_per_query=60)

    candidates = benchmark(engine.index.candidates, "markerterm7")
    assert candidates
