"""A4 — write-ahead log on vs. off.

Design choice: every commit appends a CRC-protected, fsynced WAL
record.  The ablation measures insert throughput with durability on and
off, and verifies the durability claim the cost buys: with the WAL, a
simulated crash after N commits loses nothing; without it, everything
is gone.
"""

from repro.storage import Column, ColumnType, Database, TableSchema


def make_schema():
    return TableSchema(
        "event",
        [
            Column("id", ColumnType.INT, primary_key=True),
            Column("payload", ColumnType.TEXT, nullable=False),
        ],
        indexes=["payload"],
    )


def insert_many(db, n, tag):
    for i in range(n):
        db.insert("event", {"payload": f"{tag} {i}"})


def test_a4_durability_claim(tmp_path):
    durable = Database(tmp_path / "durable")
    durable.create_table(make_schema())
    insert_many(durable, 50, "durable")
    # Simulated crash: drop the object without close/checkpoint.
    del durable

    revived = Database(tmp_path / "durable")
    revived.create_table(make_schema())
    stats = revived.recover()
    assert stats["wal_txns"] == 50
    assert revived.count("event") == 50

    volatile = Database(tmp_path / "volatile", durable=False)
    volatile.create_table(make_schema())
    insert_many(volatile, 50, "volatile")
    del volatile

    revived_volatile = Database(tmp_path / "volatile", durable=False)
    revived_volatile.create_table(make_schema())
    assert revived_volatile.count("event") == 0  # nothing survived


def test_a4_wal_grows_and_checkpoint_truncates(tmp_path):
    db = Database(tmp_path / "grow")
    db.create_table(make_schema())
    insert_many(db, 100, "x")
    before = db.statistics()["wal_bytes"]
    db.checkpoint()
    after = db.statistics()["wal_bytes"]
    assert before > 0
    assert after < before


def test_a4_bench_inserts_with_wal(benchmark, tmp_path_factory):
    path = tmp_path_factory.mktemp("wal_on")
    db = Database(path)
    db.create_table(make_schema())
    counter = iter(range(10_000_000))

    def txn_of_10():
        base = next(counter)
        with db.transaction() as txn:
            for i in range(10):
                txn.insert("event", {"payload": f"row {base} {i}"})

    benchmark(txn_of_10)


def test_a4_bench_inserts_without_wal(benchmark):
    db = Database()  # in-memory: no WAL at all
    db.create_table(make_schema())
    counter = iter(range(10_000_000))

    def txn_of_10():
        base = next(counter)
        with db.transaction() as txn:
            for i in range(10):
                txn.insert("event", {"payload": f"row {base} {i}"})

    benchmark(txn_of_10)
