"""F1 — the core metadata schema (paper Figure 1).

Figure 1 draws the chain project -> sample -> extract -> data resource
-> workunit with bidirectional navigability.  The benchmark creates
full chains through the service layer and traverses them both ways,
asserting the relationships the figure shows (several extracts per
sample, resources connected to extracts, workunits grouping resources
with inputs marked).
"""


def make_chain(sys_, scientist, project, tag):
    sample = sys_.samples.register_sample(
        scientist, project.id, f"sample {tag}", species="Arabidopsis Thaliana"
    )
    extracts = sys_.samples.batch_register_extracts(
        scientist, sample.id, [f"extract {tag} a", f"extract {tag} b"]
    )
    workunit = sys_.workunits.create(scientist, project.id, f"workunit {tag}")
    resources = []
    for i, extract in enumerate(extracts):
        resources.append(
            sys_.workunits.add_resource(
                scientist, workunit.id, f"file_{tag}_{i}.raw", f"u://{tag}/{i}",
                extract_id=extract.id, is_input=(i == 0),
            )
        )
    return sample, extracts, workunit, resources


def test_f1_schema_relationships(system):
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    sample, extracts, workunit, resources = make_chain(
        sys_, scientist, project, "x"
    )
    # Several extracts of one sample (paper: different procedures).
    assert len(sys_.samples.extracts_of_sample(scientist, sample.id)) == 2
    # Resources are connected to extracts and grouped in the workunit.
    stored = sys_.workunits.resources_of(scientist, workunit.id)
    assert {r.extract_id for r in stored} == {e.id for e in extracts}
    # Input marking partitions the workunit's resources.
    inputs = sys_.workunits.resources_of(scientist, workunit.id, inputs=True)
    outputs = sys_.workunits.resources_of(scientist, workunit.id, inputs=False)
    assert len(inputs) == 1 and len(outputs) == 1
    # Indirect project association of extracts via their sample.
    project_extracts = sys_.samples.extracts_of_project(scientist, project.id)
    assert {e.id for e in project_extracts} == {e.id for e in extracts}


def test_f1_bench_create_full_chain(benchmark, system):
    """Creating one complete figure-1 chain through the service layer."""
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    counter = iter(range(10_000_000))

    def chain():
        return make_chain(sys_, scientist, project, f"t{next(counter)}")

    sample, extracts, workunit, resources = benchmark.pedantic(chain, rounds=30, iterations=1)
    assert len(resources) == 2


def test_f1_bench_bidirectional_traversal(benchmark, system):
    """Walking resource -> extract -> sample -> project and back down."""
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    for tag in range(20):
        make_chain(sys_, scientist, project, str(tag))
    db = sys_.db

    def traverse():
        hops = 0
        for resource in db.query("data_resource").limit(20).all():
            extract = db.get("extract", resource["extract_id"])
            sample = db.get("sample", extract["sample_id"])
            project_row = db.get("project", sample["project_id"])
            # ... and back down: all samples of that project.
            hops += (
                db.query("sample")
                .where("project_id", "=", project_row["id"])
                .count()
            )
        return hops

    assert benchmark(traverse) > 0
