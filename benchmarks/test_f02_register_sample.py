"""F2 — Register Sample (paper Figure 2).

The form registers a sample with species, free attributes and
controlled-vocabulary annotations — including creating a missing
annotation inline.  Benchmarked: single registration, cloning, and
batch registration (the three entry styles the demo shows).
"""

import pytest

from repro.errors import ValidationError


def test_f2_registration_with_inline_annotation(system):
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    annotation, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, "Hopeless"
    )
    sample = sys_.samples.register_sample(
        scientist, project.id, "col0",
        species="Arabidopsis Thaliana",
        attributes={"ecotype": "Columbia-0"},
        annotation_ids=[annotation.id],
    )
    assert [
        a.value for a in sys_.annotations.annotations_for("sample", sample.id)
    ] == ["Hopeless"]
    # The new annotation is pending expert review (Figure 4 queue).
    assert annotation.status == "pending"


def test_f2_duplicate_rejected(system):
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    sys_.samples.register_sample(scientist, project.id, "s")
    with pytest.raises(ValidationError):
        sys_.samples.register_sample(scientist, project.id, "s")


def test_f2_bench_register_sample(benchmark, system):
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    counter = iter(range(10_000_000))

    def register():
        return sys_.samples.register_sample(
            scientist, project.id, f"sample {next(counter)}",
            species="Arabidopsis Thaliana",
            attributes={"treatment": "light"},
        )

    sample = benchmark.pedantic(register, rounds=50, iterations=1)
    assert sample.id is not None


def test_f2_bench_clone_sample(benchmark, system):
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    original = sys_.samples.register_sample(
        scientist, project.id, "original", species="Arabidopsis Thaliana",
        attributes={"treatment": "light", "ecotype": "Col-0"},
    )
    counter = iter(range(10_000_000))

    def clone():
        return sys_.samples.clone_sample(
            scientist, original.id, f"clone {next(counter)}"
        )

    clone_result = benchmark.pedantic(clone, rounds=50, iterations=1)
    assert clone_result.attributes == original.attributes


def test_f2_bench_batch_registration(benchmark, system):
    """Batch of 50 samples, atomically."""
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    counter = iter(range(10_000_000))

    def batch():
        base = next(counter)
        return sys_.samples.batch_register_samples(
            scientist, project.id,
            [f"batch {base} sample {i}" for i in range(50)],
            species="Mus musculus",
        )

    created = benchmark.pedantic(batch, rounds=10, iterations=1)
    assert len(created) == 50
