"""F3 — Register Extract (paper Figure 3).

Extracts hang off samples; the paper stresses that the project
association "helps to significantly reduce the set of values in
drop-down menus".  Benchmarked: extract registration and the
project-scoped drop-down query, with an assertion that scoping really
shrinks the candidate list.
"""


def test_f3_project_scoping_shrinks_dropdown(system):
    sys_, admin, scientist, expert = system
    # Two projects, extracts in both; the form for project A must only
    # offer project A's extracts.
    project_a = sys_.projects.create(scientist, "A")
    project_b = sys_.projects.create(scientist, "B")
    for project, count in ((project_a, 5), (project_b, 20)):
        sample = sys_.samples.register_sample(
            scientist, project.id, f"sample of {project.name}"
        )
        sys_.samples.batch_register_extracts(
            scientist, sample.id,
            [f"{project.name} extract {i}" for i in range(count)],
        )
    scoped = sys_.samples.extracts_of_project(scientist, project_a.id)
    assert len(scoped) == 5
    total = sys_.db.count("extract")
    assert total == 25  # unscoped would offer 5x more


def test_f3_bench_register_extract(benchmark, system):
    sys_, admin, scientist, expert = system
    project = sys_.projects.create(scientist, "P")
    sample = sys_.samples.register_sample(scientist, project.id, "s")
    counter = iter(range(10_000_000))

    def register():
        return sys_.samples.register_extract(
            scientist, sample.id, f"extract {next(counter)}",
            procedure="TRIzol RNA extraction",
        )

    extract = benchmark.pedantic(register, rounds=50, iterations=1)
    assert extract.sample_id == sample.id


def test_f3_bench_project_scoped_dropdown(benchmark, system):
    """Filling the extract drop-down for one project among many."""
    sys_, admin, scientist, expert = system
    target = sys_.projects.create(scientist, "target")
    for p in range(5):
        project = sys_.projects.create(scientist, f"noise {p}")
        sample = sys_.samples.register_sample(scientist, project.id, "s")
        sys_.samples.batch_register_extracts(
            scientist, sample.id, [f"noise {p} e{i}" for i in range(40)]
        )
    sample = sys_.samples.register_sample(scientist, target.id, "s")
    sys_.samples.batch_register_extracts(
        scientist, sample.id, [f"target e{i}" for i in range(10)]
    )

    def dropdown():
        return sys_.samples.extracts_of_project(scientist, target.id)

    options = benchmark(dropdown)
    assert len(options) == 10
