"""F4 — Release Annotation (paper Figure 4).

Users extend vocabularies on the fly; an expert reviews and releases.
Benchmarked: the release operation itself and scanning the pending
review queue, with assertions that release makes the value appear in
drop-downs and closes the expert's task.
"""


def test_f4_release_flow(system):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    annotation, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, "Hopeless"
    )
    # Pending values are not offered in the form drop-down...
    assert sys_.annotations.vocabulary(attribute.id) == []
    # ...the expert has a task...
    assert sys_.tasks.open_count(expert) == 1
    released = sys_.annotations.release(expert, annotation.id)
    # ...and release flips both.
    assert released.status == "released"
    assert [a.value for a in sys_.annotations.vocabulary(attribute.id)] == [
        "Hopeless"
    ]
    assert sys_.tasks.open_count(expert) == 0


def test_f4_bench_release(benchmark, system):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    counter = iter(range(10_000_000))

    def release():
        annotation, _ = sys_.annotations.create_annotation(
            scientist, attribute.id, f"value {next(counter)}"
        )
        return sys_.annotations.release(expert, annotation.id)

    result = benchmark.pedantic(release, rounds=30, iterations=1)
    assert result.status == "released"


def test_f4_bench_pending_queue_scan(benchmark, system):
    """Listing the expert's review queue over a grown vocabulary."""
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    for i in range(200):
        sys_.annotations.create_annotation(
            scientist, attribute.id, f"pending value number {i}"
        )

    queue = benchmark(sys_.annotations.pending_review)
    assert len(queue) == 200
    assert queue[0].id < queue[-1].id  # oldest first
