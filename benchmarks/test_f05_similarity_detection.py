"""F5 — similar-annotation detection (paper Figure 5).

"B-Fabric automatically detects similar annotations and recommends
merging them."  Benchmarked: the pairwise similarity scan over a
realistic vocabulary and the per-creation similar-to check; asserted:
the paper's Hopeless/Hopeles pair is found, dissimilar values are not.
"""

import itertools
import random

from repro.annotations.similarity import SimilarityDetector

_CONDITIONS = [
    "hopeless", "drought stressed", "heat shocked", "starvation",
    "hypoxic", "infected", "irradiated", "senescent", "regenerating",
    "vaccinated", "anesthetized", "fermenting",
]
_CONTEXTS = [
    "seedling", "rosette", "culture", "biopsy", "xenograft",
    "suspension", "monolayer", "cohort",
]


def _misspell(rng, word):
    """One realistic typo: drop, double, or swap a character."""
    if len(word) < 3:
        return word + word[-1]
    position = rng.randrange(1, len(word) - 1)
    kind = rng.randrange(3)
    if kind == 0:
        return word[:position] + word[position + 1:]
    if kind == 1:
        return word[:position] + word[position] + word[position:]
    return (
        word[:position] + word[position + 1] + word[position] + word[position + 2:]
    )


def build_vocabulary(size, duplicate_fraction=0.3, seed=7):
    """A vocabulary where ~30% of values are misspelled duplicates.

    Returns ``(rows, clusters)`` where *clusters* maps row id to the
    canonical-value cluster it belongs to; a recommended merge pair is
    *correct* iff both sides share a cluster.  Canonicals are distinct
    condition/context combinations, so cross-cluster values are
    genuinely dissimilar.
    """
    rng = random.Random(seed)
    canonicals = [
        f"{condition} {context}"
        for condition, context in itertools.product(_CONDITIONS, _CONTEXTS)
    ]
    rng.shuffle(canonicals)
    rows, clusters = [], {}
    emitted: list[tuple[int, str, int]] = []  # (row_id, value, cluster)
    values_seen = set()
    next_canonical = 0
    for i in range(size):
        row_id = i + 1
        if emitted and rng.random() < duplicate_fraction:
            source_id, source_value, cluster = rng.choice(emitted)
            value = _misspell(rng, source_value)
            if value in values_seen:
                value = value + "x"
            rows.append({"id": row_id, "value": value, "status": "pending"})
            clusters[row_id] = cluster
        else:
            value = canonicals[next_canonical % len(canonicals)]
            next_canonical += 1
            cluster = next_canonical
            rows.append({"id": row_id, "value": value, "status": "released"})
            clusters[row_id] = cluster
            emitted.append((row_id, value, cluster))
        values_seen.add(rows[-1]["value"])
    return rows, clusters


def duplicate_pairs(clusters):
    """All same-cluster pairs — the ground truth for merge detection."""
    by_cluster: dict[int, list[int]] = {}
    for row_id, cluster in clusters.items():
        by_cluster.setdefault(cluster, []).append(row_id)
    pairs = set()
    for members in by_cluster.values():
        for a, b in itertools.combinations(sorted(members), 2):
            pairs.add(frozenset((a, b)))
    return pairs


def test_f5_paper_pair_detected():
    detector = SimilarityDetector()
    rows = [
        {"id": 1, "value": "Hopeless", "status": "released"},
        {"id": 2, "value": "Hopeles", "status": "pending"},
        {"id": 3, "value": "Diabetes", "status": "released"},
    ]
    recommendations = detector.recommendations(rows)
    assert len(recommendations) == 1
    assert (recommendations[0].keep_id, recommendations[0].merge_id) == (1, 2)
    # Dissimilar pairs are not recommended.
    assert not any(r.involves(3) for r in recommendations)


def test_f5_detection_quality_on_synthetic_typos():
    """Detection finds most injected misspellings, few false alarms."""
    detector = SimilarityDetector()
    rows, clusters = build_vocabulary(80)
    truth = duplicate_pairs(clusters)
    recommended = {
        frozenset((r.keep_id, r.merge_id))
        for r in detector.recommendations(rows)
    }
    assert truth, "synthetic corpus must contain duplicates"
    recall = len(recommended & truth) / len(truth)
    precision = len(recommended & truth) / max(len(recommended), 1)
    assert recall >= 0.8
    assert precision >= 0.9


def test_f5_bench_vocabulary_scan(benchmark):
    """The O(n^2) scan over a 150-value vocabulary."""
    detector = SimilarityDetector()
    rows, clusters = build_vocabulary(150)

    recommendations = benchmark.pedantic(
        detector.recommendations, args=(rows,), rounds=3, iterations=1
    )
    assert len(recommendations) >= len(duplicate_pairs(clusters)) * 0.5


def test_f5_bench_similar_to_single_value(benchmark):
    """The per-creation check a form triggers on every new value."""
    detector = SimilarityDetector()
    rows, _ = build_vocabulary(300)
    probe = _misspell(random.Random(1), rows[0]["value"])

    matches = benchmark(detector.similar_to, probe, rows)
    assert matches
    assert matches[0][1] >= detector.threshold
