"""F6 — Merge Annotations (paper Figure 6).

The expert merges two similar annotations, choosing the attributes of
the result.  Benchmarked: the merge operation (transactional re-link +
status flip); asserted: survivor selection, extra-attribute choice,
released-survivor semantics.
"""


def seed_pair(sys_, scientist, expert, attribute, tag):
    keep, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, f"hopeless {tag}",
        extra={"severity": "high", "reviewed": False},
    )
    keep = sys_.annotations.release(expert, keep.id)
    merge, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, f"hopeles {tag}",
        extra={"severity": "terminal"},
    )
    return keep, merge


def test_f6_merge_with_attribute_choice(system):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    keep, merge = seed_pair(sys_, scientist, expert, attribute, "x")
    # Figure 6: the expert picks attribute values for the merge result.
    result = sys_.annotations.merge(
        expert, keep.id, merge.id,
        chosen_extra={"severity": "terminal", "reviewed": True},
    )
    assert result.extra == {"severity": "terminal", "reviewed": True}
    merged = sys_.annotations.resolve(merge.id)
    assert merged.id == keep.id


def test_f6_bench_merge(benchmark, system):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    counter = iter(range(10_000_000))

    def merge():
        keep, merge_ann = seed_pair(
            sys_, scientist, expert, attribute, str(next(counter))
        )
        return sys_.annotations.merge(expert, keep.id, merge_ann.id)

    result = benchmark.pedantic(merge, rounds=20, iterations=1)
    assert result.status == "released"
