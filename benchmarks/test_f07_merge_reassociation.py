"""F7 — merged annotations re-associate objects (paper Figure 7).

"When the two annotations merged, B-Fabric automatically associates the
samples which were previously associated with the misspelled
annotation."  Benchmarked: merge cost as a function of how many objects
referenced the merged value; asserted: every referrer follows, no
duplicates, atomicity.
"""

import pytest


def seed(sys_, scientist, expert, attribute, referrers, tag):
    project = sys_.projects.create(scientist, f"P {tag}")
    keep, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, f"hopeless {tag}"
    )
    keep = sys_.annotations.release(expert, keep.id)
    merge, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, f"hopeles {tag}"
    )
    samples = sys_.samples.batch_register_samples(
        scientist, project.id, [f"s {tag} {i}" for i in range(referrers)]
    )
    for sample in samples:
        sys_.annotations.annotate(scientist, merge.id, "sample", sample.id)
    return keep, merge, samples


def test_f7_all_referrers_follow(system):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    keep, merge, samples = seed(sys_, scientist, expert, attribute, 25, "x")
    sys_.annotations.merge(expert, keep.id, merge.id)
    for sample in samples:
        values = [
            a.value
            for a in sys_.annotations.annotations_for("sample", sample.id)
        ]
        assert values == [keep.value]
    # The merged annotation keeps no links.
    assert sys_.annotations.entities_for(merge.id) == []
    assert len(sys_.annotations.entities_for(keep.id)) == 25


@pytest.mark.parametrize("referrers", [10, 100])
def test_f7_bench_merge_scales_with_referrers(benchmark, system, referrers):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    counter = iter(range(10_000_000))

    def merge():
        keep, merge_ann, _ = seed(
            sys_, scientist, expert, attribute, referrers,
            str(next(counter)),
        )
        return sys_.annotations.merge(expert, keep.id, merge_ann.id)

    result = benchmark.pedantic(merge, rounds=3, iterations=1)
    assert len(sys_.annotations.entities_for(result.id)) == referrers
