"""F8 — the task list (paper Figure 8).

"As soon as a new annotation is added to the vocabulary, a new task to
release this annotation appears in the task list of the corresponding
expert."  Benchmarked: event-to-task derivation cost and inbox listing
over a large open-task population; asserted: derivation, role routing,
auto-completion.
"""


def test_f8_derivation_and_completion(system):
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    annotation, _ = sys_.annotations.create_annotation(
        scientist, attribute.id, "Hopeless"
    )
    inbox = sys_.tasks.inbox(expert)
    assert [t.kind for t in inbox] == ["release_annotation"]
    # Scientists do not see expert work.
    assert sys_.tasks.inbox(scientist) == []
    # The review outcome closes the task without touching the task list.
    sys_.annotations.release(expert, annotation.id)
    assert sys_.tasks.inbox(expert) == []


def test_f8_bench_event_to_task(benchmark, system):
    """Annotation creation including task derivation and indexing."""
    sys_, admin, scientist, expert = system
    attribute = sys_.annotations.define_attribute(expert, "Disease State")
    counter = iter(range(10_000_000))

    def create():
        annotation, _ = sys_.annotations.create_annotation(
            scientist, attribute.id, f"unique value {next(counter)}"
        )
        return annotation

    annotation = benchmark.pedantic(create, rounds=30, iterations=1)
    assert sys_.tasks.open_for_entity("annotation", annotation.id)


def test_f8_bench_inbox_listing(benchmark, system):
    """Listing one expert's inbox among 500 open tasks."""
    sys_, admin, scientist, expert = system
    for i in range(250):
        sys_.tasks.create(
            "release_annotation", f"expert task {i}", assignee_role="employee"
        )
        sys_.tasks.create(
            "todo", f"personal task {i}", assignee_id=scientist.user_id
        )

    inbox = benchmark(sys_.tasks.inbox, expert)
    assert len(inbox) == 250
