"""F9 — Create Workunit by importing instrument files (paper Figure 9).

The demo fetches files from the Affymetrix GeneChip instrument into a
new workunit.  Benchmarked: provider listing with relevance filtering,
copy-mode import (bytes + checksums into the managed store) and
link-mode import; asserted: both modes, checksum integrity, workunit
grouping.
"""

from repro.dataimport import RelevanceFilter


def test_f9_copy_and_link_modes(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    copied, copied_resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip", ["scan01_a.cel"],
        workunit_name="copied", mode="copy",
    )
    linked, linked_resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip", ["scan01_b.cel"],
        workunit_name="linked", mode="link",
    )
    copy_resource = copied_resources[0]
    assert copy_resource.storage == "internal"
    assert sys_.store.verify(copy_resource.uri, copy_resource.checksum)
    link_resource = linked_resources[0]
    assert link_resource.storage == "linked"
    assert link_resource.uri.startswith("genechip://")


def test_f9_relevance_filter_restricts_listing(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    all_files = sys_.imports.browse("GeneChip")
    only_cel = sys_.imports.browse(
        "GeneChip", RelevanceFilter(extensions=["cel"])
    )
    assert len(only_cel) < len(all_files)
    assert all(f.kind == "cel" for f in only_cel)


def test_f9_bench_provider_listing(benchmark, system):
    """Listing a large instrument store through the relevance filter."""
    from repro.dataimport import AffymetrixGeneChipProvider

    sys_, admin, scientist, expert = system
    sys_.imports.register_provider(
        AffymetrixGeneChipProvider(
            "BigChip", runs=200,
            relevance=RelevanceFilter(extensions=["cel"], max_files=50),
        )
    )

    files = benchmark(sys_.imports.browse, "BigChip")
    assert len(files) == 50


def test_f9_bench_copy_import(benchmark, demo_project):
    sys_, scientist, expert, project, sample = demo_project
    counter = iter(range(10_000_000))

    def import_copy():
        return sys_.imports.import_files(
            scientist, project.id, "GeneChip",
            ["scan01_a.cel", "scan01_b.cel"],
            workunit_name=f"copy import {next(counter)}", mode="copy",
        )

    workunit, resources, _ = benchmark.pedantic(import_copy, rounds=20, iterations=1)
    assert all(r.checksum for r in resources)


def test_f9_bench_link_import(benchmark, demo_project):
    sys_, scientist, expert, project, sample = demo_project
    counter = iter(range(10_000_000))

    def import_link():
        return sys_.imports.import_files(
            scientist, project.id, "GeneChip",
            ["scan01_a.cel", "scan01_b.cel"],
            workunit_name=f"link import {next(counter)}", mode="link",
        )

    workunit, resources, _ = benchmark.pedantic(import_link, rounds=20, iterations=1)
    assert all(not r.checksum for r in resources)
