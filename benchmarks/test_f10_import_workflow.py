"""F10 — the assign-extracts import workflow (paper Figure 10).

"B-Fabric implements the data import via workflows...  The next step to
be taken by the user is highlighted."  Benchmarked: workflow start +
auto-chaining, stepping through to completion, and rendering the
highlighted representation; asserted: the highlighted step matches the
instance state at every point.
"""

from repro.workflow.render import render_ascii


def test_f10_workflow_tracks_import(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    workunit, resources, instance = sys_.imports.import_files(
        scientist, project.id, "GeneChip", ["scan01_a.cel", "scan01_b.cel"],
        workunit_name="chips",
    )
    # The fetch step auto-completed; the user step is highlighted.
    assert instance.current_step == "assign_extracts"
    definition = sys_.workflow.definition("data_import")
    drawing = render_ascii(definition, instance.current_step)
    assert "▶[Assign extracts]" in drawing
    history = sys_.workflow.history(instance.id)
    assert [e.action for e in history] == ["fetched"]

    sys_.imports.apply_assignments(scientist, workunit.id)
    finished = sys_.workflow.get(instance.id)
    assert finished.status == "completed"
    assert [e.action for e in sys_.workflow.history(instance.id)] == [
        "fetched", "save",
    ]


def test_f10_bench_workflow_start_with_auto_chain(benchmark, system):
    sys_, admin, scientist, expert = system

    def start():
        return sys_.workflow.start(admin, "data_import")

    instance = benchmark(start)
    assert instance.current_step == "assign_extracts"


def test_f10_bench_render_highlighted(benchmark, system):
    sys_, admin, scientist, expert = system
    definition = sys_.workflow.definition("data_import")

    drawing = benchmark(render_ascii, definition, "assign_extracts")
    assert "▶" in drawing
