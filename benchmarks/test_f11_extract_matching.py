"""F11 — intelligent extract assignment (paper Figure 11).

"He gets already the best matches between data resources and extract
names.  Typically he just needs to press the save button."  Benchmarked:
the one-to-one matching over growing populations; asserted: accuracy on
realistic lab naming (file names vs. human-entered extract names).
"""

import random

from repro.dataimport.matching import propose_assignments


def lab_corpus(n, seed=11):
    """(resources, extracts, truth) with realistic naming drift."""
    rng = random.Random(seed)
    treatments = ["light", "dark", "heat", "cold"]
    resources, extracts, truth = {}, {}, {}
    for i in range(n):
        treatment = treatments[i % len(treatments)]
        replicate = i // len(treatments) + 1
        resource_id = i + 1
        extract_id = 1000 + i
        resources[resource_id] = f"wt_{treatment}_{replicate}.cel"
        # Humans enter spaces and sometimes capitalize.
        name = f"wt {treatment} {replicate}"
        if rng.random() < 0.3:
            name = name.title()
        extracts[extract_id] = name
        truth[resource_id] = extract_id
    return resources, extracts, truth


def test_f11_accuracy_on_lab_naming():
    resources, extracts, truth = lab_corpus(40)
    proposals = propose_assignments(resources, extracts)
    assert len(proposals) == len(truth)
    correct = sum(
        1 for p in proposals if truth[p.resource_id] == p.extract_id
    )
    assert correct == len(truth)  # "just press save"


def test_f11_one_to_one_invariant():
    resources, extracts, _ = lab_corpus(30)
    proposals = propose_assignments(resources, extracts)
    assert len({p.resource_id for p in proposals}) == len(proposals)
    assert len({p.extract_id for p in proposals}) == len(proposals)


def test_f11_bench_matching_small(benchmark):
    resources, extracts, _ = lab_corpus(16)
    proposals = benchmark(propose_assignments, resources, extracts)
    assert len(proposals) == 16


def test_f11_bench_matching_large(benchmark):
    """A large import: 120 files against 120 extracts (14k pairs)."""
    resources, extracts, _ = lab_corpus(120)
    proposals = benchmark(propose_assignments, resources, extracts)
    assert len(proposals) == 120


def test_f11_bench_end_to_end_proposals(benchmark, demo_project):
    """Proposal generation through the service (includes ACL + queries)."""
    sys_, scientist, expert, project, sample = demo_project
    workunit, _, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip",
        ["scan01_a.cel", "scan01_b.cel", "scan02_a.cel", "scan02_b.cel"],
        workunit_name="chips",
    )

    proposals = benchmark(sys_.imports.proposals_for, scientist, workunit.id)
    assert len(proposals) == 4
    assert all(p.score == 1.0 for p in proposals)
