"""F12 — Application Registration (paper Figure 12).

"Once an application is registered with B-Fabric, users may invoke and
feed the application via B-Fabric ... the functionality of B-Fabric can
be extended at run-time without changing the core code base."
Benchmarked: registration incl. interface validation; asserted: the
registered application is immediately invokable.
"""

import pytest

from repro.apps.connectors import RunOutcome
from repro.errors import ValidationError

INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
        {"name": "alpha", "type": "float", "default": 0.05},
    ],
    "output": "per-gene statistics",
}


def test_f12_runtime_extension(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    # A bioinformatician deploys a brand-new script at run time...
    sys_.applications.connector("python").register_script(
        "row_counter",
        lambda request: RunOutcome(files=[], report=f"{len(request.input_files)} inputs"),
    )
    application = sys_.applications.register_application(
        scientist, name="row counter", connector="python",
        executable="row_counter",
        interface={"inputs": ["resource"], "parameters": []},
    )
    # ...and it is immediately invokable through an experiment.
    workunit, resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip", ["scan01_a.cel"],
        workunit_name="chips",
    )
    experiment = sys_.experiments.define(
        scientist, project.id, "count", application_id=application.id,
        resource_ids=[resources[0].id],
    )
    result = sys_.experiments.run(
        scientist, experiment.id, workunit_name="counted"
    )
    assert result.status == "available"
    assert "1 inputs" in sys_.results.read_report(result.id)


def test_f12_invalid_interface_rejected(system):
    sys_, admin, scientist, expert = system
    with pytest.raises(ValidationError):
        sys_.applications.register_application(
            scientist, name="broken", connector="rserve", executable="x",
            interface={"inputs": ["hologram"]},
        )


def test_f12_bench_registration(benchmark, system):
    sys_, admin, scientist, expert = system
    counter = iter(range(10_000_000))

    def register():
        return sys_.applications.register_application(
            scientist,
            name=f"application {next(counter)}",
            connector="rserve",
            executable="two_group_analysis",
            interface=INTERFACE,
        )

    application = benchmark.pedantic(register, rounds=50, iterations=1)
    assert application.active


def test_f12_bench_interface_validation(benchmark):
    from repro.apps.registry import validate_interface

    big_interface = {
        "inputs": ["resource", "sample", "extract"],
        "parameters": [
            {"name": f"param_{i}", "type": "float", "default": 0.1}
            for i in range(50)
        ],
    }
    errors = benchmark(validate_interface, big_interface)
    assert errors == {}
