"""F13 — Create Experiment Definition (paper Figure 13).

"Defining an experiment consists of a selection of data resources,
samples, extracts, and arbitrary number of attributes."  Benchmarked:
definition with full cross-project validation of every selected object;
asserted: selections snapshot correctly and foreign objects are
rejected.
"""

import pytest

from repro.errors import ValidationError

INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
    ],
}


def register_app(sys_, scientist):
    return sys_.applications.register_application(
        scientist, name="two group analysis", connector="rserve",
        executable="two_group_analysis", interface=INTERFACE,
    )


def imported_resources(sys_, scientist, project):
    workunit, resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip",
        ["scan01_a.cel", "scan01_b.cel", "scan02_a.cel", "scan02_b.cel"],
        workunit_name="chips",
    )
    sys_.imports.apply_assignments(scientist, workunit.id)
    return resources


def test_f13_definition_snapshot(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    application = register_app(sys_, scientist)
    resources = imported_resources(sys_, scientist, project)
    extracts = sys_.samples.extracts_of_project(scientist, project.id)
    experiment = sys_.experiments.define(
        scientist, project.id, "gene and light effect",
        application_id=application.id,
        resource_ids=[r.id for r in resources],
        sample_ids=[sample.id],
        extract_ids=[e.id for e in extracts],
        attributes={"species": "Arabidopsis Thaliana", "treatment": "light"},
    )
    assert len(experiment.resource_ids) == 4
    assert experiment.sample_ids == [sample.id]
    assert experiment.attributes["treatment"] == "light"


def test_f13_foreign_selection_rejected(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    application = register_app(sys_, scientist)
    resources = imported_resources(sys_, scientist, project)
    other = sys_.projects.create(scientist, "Other project")
    with pytest.raises(ValidationError):
        sys_.experiments.define(
            scientist, other.id, "cross-project", application_id=application.id,
            resource_ids=[resources[0].id],
        )


def test_f13_bench_define(benchmark, demo_project):
    sys_, scientist, expert, project, sample = demo_project
    application = register_app(sys_, scientist)
    resources = imported_resources(sys_, scientist, project)
    extracts = sys_.samples.extracts_of_project(scientist, project.id)
    counter = iter(range(10_000_000))

    def define():
        return sys_.experiments.define(
            scientist, project.id, f"experiment {next(counter)}",
            application_id=application.id,
            resource_ids=[r.id for r in resources],
            sample_ids=[sample.id],
            extract_ids=[e.id for e in extracts],
            attributes={"species": "Arabidopsis Thaliana"},
        )

    experiment = benchmark.pedantic(define, rounds=50, iterations=1)
    assert experiment.id is not None
