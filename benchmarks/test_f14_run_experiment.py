"""F14 — Run Experiment (paper Figure 14).

Invoking the registered two-group analysis: staging inputs, running the
(simulated) Rserve script with real statistics, collecting results into
a new workunit with inputs marked.  Benchmarked: the full synchronous
run; asserted: result shape and input marking.
"""

INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
        {"name": "alpha", "type": "float", "default": 0.05},
    ],
}


def prepare(sys_, scientist, project):
    application = sys_.applications.register_application(
        scientist, name="two group analysis", connector="rserve",
        executable="two_group_analysis", interface=INTERFACE,
    )
    workunit, resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip",
        ["scan01_a.cel", "scan01_b.cel", "scan02_a.cel", "scan02_b.cel"],
        workunit_name="chips",
    )
    sys_.imports.apply_assignments(scientist, workunit.id)
    experiment = sys_.experiments.define(
        scientist, project.id, "light effect",
        application_id=application.id,
        resource_ids=[r.id for r in resources],
        attributes={"treatment": "light"},
    )
    return experiment, resources


def test_f14_run_shape(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    experiment, resources = prepare(sys_, scientist, project)
    workunit = sys_.experiments.run(
        scientist, experiment.id, workunit_name="results",
        parameters={"reference_group": "_a"},
    )
    assert workunit.status == "available"
    outputs = sys_.workunits.resources_of(scientist, workunit.id, inputs=False)
    inputs = sys_.workunits.resources_of(scientist, workunit.id, inputs=True)
    assert {r.name for r in outputs} == {"two_group_result.csv", "report.txt"}
    assert len(inputs) == len(resources)
    report = sys_.results.read_report(workunit.id)
    assert "genes tested: 200" in report


def test_f14_run_is_reproducible(demo_project):
    """Same inputs + parameters -> identical result files."""
    sys_, scientist, expert, project, sample = demo_project
    experiment, _ = prepare(sys_, scientist, project)
    first = sys_.experiments.run(
        scientist, experiment.id, workunit_name="run one",
        parameters={"reference_group": "_a"},
    )
    second = sys_.experiments.run(
        scientist, experiment.id, workunit_name="run two",
        parameters={"reference_group": "_a"},
    )
    csv_first = [
        r for r in sys_.workunits.resources_of(scientist, first.id)
        if r.name == "two_group_result.csv"
    ][0]
    csv_second = [
        r for r in sys_.workunits.resources_of(scientist, second.id)
        if r.name == "two_group_result.csv"
    ][0]
    assert csv_first.checksum == csv_second.checksum


def test_f14_bench_full_run(benchmark, demo_project):
    sys_, scientist, expert, project, sample = demo_project
    experiment, _ = prepare(sys_, scientist, project)
    counter = iter(range(10_000_000))

    def run():
        return sys_.experiments.run(
            scientist, experiment.id,
            workunit_name=f"bench run {next(counter)}",
            parameters={"reference_group": "_a"},
        )

    workunit = benchmark.pedantic(run, rounds=5, iterations=1)
    assert workunit.status == "available"
