"""F15 — experiment workflow pending state (paper Figure 15).

"Once the experiment is started, a corresponding workflow is initiated.
The graphic presentation of the workflow is also used to show what is
happening underneath."  Benchmarked: deferred start (observable pending
state) and state/render queries; asserted: pending -> ready progression
matches the workunit lifecycle.
"""

from repro.workflow.render import render_ascii, render_dot

INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
    ],
}


def prepare_experiment(sys_, scientist, project):
    application = sys_.applications.register_application(
        scientist, name="two group analysis", connector="rserve",
        executable="two_group_analysis", interface=INTERFACE,
    )
    workunit, resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip",
        ["scan01_a.cel", "scan01_b.cel"],
        workunit_name="chips",
    )
    sys_.imports.apply_assignments(scientist, workunit.id)
    return sys_.experiments.define(
        scientist, project.id, "light effect",
        application_id=application.id,
        resource_ids=[r.id for r in resources],
    )


def deferred_run(sys_, scientist, project, *, experiment=None, name="deferred"):
    if experiment is None:
        experiment = prepare_experiment(sys_, scientist, project)
    return sys_.experiments.run(
        scientist, experiment.id, workunit_name=name,
        parameters={"reference_group": "_a"}, defer=True,
    )


def test_f15_pending_then_ready(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    workunit = deferred_run(sys_, scientist, project)
    assert workunit.status == "pending"
    instance = sys_.workflow.for_entity("workunit", workunit.id)[0]
    assert instance.current_step == "pending"
    definition = sys_.workflow.definition("run_experiment")
    assert "▶[Pending]" in render_ascii(definition, instance.current_step)

    workunit = sys_.experiments.execute_pending(scientist, workunit.id)
    assert workunit.status == "available"
    finished = sys_.workflow.get(instance.id)
    assert finished.status == "completed"


def test_f15_dot_rendering_highlights(system):
    sys_, admin, scientist, expert = system
    definition = sys_.workflow.definition("run_experiment")
    dot = render_dot(definition, "pending")
    assert 'label="Pending"' in dot
    assert "fillcolor" in dot


def test_f15_bench_deferred_start(benchmark, demo_project):
    sys_, scientist, expert, project, sample = demo_project
    experiment = prepare_experiment(sys_, scientist, project)
    counter = iter(range(10_000_000))

    def start():
        return deferred_run(
            sys_, scientist, project, experiment=experiment,
            name=f"deferred {next(counter)}",
        )

    workunit = benchmark.pedantic(start, rounds=10, iterations=1)
    assert workunit.status == "pending"


def test_f15_bench_active_instance_listing(benchmark, system):
    """The admin's 'what is running' query over many instances."""
    sys_, admin, scientist, expert = system
    for _ in range(200):
        sys_.workflow.start(admin, "run_experiment")

    active = benchmark(sys_.workflow.active_instances)
    assert len(active) == 200
