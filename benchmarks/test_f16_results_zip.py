"""F16 — results ready + zip export (paper Figure 16).

"The results of the experiment is also presented to the user as a zip
file so that they can easily be transferred to another medium."
Benchmarked: zip packaging of a result workunit; asserted: archive
contents and the availability guard.
"""

import io
import zipfile

import pytest

from repro.errors import StateError

INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
    ],
}


def available_run(sys_, scientist, project):
    application = sys_.applications.register_application(
        scientist, name="two group analysis", connector="rserve",
        executable="two_group_analysis", interface=INTERFACE,
    )
    workunit, resources, _ = sys_.imports.import_files(
        scientist, project.id, "GeneChip",
        ["scan01_a.cel", "scan01_b.cel", "scan02_a.cel", "scan02_b.cel"],
        workunit_name="chips",
    )
    sys_.imports.apply_assignments(scientist, workunit.id)
    experiment = sys_.experiments.define(
        scientist, project.id, "light effect",
        application_id=application.id,
        resource_ids=[r.id for r in resources],
    )
    return sys_.experiments.run(
        scientist, experiment.id, workunit_name="results",
        parameters={"reference_group": "_a"},
    )


def test_f16_zip_contents(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    workunit = available_run(sys_, scientist, project)
    payload = sys_.results.as_zip_bytes(scientist, workunit.id)
    with zipfile.ZipFile(io.BytesIO(payload)) as archive:
        names = set(archive.namelist())
        assert "two_group_result.csv" in names
        assert "report.txt" in names
        assert "report/run_report.txt" in names
        assert archive.testzip() is None
        # The CSV is intact inside the archive.
        header = archive.read("two_group_result.csv").decode().splitlines()[0]
        assert header == "gene,log_fc,t_statistic,p_value"


def test_f16_only_available_workunits_package(demo_project):
    sys_, scientist, expert, project, sample = demo_project
    pending = sys_.workunits.create(scientist, project.id, "not ready")
    with pytest.raises(StateError):
        sys_.results.as_zip_bytes(scientist, pending.id)


def test_f16_bench_zip_packaging(benchmark, demo_project):
    sys_, scientist, expert, project, sample = demo_project
    workunit = available_run(sys_, scientist, project)

    payload = benchmark(sys_.results.as_zip_bytes, scientist, workunit.id)
    assert payload[:2] == b"PK"


def test_f16_bench_write_zip_to_disk(benchmark, demo_project, tmp_path):
    sys_, scientist, expert, project, sample = demo_project
    workunit = available_run(sys_, scientist, project)
    counter = iter(range(10_000_000))

    def write():
        return sys_.results.write_zip(
            scientist, workunit.id, tmp_path / f"out_{next(counter)}.zip"
        )

    target = benchmark.pedantic(write, rounds=30, iterations=1)
    assert target.is_file()
