"""S1 — full-text search over the FGCZ-scale corpus (paper §2).

Quick search, advanced search (field scoping, type filters, negation,
OR), history, saved queries, export — measured over the 71k-object
deployment's ~71k-document index.
"""

from repro.search.export import export_csv
from repro.search.history import SearchHistory
from repro.security.principals import Principal, Role

EXPERT = Principal(user_id=1, login="user0000", role=Role.ADMIN)


def test_s1_corpus_indexed(fgcz_deployment):
    stats = fgcz_deployment.search.statistics()
    assert stats["documents"] > 70_000
    assert stats["terms"] > 100


def test_s1_result_quality(fgcz_deployment):
    results = fgcz_deployment.search.search(
        EXPERT, "type:sample arabidopsis leaf", limit=10
    )
    assert results
    assert all(r.entity_type == "sample" for r in results)
    # Scores are descending.
    scores = [r.score for r in results]
    assert scores == sorted(scores, reverse=True)


def test_s1_bench_quick_search(benchmark, fgcz_deployment):
    results = benchmark(
        fgcz_deployment.search.quick_search, EXPERT, "arabidopsis leaf"
    )
    assert results


def test_s1_bench_advanced_search(benchmark, fgcz_deployment):
    results = benchmark(
        fgcz_deployment.search.search,
        EXPERT,
        "type:sample arabidopsis light OR dark -muscle",
    )
    assert isinstance(results, list)


def test_s1_bench_common_term(benchmark, fgcz_deployment):
    """A term present in tens of thousands of documents."""
    results = benchmark(
        fgcz_deployment.search.search, EXPERT, "workunit", limit=25
    )
    assert len(results) == 25


def test_s1_bench_incremental_index_update(benchmark, fgcz_deployment):
    """Re-indexing one changed document inside the big index."""
    counter = iter(range(10_000_000))

    def reindex_one():
        n = next(counter)
        fgcz_deployment.search.index_document(
            "sample", 1, {"name": f"renamed sample {n}", "species": "test"},
            project_id=1,
        )

    benchmark.pedantic(reindex_one, rounds=200, iterations=1)


def test_s1_bench_export(benchmark, fgcz_deployment):
    results = fgcz_deployment.search.search(EXPERT, "arabidopsis", limit=500)

    text = benchmark(export_csv, results)
    assert text.count("\n") == len(results) + 1


def test_s1_history_and_saved_queries(fgcz_deployment):
    history = SearchHistory()
    for query in ("arabidopsis", "leaf", "arabidopsis"):
        history.record(query)
    assert history.entries() == ["arabidopsis", "leaf"]
    fgcz_deployment.saved_queries.save(EXPERT, "plants", "type:sample arabidopsis")
    saved = fgcz_deployment.saved_queries.get(EXPERT, "plants")
    assert fgcz_deployment.search.search(EXPERT, saved.query)
