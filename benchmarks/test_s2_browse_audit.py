"""S2 — networked browsing and the audit trail (paper §2, Miscellaneous).

"Users can simply browse bidirectionally through all objects linked
together" and "all data manipulation operations are logged".  Measured
over the FGCZ-scale deployment: building the 71k-node link graph,
neighborhood queries, paths; audit write throughput and per-user
history reads.
"""

from repro.graphview.links import LinkGraph, ObjectRef
from repro.security.principals import SYSTEM


def test_s2_graph_covers_deployment(fgcz_deployment):
    graph = LinkGraph(fgcz_deployment.db).rebuild()
    stats = graph.statistics()
    # Every sample/extract/resource/workunit/project node is present.
    assert stats["nodes"] > 70_000
    assert stats["edges"] > 70_000


def test_s2_bench_graph_rebuild(benchmark, fgcz_deployment):
    graph = LinkGraph(fgcz_deployment.db)

    built = benchmark.pedantic(graph.rebuild, rounds=2, iterations=1)
    assert built.statistics()["nodes"] > 70_000


def test_s2_bench_neighborhood(benchmark, fgcz_deployment):
    graph = LinkGraph(fgcz_deployment.db).rebuild()
    ref = ObjectRef("project", 1)

    neighborhood = benchmark(graph.neighborhood, ref, 2)
    assert neighborhood


def test_s2_bench_path_query(benchmark, fgcz_deployment):
    graph = LinkGraph(fgcz_deployment.db).rebuild()
    resource = next(iter(graph.nodes_of_type("data_resource")))
    project = ObjectRef("project", 1)

    def path():
        return graph.path(resource, project)

    result = benchmark(path)
    assert isinstance(result, list)


def test_s2_bench_audit_write(benchmark, fgcz_deployment):
    counter = iter(range(10_000_000))

    def record():
        return fgcz_deployment.audit.record(
            SYSTEM, "update", "sample", next(counter) % 3151 + 1,
            "benchmark entry",
        )

    entry = benchmark.pedantic(record, rounds=200, iterations=1)
    assert entry.id is not None


def test_s2_bench_user_history(benchmark, fgcz_deployment):
    for i in range(500):
        fgcz_deployment.audit.record(
            SYSTEM, "create", "sample", i + 1, f"seed {i}"
        )

    entries = benchmark.pedantic(fgcz_deployment.audit.for_user, args=(SYSTEM.user_id,), rounds=30, iterations=1)
    assert len(entries) == 50  # bounded, most recent first
    assert entries[0].id > entries[-1].id
