"""T1 — the paper's Final-Remark deployment table.

Paper (January 2010)::

    Users 1555       Samples 3151
    Projects 750     Extracts 3642
    Institutes 224   Data Resources 40005
    Organizations 59 Workunits 23979

We regenerate a deployment with exactly these counts and benchmark the
operations such a deployment must sustain: building it, the
object-count query that renders the table itself, and the dominant
read pattern (project-scoped listing over the largest table).
"""

from repro import BFabric
from repro.workload import DeploymentGenerator, FGCZ_JANUARY_2010

from conftest import fresh_system


def test_t1_exact_paper_counts(fgcz_deployment):
    """The generated deployment reproduces the table exactly."""
    assert (
        fgcz_deployment.deployment_statistics()
        == FGCZ_JANUARY_2010.as_paper_table()
    )


def test_t1_referential_integrity_at_scale(fgcz_deployment):
    assert fgcz_deployment.db.verify_integrity() == []


def test_t1_bench_build_deployment(benchmark):
    """Synthesize the full 71k-object deployment (1 round; ~seconds)."""

    def build():
        system = fresh_system()
        return DeploymentGenerator(system, seed=2010).generate(
            FGCZ_JANUARY_2010
        )

    counts = benchmark.pedantic(build, rounds=1, iterations=1)
    assert counts == FGCZ_JANUARY_2010.as_paper_table()


def test_t1_bench_statistics_table(benchmark, fgcz_deployment):
    """Rendering the Final-Remark table (count per object type)."""
    counts = benchmark(fgcz_deployment.deployment_statistics)
    assert counts["Data Resources"] == 40005


def test_t1_bench_project_scoped_listing(benchmark, fgcz_deployment):
    """The dominant read: resources of one project's workunits."""
    db = fgcz_deployment.db
    workunit_ids = db.query("workunit").where("project_id", "=", 1).pks()

    def project_resources():
        total = 0
        for workunit_id in workunit_ids[:50]:
            total += (
                db.query("data_resource")
                .where("workunit_id", "=", workunit_id)
                .count()
            )
        return total

    total = benchmark(project_resources)
    assert total >= 0
