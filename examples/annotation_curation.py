"""Annotation curation at facility scale (paper Figures 4-8).

A center's vocabulary decays as dozens of scientists type free-text
variants of the same concept.  This example simulates a month of sloppy
vocabulary growth — misspellings, case variants, word-order swaps — and
then plays the FGCZ employee role: work the task list, release good
values, and merge the near-duplicates the system recommends, watching
the samples re-associate automatically.

Run with::

    python examples/annotation_curation.py
"""

import random

from repro import BFabric

# Canonical disease states plus the kinds of variants users actually type.
CANONICAL = {
    "Hopeless": ["Hopeles", "hopeless ", "Hopelless"],
    "Healthy": ["healty", "Healthy control"],
    "Heat Shock": ["shock heat", "Heat-Shock"],
    "Drought Stress": ["drought stres", "Drought  Stress"],
}


def main() -> None:
    system = BFabric()
    admin = system.bootstrap()
    expert = system.add_user(
        admin, login="curator", full_name="FGCZ Curator", role="employee"
    )
    rng = random.Random(42)
    scientists = [
        system.add_user(admin, login=f"sci{i}", full_name=f"Scientist {i}")
        for i in range(6)
    ]
    attribute = system.annotations.define_attribute(
        expert, "Disease State", description="State of the biological source"
    )

    # --- a month of vocabulary decay -----------------------------------------
    project = system.projects.create(admin, "Cross-facility samples")
    for scientist in scientists:
        system.projects.add_member(admin, project.id, scientist.user_id)

    sample_counter = 0
    for canonical, variants in CANONICAL.items():
        for value in [canonical] + variants:
            author = rng.choice(scientists)
            try:
                annotation, similar = system.annotations.create_annotation(
                    author, attribute.id, value
                )
            except Exception:
                continue  # exact duplicate after normalization
            if similar:
                best, score = similar[0]
                print(f"  {author.login} typed {value!r} — system warns: "
                      f"similar to {best.value!r} ({score:.0%})")
            # Each annotation gets used on a couple of samples.
            for _ in range(rng.randint(1, 3)):
                sample_counter += 1
                sample = system.samples.register_sample(
                    author, project.id, f"sample {sample_counter:03d}",
                    species="Homo sapiens",
                )
                system.annotations.annotate(
                    author, annotation.id, "sample", sample.id
                )

    print(f"\nvocabulary now holds "
          f"{len(system.annotations.vocabulary(attribute.id, include_pending=True))}"
          f" values; {sample_counter} samples annotated")

    # --- the expert works the task list (Figure 8) ----------------------------
    inbox = system.tasks.inbox(expert)
    print(f"\nexpert task list: {len(inbox)} open tasks")
    for task in inbox[:5]:
        print(f"  - {task.title}")

    # --- merge recommendations (Figures 5-7) -----------------------------------
    merged = 0
    while True:
        recommendations = system.annotations.merge_recommendations(attribute.id)
        if not recommendations:
            break
        rec = recommendations[0]
        before = len(system.annotations.entities_for(rec.merge_id))
        system.annotations.merge(expert, rec.keep_id, rec.merge_id)
        after = len(system.annotations.entities_for(rec.keep_id))
        merged += 1
        print(f"merged {rec.merge_value!r} -> {rec.keep_value!r} "
              f"({rec.score:.0%}); {before} links moved, survivor now "
              f"annotates {after} objects")

    # --- release whatever legitimate values remain -------------------------------
    released = 0
    for annotation in system.annotations.pending_review():
        system.annotations.release(expert, annotation.id)
        released += 1

    clean = system.annotations.vocabulary(attribute.id)
    print(f"\ncuration done: {merged} merges, {released} releases")
    print("released vocabulary:", sorted(a.value for a in clean))
    print(f"expert task list now: {system.tasks.open_count(expert)} open tasks")

    # Every sample still carries exactly its (now canonical) annotation.
    orphaned = 0
    for row in system.db.rows("sample"):
        annotations = system.annotations.annotations_for("sample", row["id"])
        if any(a.status in ("merged", "rejected") for a in annotations):
            orphaned += 1
    print(f"samples pointing at dead annotations: {orphaned} (must be 0)")


if __name__ == "__main__":
    main()
