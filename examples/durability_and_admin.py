"""Durability, crash recovery, schema evolution and admin tooling.

This example plays the operator, not the scientist:

1. run a few days of simulated daily business against a durable
   deployment directory;
2. kill the process "mid-flight" (we just drop the object without a
   clean close) and recover from WAL — nothing committed is lost, and a
   torn final record is healed;
3. evolve the schema with a bookkept migration (add a barcode column +
   index to samples) while the data is live;
4. pull the facility usage report and a provenance record.

Run with::

    python examples/durability_and_admin.py
"""

import tempfile
from pathlib import Path

from repro import BFabric
from repro.orm.migrations import Migration, MigrationRunner
from repro.storage import Column, ColumnType
from repro.workload import BusinessSimulator


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "deployment"

        # --- phase 1: normal operation -------------------------------------
        system = BFabric(data)
        report = BusinessSimulator(system, seed=11).simulate_days(5)
        counts_before = system.deployment_statistics()
        print("five days of simulated business:",
              f"{report.samples} samples, {report.imports} imports,",
              f"{report.experiment_runs} experiment runs,",
              f"{report.merges} vocabulary merges")
        # Simulated crash: no close(), no checkpoint. On top of that,
        # tear the final WAL record the way a power cut would.
        wal = data / "db" / "wal.log"
        payload = wal.read_bytes()
        wal.write_bytes(payload[:-7])
        del system

        # --- phase 2: recovery -----------------------------------------------
        revived = BFabric(data)
        stats = revived.recover()
        print(f"\nrecovered: {stats['wal_txns']} transactions replayed "
              f"(+{stats['snapshot_rows']} snapshot rows)")
        counts_after = revived.deployment_statistics()
        lost = {
            key: counts_before[key] - counts_after[key]
            for key in counts_before
            if counts_before[key] != counts_after[key]
        }
        print("objects lost to the torn record:", lost or
              "none beyond the in-flight transaction")
        problems = revived.db.verify_integrity()
        print(f"integrity problems after recovery: {len(problems)}")

        # --- phase 3: schema evolution ------------------------------------------
        runner = MigrationRunner(revived.db)
        runner.add(Migration(
            "2010_02_sample_barcode",
            "barcode column + index for the new plate robot",
            lambda db: (
                db.add_column(
                    "sample",
                    Column("barcode", ColumnType.TEXT, default=""),
                ),
                db.add_index("sample", "barcode"),
            ),
        ))
        applied = runner.run_pending()
        print(f"\nmigrations applied: {applied}")
        sample = next(iter(revived.db.rows("sample")), None)
        if sample is not None:
            revived.db.update("sample", sample["id"], {"barcode": "BC-0001"})
            found = (
                revived.db.query("sample").where("barcode", "=", "BC-0001").one()
            )
            print(f"barcode column live and indexed: sample {found['id']} "
                  f"-> {found['barcode']} "
                  f"(plan: {revived.db.query('sample').where('barcode', '=', 'BC-0001').explain()['strategy']})")

        # --- phase 4: admin views --------------------------------------------------
        admin = revived.bootstrap()
        revived.reindex_all()
        usage = revived.reports.full_report(admin)
        print("\nbusiest projects:")
        for row in usage["projects"][:3]:
            print(f"  {row['project']}: {row['workunits']} workunits")
        print("vocabulary health:", dict(sorted(usage["vocabulary"].items())))

        finished = (
            revived.db.query("workunit").where("status", "=", "available").first()
        )
        if finished is not None:
            print("\nprovenance of one finished workunit:")
            print(revived.provenance.trace(finished["id"]).render_text())

        revived.maintenance.checkpoint(admin)
        print("\ncheckpoint written; WAL truncated — clean shutdown.")
        revived.close()


if __name__ == "__main__":
    main()
