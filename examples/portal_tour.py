"""Drive the web portal end to end — optionally serve it on localhost.

Without arguments the example walks an in-process browser through every
demo screen (login, sample form with vocabularies, annotation review,
import wizard, experiment run, search, admin dashboard) and prints what
it saw.  With ``--serve [port]`` it additionally starts a real
:mod:`wsgiref` HTTP server so you can click through the same screens
yourself (user ``demo`` / password ``demo1234``).

Run with::

    python examples/portal_tour.py
    python examples/portal_tour.py --serve 8080
"""

import sys
import tempfile

from repro import BFabric
from repro.dataimport import AffymetrixGeneChipProvider
from repro.portal import PortalApplication
from repro.portal.testing import PortalClient


def build_system(tmp: str) -> BFabric:
    from repro.annotations.seed import seed_standard_vocabularies

    system = BFabric(tmp)
    admin = system.bootstrap(password="admin1234")
    system.directory.set_password(admin, admin.user_id, "admin1234")
    demo = system.add_user(
        admin, login="demo", full_name="Demo Scientist", password="demo1234"
    )
    system.add_user(
        admin, login="expert", full_name="FGCZ Expert", role="employee",
        password="expert1234",
    )
    system.imports.register_provider(AffymetrixGeneChipProvider("GeneChip", runs=1))
    # Starter vocabularies so the registration forms have drop-downs.
    seed_standard_vocabularies(system.annotations, admin)
    return system


def step(title: str, response) -> None:
    marker = "ok" if response.status in (200, 303) else f"HTTP {response.status}"
    print(f"  [{marker:>8s}] {title}")


def tour(system: BFabric) -> None:
    portal = PortalApplication(system)
    client = PortalClient(portal)

    print("scientist session:")
    step("login", client.login("demo", "demo1234"))
    step("home with task list + quick search", client.get("/"))
    step("create project", client.post(
        "/projects", {"name": "Arabidopsis light response",
                      "description": "demo"}))
    step("register sample (Figure 2)", client.post(
        "/projects/1/samples",
        {"name": "col0 wildtype", "species": "Arabidopsis Thaliana",
         "description": ""}))
    for name in ("scan01 a", "scan01 b"):
        step(f"register extract {name!r} (Figure 3)", client.post(
            "/samples/1/extracts", {"name": name, "procedure": "TRIzol"}))
    step("import wizard lists GeneChip files (Figure 9)",
         client.get("/projects/1/import?provider=GeneChip"))
    step("create workunit from import", client.post(
        "/projects/1/import",
        {"provider": "GeneChip", "workunit_name": "chips", "mode": "copy",
         "file": ["scan01_a.cel", "scan01_b.cel"]}))
    step("assign extracts, best matches preselected (Figures 10-11)",
         client.post("/workunits/1/assign",
                     {"extract_1": "1", "extract_2": "2"}))
    step("register application (Figure 12)", client.post("/applications", {
        "name": "two group analysis", "connector": "rserve",
        "executable": "two_group_analysis", "description": "",
        "interface": ('{"inputs": ["resource"], "parameters": '
                      '[{"name": "reference_group", "type": "text", '
                      '"required": true}]}')}))
    step("define experiment (Figure 13)", client.post(
        "/projects/1/experiments",
        {"name": "light effect", "application_id": "1",
         "attributes": '{"treatment": "light"}', "resource": ["1", "2"]}))
    step("run experiment to Ready (Figures 14-16)", client.post(
        "/experiments/1/run",
        {"workunit_name": "results", "param_reference_group": "_a"}))
    step("search with history", client.get("/search?q=arabidopsis"))
    step("browse networked objects", client.get("/browse/sample/1"))

    print("admin session:")
    admin_client = PortalClient(portal)
    step("login", admin_client.login("admin", "admin1234"))
    step("dashboard with deployment table", admin_client.get("/admin"))
    step("audit trail", admin_client.get("/admin/audit"))
    step("workflow administration", admin_client.get("/admin/workflows"))

    print("\nportal tour complete; deployment:",
          system.deployment_statistics())


def serve(system: BFabric, port: int) -> None:
    from wsgiref.simple_server import make_server

    portal = PortalApplication(system)
    print(f"\nserving the B-Fabric portal on http://127.0.0.1:{port} "
          "(demo/demo1234, expert/expert1234, admin/admin1234) — Ctrl-C stops")
    with make_server("127.0.0.1", port, portal) as httpd:
        httpd.serve_forever()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        system = build_system(tmp)
        tour(system)
        if "--serve" in sys.argv:
            position = sys.argv.index("--serve")
            port = int(sys.argv[position + 1]) if len(sys.argv) > position + 1 else 8080
            serve(system, port)


if __name__ == "__main__":
    main()
