"""A proteomics facility: mass-spec imports and a custom connector app.

The paper stresses that B-Fabric is extensible at run time: "a connector
is written for a certain type of application ... then the scientist
writes the application in any language".  This example plays that out
for a proteomics core facility:

* an LTQ-FT mass spectrometer is attached as a data provider with a
  relevance filter (only fresh ``.raw`` files);
* a bioinformatician deploys a *protein identification* application on
  the local Python connector — a simulated database-search engine that
  scores synthesized spectra against a decoy database;
* two research groups import runs, execute searches, and compare notes
  through cross-project full-text search (expert view).

Run with::

    python examples/proteomics_facility.py
"""

import datetime as dt
import hashlib
import random
import tempfile

from repro import BFabric
from repro.apps.connectors import RunOutcome, RunRequest
from repro.dataimport import MassSpectrometerProvider, RelevanceFilter

PROTEINS = [
    "ALBU_HUMAN", "TRFE_HUMAN", "HBA_HUMAN", "HBB_HUMAN", "CYC_HUMAN",
    "ACTB_HUMAN", "TBB5_HUMAN", "G3P_HUMAN", "ENOA_HUMAN", "PGK1_HUMAN",
]


def protein_search(request: RunRequest) -> RunOutcome:
    """A simulated database-search engine (Mascot/SEQUEST stand-in).

    Spectra are derived deterministically from the staged input bytes;
    each "identification" gets a score, and a decoy pass estimates the
    false-discovery rate — the same outputs a real engine reports.
    """
    fdr_cutoff = float(request.parameters.get("fdr", 0.01))
    identifications = []
    for path in request.input_files:
        seed = int.from_bytes(
            hashlib.sha256(path.read_bytes()).digest()[:8], "big"
        )
        rng = random.Random(seed)
        for protein in rng.sample(PROTEINS, k=rng.randint(3, 7)):
            target_score = rng.uniform(20, 90)
            decoy_score = rng.uniform(5, 40)
            fdr = min(1.0, decoy_score / max(target_score, 1e-9) / 3)
            if fdr <= fdr_cutoff or target_score > 70:
                identifications.append(
                    (path.name, protein, target_score, fdr)
                )
    result = request.workdir / "identifications.tsv"
    with open(result, "w", encoding="utf-8") as fh:
        fh.write("spectrum_file\tprotein\tscore\tfdr\n")
        for row in sorted(identifications, key=lambda r: -r[2]):
            fh.write(f"{row[0]}\t{row[1]}\t{row[2]:.1f}\t{row[3]:.4f}\n")
    report = (
        f"Protein identification: {len(identifications)} hits across "
        f"{len(request.input_files)} runs at FDR <= {fdr_cutoff}"
    )
    return RunOutcome(
        files=[result], report=report,
        metrics={"identifications": len(identifications)},
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        system = BFabric(tmp)
        admin = system.bootstrap()

        # --- facility setup ----------------------------------------------------
        uzh = system.directory.create_organization(admin, "University of Zurich")
        institute = system.directory.create_institute(
            admin, "Institute of Molecular Biology", uzh.id
        )
        alice = system.add_user(
            admin, login="alice", full_name="Alice (group A)",
            institute_id=institute.id,
        )
        bob = system.add_user(
            admin, login="bob", full_name="Bob (group B)",
            institute_id=institute.id,
        )
        # Only this week's .raw files are relevant in the picker.
        system.imports.register_provider(
            MassSpectrometerProvider(
                "LTQ-FT", runs=4,
                start=dt.datetime(2010, 1, 4, 8, 0),
                relevance=RelevanceFilter(
                    extensions=["raw"],
                    modified_after=dt.datetime(2010, 1, 4),
                ),
            )
        )
        # The bioinformatician deploys the search engine on the connector.
        system.applications.connector("python").register_script(
            "protein_search", protein_search
        )
        app = system.applications.register_application(
            admin,
            name="protein identification",
            connector="python",
            executable="protein_search",
            interface={
                "inputs": ["resource"],
                "parameters": [
                    {"name": "fdr", "type": "float", "default": 0.01},
                ],
            },
            description="Database search over LTQ-FT raw files",
        )

        # --- two groups work independently ---------------------------------------
        for scientist, runs in ((alice, ["ms01", "ms02"]), (bob, ["ms03"])):
            project = system.projects.create(
                scientist, f"{scientist.login}'s serum study"
            )
            sample = system.samples.register_sample(
                scientist, project.id, f"{scientist.login} serum pool",
                species="Homo sapiens",
            )
            system.samples.batch_register_extracts(
                scientist, sample.id,
                [f"{run} {letter}" for run in runs for letter in "ab"],
                procedure="protein digest",
            )
            wanted = [
                f.name
                for f in system.imports.browse("LTQ-FT")
                if f.name.split("_")[0] in runs
            ]
            workunit, resources, _ = system.imports.import_files(
                scientist, project.id, "LTQ-FT", wanted,
                workunit_name=f"{scientist.login} raw import",
            )
            system.imports.apply_assignments(scientist, workunit.id)
            experiment = system.experiments.define(
                scientist, project.id, f"{scientist.login} search",
                application_id=app.id,
                resource_ids=[r.id for r in resources],
                attributes={"instrument": "LTQ-FT"},
            )
            result = system.experiments.run(
                scientist, experiment.id,
                workunit_name=f"{scientist.login} identifications",
                parameters={"fdr": 0.05},
            )
            print(f"{scientist.login}: run {result.status} — "
                  f"{system.results.read_report(result.id)}")

        # --- isolation and the expert's cross-project view -----------------------
        alice_hits = system.search.search(alice, "type:workunit identifications")
        print(f"\nalice sees {len(alice_hits)} identification workunit(s) "
              "(her own only)")
        expert_hits = system.search.search(admin, "type:workunit identifications")
        print(f"the facility head sees {len(expert_hits)} "
              "(cross-project, Figure: inter-project analyses)")

        print("\ndeployment statistics:", system.deployment_statistics())


if __name__ == "__main__":
    main()
