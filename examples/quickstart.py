"""Quickstart: the paper's §2 demo scenario in ~80 lines.

A scientist studies the effect of a gene and of light on *Arabidopsis
Thaliana*: register samples and extracts, import GeneChip scans, let the
system match files to extracts, register an analysis application, run
the experiment, and download the results.

Run with::

    python examples/quickstart.py
"""

import io
import tempfile
import zipfile

from repro import BFabric
from repro.dataimport import AffymetrixGeneChipProvider


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        system = BFabric(tmp)  # durable: WAL + managed file store under tmp
        admin = system.bootstrap()
        scientist = system.add_user(
            admin, login="plant_scientist", full_name="Plant Scientist"
        )

        # --- register project, samples, extracts (Figures 2-3) -------------
        project = system.projects.create(
            scientist, "Arabidopsis light response",
            description="Effect of a certain gene and of light",
        )
        sample = system.samples.register_sample(
            scientist, project.id, "col0 wildtype",
            species="Arabidopsis Thaliana",
            attributes={"ecotype": "Columbia-0"},
        )
        system.samples.batch_register_extracts(
            scientist, sample.id,
            ["scan01 a", "scan01 b", "scan02 a", "scan02 b"],
            procedure="TRIzol RNA extraction",
        )

        # --- import instrument data (Figures 9-11) -------------------------
        system.imports.register_provider(
            AffymetrixGeneChipProvider("Affymetrix GeneChip", runs=2)
        )
        cel_files = [
            f.name
            for f in system.imports.browse("Affymetrix GeneChip")
            if f.kind == "cel"
        ]
        workunit, resources, _ = system.imports.import_files(
            scientist, project.id, "Affymetrix GeneChip", cel_files,
            workunit_name="light experiment chips",
        )
        proposals = system.imports.proposals_for(scientist, workunit.id)
        print(f"imported {len(resources)} files; "
              f"{len(proposals)} extract assignments proposed")
        system.imports.apply_assignments(scientist, workunit.id)  # "save"

        # --- register the application (Figure 12) --------------------------
        application = system.applications.register_application(
            scientist,
            name="two group analysis",
            connector="rserve",
            executable="two_group_analysis",
            interface={
                "inputs": ["resource"],
                "parameters": [
                    {"name": "reference_group", "type": "text",
                     "required": True},
                    {"name": "alpha", "type": "float", "default": 0.05},
                ],
            },
        )

        # --- define and run the experiment (Figures 13-16) -----------------
        experiment = system.experiments.define(
            scientist, project.id, "gene and light effect",
            application_id=application.id,
            resource_ids=[r.id for r in resources],
            attributes={"species": "Arabidopsis Thaliana",
                        "treatment": "light"},
        )
        result = system.experiments.run(
            scientist, experiment.id,
            workunit_name="two group results",
            parameters={"reference_group": "_a"},
        )
        print(f"experiment run: workunit {result.id} is {result.status}")
        print()
        print(system.results.read_report(result.id))

        payload = system.results.as_zip_bytes(scientist, result.id)
        with zipfile.ZipFile(io.BytesIO(payload)) as archive:
            print("results zip contains:", archive.namelist())

        # --- search and statistics ------------------------------------------
        hits = system.search.quick_search(scientist, "arabidopsis light")
        print("\nquick search 'arabidopsis light':")
        for hit in hits[:5]:
            print(f"  {hit.entity_type:14s} {hit.label!r}  score={hit.score:.3f}")
        print("\ndeployment statistics:", system.deployment_statistics())


if __name__ == "__main__":
    main()
