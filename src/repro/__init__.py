"""B-Fabric reproduction: integrated data and application management for
life sciences (Tuerker et al., EDBT 2010 demo).

The public entry point is :class:`repro.BFabric`; subsystems are usable
standalone (``repro.storage`` is a general embedded relational engine,
``repro.workflow`` a general state-machine workflow engine, ...).
"""

from repro.facade import BFabric
from repro.security.principals import Principal, Role, SYSTEM

__version__ = "1.0.0"

__all__ = ["BFabric", "Principal", "Role", "SYSTEM", "__version__"]
