"""Administrative functions (paper §2, Miscellaneous Functions).

"B-Fabric provides a bunch of administrative functions to manage
objects, workflows, errors, and maintain the system."
"""

from repro.admin.errors import ErrorRegistry, ErrorRecord
from repro.admin.maintenance import MaintenanceService
from repro.admin.reports import UsageReports

__all__ = ["ErrorRegistry", "ErrorRecord", "MaintenanceService", "UsageReports"]
