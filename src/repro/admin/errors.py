"""The error registry: operational failures an admin should look at."""

from __future__ import annotations

from repro.orm import (
    BoolField,
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock


class ErrorRecord(Model):
    """One recorded operational error."""

    __table__ = "error_record"
    id = IntField(primary_key=True)
    at = DateTimeField()
    source = TextField(nullable=False, index=True)  # subsystem name
    message = TextField(nullable=False)
    details = JsonField(default=dict)
    resolved = BoolField(default=False)
    resolved_by = IntField(foreign_key="user.id")
    resolved_at = DateTimeField()


class ErrorRegistry:
    """Records and manages operational errors."""

    def __init__(self, registry: Registry, *, clock: Clock | None = None):
        self._clock = clock or SystemClock()
        self._errors = registry.repository(ErrorRecord)

    def report(
        self, source: str, message: str, details: dict | None = None
    ) -> ErrorRecord:
        return self._errors.create(
            at=self._clock.now(),
            source=source,
            message=message,
            details=details or {},
        )

    def open_errors(self) -> list[ErrorRecord]:
        return (
            self._errors.query()
            .where("resolved", "=", False)
            .order_by("id")
            .all()
        )

    def resolve(self, principal: Principal, error_id: int) -> ErrorRecord:
        return self._errors.update(
            error_id,
            resolved=True,
            resolved_by=principal.user_id,
            resolved_at=self._clock.now(),
        )

    def counts_by_source(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self._errors.iter():
            counts[record.source] = counts.get(record.source, 0) + 1
        return counts
