"""System maintenance: integrity checks, reindexing, checkpointing."""

from __future__ import annotations

from typing import Any

from repro.audit.log import AuditLog
from repro.errors import AccessDenied
from repro.search.engine import SearchEngine
from repro.security.principals import Principal
from repro.storage.database import Database
from repro.workflow.engine import WorkflowEngine


class MaintenanceService:
    """Admin-only housekeeping over the whole deployment."""

    def __init__(
        self,
        database: Database,
        *,
        audit: AuditLog,
        search: SearchEngine | None = None,
        workflow: WorkflowEngine | None = None,
    ):
        self._db = database
        self._audit = audit
        self._search = search
        self._workflow = workflow

    @staticmethod
    def _require_admin(principal: Principal, what: str) -> None:
        if not principal.is_admin:
            raise AccessDenied(
                f"only admins may {what}",
                principal=principal.login,
                permission="admin.maintenance",
            )

    def integrity_check(self, principal: Principal) -> list[str]:
        """Cross-check rows, constraints and indexes; list problems."""
        self._require_admin(principal, "run integrity checks")
        problems = self._db.verify_integrity()
        self._audit.record(
            principal, "update", "system", 0,
            f"integrity check: {len(problems)} problem(s)",
        )
        return problems

    def rebuild_indexes(self, principal: Principal) -> None:
        self._require_admin(principal, "rebuild indexes")
        self._db.rebuild_indexes()
        self._audit.record(principal, "update", "system", 0, "indexes rebuilt")

    def checkpoint(self, principal: Principal):
        """Snapshot the database and truncate the WAL."""
        self._require_admin(principal, "checkpoint the database")
        path = self._db.checkpoint()
        self._audit.record(
            principal, "update", "system", 0, f"checkpoint {path.name}"
        )
        return path

    def dashboard(self, principal: Principal) -> dict[str, Any]:
        """One status dict for the admin landing page."""
        self._require_admin(principal, "view the dashboard")
        report: dict[str, Any] = {"storage": self._db.statistics()}
        if self._search is not None:
            report["search"] = self._search.statistics()
        if self._workflow is not None:
            active = self._workflow.active_instances()
            report["workflows"] = {
                "active": len(active),
                "definitions": self._workflow.definition_names(),
            }
        return report
