"""Facility usage reports.

A center like FGCZ bills and plans by usage; these reports aggregate the
deployment with the storage engine's group-by support: objects per
project, storage by mode, activity by user, application popularity.
Rendered by the admin dashboard and exportable as CSV.
"""

from __future__ import annotations

import csv
import io
from typing import Any

from repro.errors import AccessDenied
from repro.security.principals import Principal
from repro.storage.database import Database


class UsageReports:
    """Aggregated views over one deployment."""

    def __init__(self, database: Database):
        self._db = database

    @staticmethod
    def _require_expert(principal: Principal) -> None:
        if not principal.is_expert:
            raise AccessDenied(
                "usage reports are for center staff",
                principal=principal.login,
                permission="admin.reports",
            )

    def objects_per_project(
        self, principal: Principal, *, top: int = 10
    ) -> list[dict[str, Any]]:
        """The busiest projects by workunit count, with sample counts."""
        self._require_expert(principal)
        workunits = self._db.query("workunit").group_by("project_id")
        samples = self._db.query("sample").group_by("project_id")
        rows = []
        for project_id, workunit_count in workunits.items():
            project = self._db.get_or_none("project", project_id) or {}
            rows.append(
                {
                    "project_id": project_id,
                    "project": project.get("name", "?"),
                    "workunits": workunit_count,
                    "samples": samples.get(project_id, 0),
                }
            )
        rows.sort(key=lambda r: (-r["workunits"], r["project_id"]))
        return rows[:top]

    def storage_by_mode(self, principal: Principal) -> dict[str, dict[str, Any]]:
        """Resource count and bytes per storage mode (internal/linked/...)."""
        self._require_expert(principal)
        counts = self._db.query("data_resource").group_by("storage")
        total_bytes = self._db.query("data_resource").group_by(
            "storage", aggregate="sum", value_column="size_bytes"
        )
        return {
            mode: {"resources": counts[mode], "bytes": total_bytes.get(mode, 0)}
            for mode in counts
        }

    def activity_by_user(
        self, principal: Principal, *, top: int = 10
    ) -> list[dict[str, Any]]:
        """Audit-trail activity per user."""
        self._require_expert(principal)
        per_user = self._db.query("audit_entry").group_by("user_login")
        rows = [
            {"user": login, "operations": count}
            for login, count in per_user.items()
        ]
        rows.sort(key=lambda r: (-r["operations"], r["user"]))
        return rows[:top]

    def application_popularity(self, principal: Principal) -> list[dict[str, Any]]:
        """Runs per registered application."""
        self._require_expert(principal)
        per_application = (
            self._db.query("workunit")
            .where("application_id", "is_null", False)
            .group_by("application_id")
        )
        rows = []
        for application_id, runs in per_application.items():
            application = self._db.get_or_none("application", application_id) or {}
            rows.append(
                {
                    "application_id": application_id,
                    "application": application.get("name", "?"),
                    "runs": runs,
                }
            )
        rows.sort(key=lambda r: (-r["runs"], r["application_id"]))
        return rows

    def vocabulary_health(self, principal: Principal) -> dict[str, int]:
        """Annotation lifecycle counts — how dirty is the vocabulary?"""
        self._require_expert(principal)
        return self._db.query("annotation").group_by("status")

    def full_report(self, principal: Principal) -> dict[str, Any]:
        self._require_expert(principal)
        return {
            "projects": self.objects_per_project(principal),
            "storage": self.storage_by_mode(principal),
            "users": self.activity_by_user(principal),
            "applications": self.application_popularity(principal),
            "vocabulary": self.vocabulary_health(principal),
        }

    def export_csv(self, principal: Principal) -> str:
        """The project report as CSV for spreadsheets."""
        rows = self.objects_per_project(principal, top=10_000)
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["project_id", "project", "workunits", "samples"])
        for row in rows:
            writer.writerow(
                [row["project_id"], row["project"], row["workunits"],
                 row["samples"]]
            )
        return buffer.getvalue()
