"""Annotation management: vocabularies, review, similarity, merging.

The paper's "minimal metadata schema approach" pairs free extensibility
with curation (Figures 2–7):

* every annotated attribute (Disease State, Tissue, ...) has an
  extensible controlled vocabulary;
* any user may add a missing value while filling a form — it enters the
  vocabulary as *pending* and an expert must review and *release* it;
* near-duplicate values (``Hopeless`` vs. ``Hopeles``) are detected
  automatically and recommended for merging;
* merging re-associates every object that referenced the merged value —
  samples annotated with the misspelling follow automatically.
"""

from repro.annotations.service import (
    AnnotationService,
    ANNOTATION_STATES,
)
from repro.annotations.similarity import SimilarityDetector, MergeRecommendation
from repro.annotations.schema import annotation_models

__all__ = [
    "AnnotationService",
    "ANNOTATION_STATES",
    "SimilarityDetector",
    "MergeRecommendation",
    "annotation_models",
]
