"""Persistent schema of the annotation subsystem."""

from __future__ import annotations

from repro.orm import (
    DateTimeField,
    IntField,
    JsonField,
    Model,
    TextField,
)


class AttributeDef(Model):
    """A named annotated attribute, e.g. "Disease State".

    ``applies_to`` scopes the attribute to an entity type so that forms
    only offer relevant vocabularies (sample, extract, resource, ...).
    """

    __table__ = "attribute_def"
    id = IntField(primary_key=True)
    name = TextField(nullable=False)
    applies_to = TextField(nullable=False, default="sample")
    description = TextField(default="")
    created_at = DateTimeField()
    __unique_together__ = [("name", "applies_to")]


class Annotation(Model):
    """One vocabulary value of one attribute.

    Lifecycle: ``pending`` (user-created, awaiting expert review) →
    ``released`` | ``rejected``; a released/pending value can later
    become ``merged`` into another, recorded in ``merged_into``.
    """

    __table__ = "annotation"
    id = IntField(primary_key=True)
    attribute_id = IntField(nullable=False, foreign_key="attribute_def.id")
    value = TextField(nullable=False)
    status = TextField(
        nullable=False,
        default="pending",
        check=lambda v: v in ("pending", "released", "rejected", "merged"),
    )
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()
    released_by = IntField(foreign_key="user.id")
    released_at = DateTimeField()
    merged_into = IntField(foreign_key="annotation.id")
    #: Extra attribute values carried by the annotation (paper Figure 6
    #: shows merging choosing among per-annotation attributes).
    extra = JsonField(default=dict)
    __unique_together__ = [("attribute_id", "value")]


class AnnotationLink(Model):
    """Associates an annotation value with an annotated object."""

    __table__ = "annotation_link"
    id = IntField(primary_key=True)
    annotation_id = IntField(nullable=False, foreign_key="annotation.id")
    entity_type = TextField(nullable=False)
    entity_id = IntField(nullable=False)
    __unique_together__ = [("annotation_id", "entity_type", "entity_id")]
    __indexes__ = [("entity_type", "entity_id")]


def annotation_models() -> list[type[Model]]:
    return [AttributeDef, Annotation, AnnotationLink]
