"""Standard starter vocabularies.

The paper rejects heavyweight standard schemas (MIAME, Gene Ontology)
for a "minimal metadata schema approach" — but a fresh deployment still
wants sensible starter vocabularies so the first forms have drop-downs.
These are the attribute sets the FGCZ-style screens show (Disease
State, Tissue, Treatment, Extraction Method), seeded as *released*
values by an expert principal.
"""

from __future__ import annotations

from repro.annotations.service import AnnotationService
from repro.errors import BFabricError
from repro.security.principals import Principal

#: attribute name -> (applies_to, values)
STANDARD_VOCABULARIES: dict[str, tuple[str, tuple[str, ...]]] = {
    "Disease State": (
        "sample",
        ("healthy", "infected", "tumor", "control"),
    ),
    "Tissue": (
        "sample",
        ("leaf", "root", "liver", "brain", "muscle", "whole organism",
         "cell culture"),
    ),
    "Treatment": (
        "sample",
        ("untreated", "light", "dark", "heat", "cold", "drought"),
    ),
    "Extraction Method": (
        "extract",
        ("TRIzol", "phenol chloroform", "column purification",
         "protein digest"),
    ),
}


def seed_standard_vocabularies(
    annotations: AnnotationService, expert: Principal
) -> dict[str, int]:
    """Create the standard attributes + released values.

    Idempotent: existing attributes/values are left alone.  Returns
    ``{attribute name: values released now}``.
    """
    report: dict[str, int] = {}
    for name, (applies_to, values) in STANDARD_VOCABULARIES.items():
        try:
            attribute = annotations.attribute_by_name(name, applies_to)
        except BFabricError:
            attribute = annotations.define_attribute(
                expert, name, applies_to=applies_to
            )
        released = 0
        for value in values:
            try:
                annotation, _similar = annotations.create_annotation(
                    expert, attribute.id, value
                )
            except BFabricError:
                continue  # already present
            annotations.release(expert, annotation.id)
            released += 1
        report[name] = released
    return report
