"""The annotation service: vocabulary CRUD, review lifecycle, merging.

Events published on the bus (consumed by the task system and indexer):

* ``annotation.created`` — a new pending value needs expert review;
* ``annotation.released`` / ``annotation.rejected`` — review done;
* ``annotation.merged`` — two values were merged; links re-pointed.
"""

from __future__ import annotations

from typing import Any

from repro.annotations.schema import Annotation, AnnotationLink, AttributeDef
from repro.annotations.similarity import MergeRecommendation, SimilarityDetector
from repro.audit.log import AuditLog
from repro.errors import (
    AccessDenied,
    EntityNotFound,
    StateError,
    ValidationError,
)
from repro.orm import Registry
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.text import normalize_whitespace

ANNOTATION_STATES = ("pending", "released", "rejected", "merged")


class AnnotationService:
    """All operations on controlled vocabularies."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        events: EventBus,
        clock: Clock | None = None,
        detector: SimilarityDetector | None = None,
    ):
        self._registry = registry
        self._db = registry.database
        self._audit = audit
        self._events = events
        self._clock = clock or SystemClock()
        self.detector = detector or SimilarityDetector()
        self._attributes = registry.repository(AttributeDef)
        self._annotations = registry.repository(Annotation)
        self._links = registry.repository(AnnotationLink)

    # -- attribute definitions ---------------------------------------------------

    def define_attribute(
        self,
        principal: Principal,
        name: str,
        *,
        applies_to: str = "sample",
        description: str = "",
    ) -> AttributeDef:
        """Declare an annotated attribute (expert operation)."""
        if not principal.is_expert:
            raise AccessDenied(
                "only experts define attributes",
                principal=principal.login,
                permission="annotation.define_attribute",
            )
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("attribute name required", {"name": "required"})
        attribute = self._attributes.create(
            name=name,
            applies_to=applies_to,
            description=description,
            created_at=self._clock.now(),
        )
        self._audit.record(
            principal, "create", "attribute_def", attribute.id, f"attribute {name}"
        )
        return attribute

    def attribute_by_name(self, name: str, applies_to: str = "sample") -> AttributeDef:
        attribute = self._attributes.find_one(name=name, applies_to=applies_to)
        if attribute is None:
            raise EntityNotFound("AttributeDef", f"{name}/{applies_to}")
        return attribute

    def attributes_for(self, applies_to: str) -> list[AttributeDef]:
        return (
            self._attributes.query()
            .where("applies_to", "=", applies_to)
            .order_by("name")
            .all()
        )

    # -- vocabulary --------------------------------------------------------------

    def vocabulary(
        self, attribute_id: int, *, include_pending: bool = False
    ) -> list[Annotation]:
        """Values offered in drop-down menus: released (+ pending if asked)."""
        statuses = ("released", "pending") if include_pending else ("released",)
        return (
            self._annotations.query()
            .where("attribute_id", "=", attribute_id)
            .where("status", "in", statuses)
            .order_by("value")
            .all()
        )

    def create_annotation(
        self,
        principal: Principal,
        attribute_id: int,
        value: str,
        *,
        extra: dict[str, Any] | None = None,
    ) -> tuple[Annotation, list[tuple[Annotation, float]]]:
        """Add a vocabulary value; returns ``(annotation, similar)``.

        Every user-created value starts ``pending`` — "all annotations
        created by users must be reviewed by an expert".  The similar
        list carries existing values the new one nearly duplicates, so
        UIs can warn immediately (the merge recommendation proper is
        surfaced to the expert at review time).
        """
        if not self._attributes.exists(attribute_id):
            raise EntityNotFound("AttributeDef", attribute_id)
        value = normalize_whitespace(value)
        if not value:
            raise ValidationError("annotation value required", {"value": "required"})
        duplicate = self._annotations.find_one(
            attribute_id=attribute_id, value=value
        )
        if duplicate is not None:
            raise ValidationError(
                f"value {value!r} already exists for this attribute",
                {"value": "duplicate"},
            )
        annotation = self._annotations.create(
            attribute_id=attribute_id,
            value=value,
            status="pending",
            created_by=principal.user_id,
            created_at=self._clock.now(),
            extra=extra or {},
        )
        self._audit.record(
            principal, "create", "annotation", annotation.id, f"annotation {value!r}"
        )
        similar_rows = self.detector.similar_to(
            value,
            [
                a.to_row()
                for a in self.vocabulary(attribute_id, include_pending=True)
                if a.id != annotation.id
            ],
        )
        similar = [
            (Annotation.from_row(row), score) for row, score in similar_rows
        ]
        self._events.publish(
            "annotation.created",
            annotation=annotation,
            principal=principal,
            similar=similar,
        )
        return annotation, similar

    # -- review lifecycle ------------------------------------------------------------

    def pending_review(self) -> list[Annotation]:
        """The expert's review queue, oldest first."""
        return (
            self._annotations.query()
            .where("status", "=", "pending")
            .order_by("id")
            .all()
        )

    def _require_expert(self, principal: Principal, operation: str) -> None:
        if not principal.is_expert:
            raise AccessDenied(
                f"only experts may {operation} annotations",
                principal=principal.login,
                permission=f"annotation.{operation}",
            )

    def release(self, principal: Principal, annotation_id: int) -> Annotation:
        """Expert review outcome: the value is correct (paper Figure 4)."""
        self._require_expert(principal, "release")
        annotation = self._annotations.get(annotation_id)
        if annotation.status != "pending":
            raise StateError(
                f"annotation {annotation_id} is {annotation.status}, not pending"
            )
        updated = self._annotations.update(
            annotation_id,
            status="released",
            released_by=principal.user_id,
            released_at=self._clock.now(),
        )
        self._audit.record(
            principal, "update", "annotation", annotation_id,
            f"released {annotation.value!r}",
        )
        self._events.publish(
            "annotation.released", annotation=updated, principal=principal
        )
        return updated

    def reject(self, principal: Principal, annotation_id: int) -> Annotation:
        """Expert review outcome: the value is wrong; links are removed."""
        self._require_expert(principal, "reject")
        annotation = self._annotations.get(annotation_id)
        if annotation.status != "pending":
            raise StateError(
                f"annotation {annotation_id} is {annotation.status}, not pending"
            )
        with self._db.transaction() as txn:
            for link in self._links.find(annotation_id=annotation_id):
                txn.delete(AnnotationLink.__table__, link.id)
            txn.update(
                Annotation.__table__, annotation_id, {"status": "rejected"}
            )
        updated = self._annotations.get(annotation_id)
        self._audit.record(
            principal, "update", "annotation", annotation_id,
            f"rejected {annotation.value!r}",
        )
        self._events.publish(
            "annotation.rejected", annotation=updated, principal=principal
        )
        return updated

    # -- similarity & merge -------------------------------------------------------------

    def merge_recommendations(
        self, attribute_id: int | None = None
    ) -> list[MergeRecommendation]:
        """Near-duplicate pairs an expert should consider merging."""
        query = self._annotations.query()
        if attribute_id is not None:
            query.where("attribute_id", "=", attribute_id)
        rows = [a.to_row() for a in query.all()]
        by_attribute: dict[int, list[dict]] = {}
        for row in rows:
            by_attribute.setdefault(row["attribute_id"], []).append(row)
        recommendations: list[MergeRecommendation] = []
        for group in by_attribute.values():
            recommendations.extend(self.detector.recommendations(group))
        recommendations.sort(key=lambda rec: (-rec.score, rec.keep_id))
        return recommendations

    def merge(
        self,
        principal: Principal,
        keep_id: int,
        merge_id: int,
        *,
        chosen_extra: dict[str, Any] | None = None,
    ) -> Annotation:
        """Merge annotation *merge_id* into *keep_id* (paper Figures 6–7).

        Every object annotated with the merged value is re-associated
        with the kept value, atomically.  ``chosen_extra`` lets the
        expert pick the attribute values of the merge result (Figure 6's
        selection form); omitted keys keep the survivor's values.
        """
        self._require_expert(principal, "merge")
        if keep_id == merge_id:
            raise ValidationError("cannot merge an annotation with itself")
        keep = self._annotations.get(keep_id)
        merge = self._annotations.get(merge_id)
        if keep.attribute_id != merge.attribute_id:
            raise ValidationError(
                "annotations belong to different attributes "
                f"({keep.attribute_id} vs {merge.attribute_id})"
            )
        if keep.status == "merged":
            raise StateError(f"annotation {keep_id} was itself merged away")
        if merge.status == "merged":
            raise StateError(f"annotation {merge_id} is already merged")

        moved = 0
        with self._db.transaction() as txn:
            for link in self._links.find(annotation_id=merge_id):
                existing = (
                    self._links.query()
                    .where("annotation_id", "=", keep_id)
                    .where("entity_type", "=", link.entity_type)
                    .where("entity_id", "=", link.entity_id)
                    .exists()
                )
                if existing:
                    # Object already carries the survivor; drop duplicate.
                    txn.delete(AnnotationLink.__table__, link.id)
                else:
                    txn.update(
                        AnnotationLink.__table__, link.id,
                        {"annotation_id": keep_id},
                    )
                moved += 1
            txn.update(
                Annotation.__table__,
                merge_id,
                {"status": "merged", "merged_into": keep_id},
            )
            changes: dict[str, Any] = {}
            if chosen_extra is not None:
                changes["extra"] = chosen_extra
            if keep.status == "pending":
                # Merging is an expert act; the survivor is implicitly
                # reviewed and released.
                changes.update(
                    status="released",
                    released_by=principal.user_id,
                    released_at=self._clock.now(),
                )
            if changes:
                txn.update(Annotation.__table__, keep_id, changes)
        result = self._annotations.get(keep_id)
        self._audit.record(
            principal, "update", "annotation", keep_id,
            f"merged {merge.value!r} into {keep.value!r} ({moved} links moved)",
            {"merged_id": merge_id, "links_moved": moved},
        )
        self._events.publish(
            "annotation.merged",
            keep=result,
            merged=self._annotations.get(merge_id),
            principal=principal,
            links_moved=moved,
        )
        return result

    def resolve(self, annotation_id: int) -> Annotation:
        """Follow merge redirects to the surviving annotation."""
        seen: set[int] = set()
        current = self._annotations.get(annotation_id)
        while current.status == "merged" and current.merged_into is not None:
            if current.id in seen:  # pragma: no cover - merge() prevents cycles
                raise StateError(f"merge cycle at annotation {current.id}")
            seen.add(current.id)
            current = self._annotations.get(current.merged_into)
        return current

    # -- linking -----------------------------------------------------------------------

    def annotate(
        self,
        principal: Principal,
        annotation_id: int,
        entity_type: str,
        entity_id: int,
    ) -> AnnotationLink:
        """Attach a vocabulary value to an object."""
        annotation = self._annotations.get(annotation_id)
        if annotation.status in ("rejected", "merged"):
            raise StateError(
                f"annotation {annotation_id} is {annotation.status}; "
                "annotate with the surviving value"
            )
        existing = (
            self._links.query()
            .where("annotation_id", "=", annotation_id)
            .where("entity_type", "=", entity_type)
            .where("entity_id", "=", entity_id)
            .first()
        )
        if existing is not None:
            return existing
        link = self._links.create(
            annotation_id=annotation_id,
            entity_type=entity_type,
            entity_id=entity_id,
        )
        self._audit.record(
            principal, "create", "annotation_link", link.id,
            f"annotated {entity_type}:{entity_id} with {annotation.value!r}",
        )
        return link

    def annotations_for(
        self, entity_type: str, entity_id: int
    ) -> list[Annotation]:
        """Vocabulary values attached to one object."""
        links = (
            self._links.query()
            .where("entity_type", "=", entity_type)
            .where("entity_id", "=", entity_id)
            .all()
        )
        return [self._annotations.get(link.annotation_id) for link in links]

    def entities_for(self, annotation_id: int) -> list[tuple[str, int]]:
        """Objects carrying one vocabulary value (Figure 7's sample list)."""
        return [
            (link.entity_type, link.entity_id)
            for link in self._links.find(annotation_id=annotation_id)
        ]
