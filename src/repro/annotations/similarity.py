"""Similar-annotation detection (paper Figure 5).

When a user creates an annotation that nearly duplicates an existing one
("Hopeles" vs. "Hopeless"), B-Fabric "automatically detects similar
annotations and recommends merging them".  The detector combines a
normalized edit-distance measure with token-set overlap (see
:mod:`repro.util.text`) and reports pairs above a threshold.

The default threshold 0.8 was chosen on a synthetic corpus of realistic
misspellings; the A2 benchmark sweeps it and reports precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.text import combined_similarity

DEFAULT_THRESHOLD = 0.8


@dataclass(frozen=True)
class MergeRecommendation:
    """A pair of annotation values the system suggests merging.

    ``keep_id`` is the suggested survivor (released beats pending, then
    older beats newer); ``merge_id`` the suggested duplicate.
    """

    keep_id: int
    merge_id: int
    keep_value: str
    merge_value: str
    score: float

    def involves(self, annotation_id: int) -> bool:
        return annotation_id in (self.keep_id, self.merge_id)


_STATUS_RANK = {"released": 0, "pending": 1}


def _survivor_order(row: dict) -> tuple:
    """Sort key: the first row of a sorted pair should survive a merge."""
    return (_STATUS_RANK.get(row["status"], 2), row["id"])


class SimilarityDetector:
    """Finds near-duplicate values within one attribute's vocabulary."""

    def __init__(self, threshold: float = DEFAULT_THRESHOLD):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold

    def score(self, a: str, b: str) -> float:
        """Similarity of two values in [0, 1]."""
        return combined_similarity(a, b)

    def similar_to(
        self, value: str, candidates: list[dict]
    ) -> list[tuple[dict, float]]:
        """Rank *candidates* (annotation rows) by similarity to *value*.

        Only candidates at or above the threshold are returned, best
        first.  Exact matches are included (score 1.0) — the caller
        decides whether identity is interesting.
        """
        scored = []
        for row in candidates:
            similarity = self.score(value, row["value"])
            if similarity >= self.threshold:
                scored.append((row, similarity))
        scored.sort(key=lambda pair: (-pair[1], pair[0]["id"]))
        return scored

    def recommendations(self, rows: list[dict]) -> list[MergeRecommendation]:
        """All merge recommendations within one vocabulary.

        Compares every pair of non-merged, non-rejected values; for each
        pair above the threshold, proposes keeping the released/older
        one.  O(n²) in vocabulary size, which matches the workload —
        vocabularies are short lists feeding drop-down menus.
        """
        live = [r for r in rows if r["status"] in ("pending", "released")]
        found: list[MergeRecommendation] = []
        for i, first in enumerate(live):
            for second in live[i + 1:]:
                similarity = self.score(first["value"], second["value"])
                if similarity < self.threshold:
                    continue
                keep, merge = sorted((first, second), key=_survivor_order)
                found.append(
                    MergeRecommendation(
                        keep_id=keep["id"],
                        merge_id=merge["id"],
                        keep_value=keep["value"],
                        merge_value=merge["value"],
                        score=similarity,
                    )
                )
        found.sort(key=lambda rec: (-rec.score, rec.keep_id, rec.merge_id))
        return found
