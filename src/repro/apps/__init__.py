"""Application integration (paper Figures 12–16).

"Integration of external functionality into B-Fabric is done via
application registration.  First, a connector is written for a certain
type of application, e.g., for running R scripts on an Rserve system.
Then, a small interface is defined to describe how the application gets
its input.  Finally, the scientist writes the application in any
language."

Pieces:

* :mod:`repro.apps.connectors` — the connector SPI and staging model;
* :mod:`repro.apps.rserve` — a simulated Rserve connector with a real
  two-group analysis "script" (scipy t-tests over synthesized
  expression matrices);
* :mod:`repro.apps.registry` — application registration with interface
  validation;
* :mod:`repro.apps.experiments` — experiment definitions and runs;
* :mod:`repro.apps.results` — result collection and zip export.
"""

from repro.apps.connectors import (
    Connector,
    LocalPythonConnector,
    RunRequest,
    RunOutcome,
)
from repro.apps.rserve import RserveConnector, two_group_analysis
from repro.apps.registry import ApplicationRegistry
from repro.apps.experiments import ExperimentService, EXPERIMENT_WORKFLOW
from repro.apps.results import ResultPackager

__all__ = [
    "Connector",
    "LocalPythonConnector",
    "RunRequest",
    "RunOutcome",
    "RserveConnector",
    "two_group_analysis",
    "ApplicationRegistry",
    "ExperimentService",
    "EXPERIMENT_WORKFLOW",
    "ResultPackager",
]
