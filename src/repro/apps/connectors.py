"""The connector SPI.

A connector knows how to run one *type* of application.  It receives a
fully staged :class:`RunRequest` — local paths of the input resources,
the experiment attributes, the run parameters — and returns a
:class:`RunOutcome` of result files.  Everything B-Fabric-specific
(creating the result workunit, storing files, workflow bookkeeping)
stays in the executor; connectors stay small, which is what makes
"on-the-fly coupling" cheap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConnectorError


@dataclass
class RunRequest:
    """Everything an application run needs, already staged locally."""

    application: str
    executable: str
    input_files: list[Path]
    parameters: dict[str, Any]
    attributes: dict[str, Any]
    workdir: Path


@dataclass
class RunOutcome:
    """What a run produced."""

    files: list[Path]
    report: str = ""
    metrics: dict[str, Any] = field(default_factory=dict)


class Connector(ABC):
    """Runs applications of one kind."""

    #: Connector kind, referenced by Application.connector.
    kind: str = "abstract"

    @property
    def endpoint(self) -> str:
        """Identity of the backend this connector talks to.

        Circuit breakers are keyed by endpoint, so connectors that talk
        to a remote server (Rserve) should include its address — one
        broken server must not open the breaker of another.
        """
        return self.kind

    @abstractmethod
    def run(self, request: RunRequest) -> RunOutcome:
        """Execute the application; raise :class:`ConnectorError` on failure."""


class LocalPythonConnector(Connector):
    """Runs applications that are plain Python callables.

    The callable is registered under the application's ``executable``
    name and receives the :class:`RunRequest`; whatever files it writes
    into ``request.workdir`` and lists in its outcome become the result
    workunit's resources.
    """

    kind = "python"

    def __init__(self) -> None:
        self._scripts: dict[str, Callable[[RunRequest], RunOutcome]] = {}

    def register_script(
        self, name: str, function: Callable[[RunRequest], RunOutcome]
    ) -> None:
        if name in self._scripts:
            raise ConnectorError(f"script {name!r} already registered")
        self._scripts[name] = function

    def script_names(self) -> list[str]:
        return sorted(self._scripts)

    def run(self, request: RunRequest) -> RunOutcome:
        script = self._scripts.get(request.executable)
        if script is None:
            raise ConnectorError(
                f"connector {self.kind!r} has no script {request.executable!r}"
            )
        try:
            outcome = script(request)
        except ConnectorError:
            raise
        except Exception as exc:
            raise ConnectorError(
                f"application {request.application!r} crashed: {exc}"
            ) from exc
        for path in outcome.files:
            if not Path(path).is_file():
                raise ConnectorError(
                    f"application {request.application!r} reported a result "
                    f"file that does not exist: {path}"
                )
        return outcome
