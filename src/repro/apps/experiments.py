"""Experiment definitions and runs (paper Figures 13–16).

Defining an experiment = picking data resources, samples, extracts and
arbitrary attributes that feed a registered application.  Running it:

1. a result workunit is created (``pending`` — Figure 15);
2. the single-step experiment workflow starts; its ``execute`` action
   stages the inputs, calls the connector, stores the produced files as
   the workunit's resources, and re-links the selected input resources
   into the workunit flagged ``is_input``;
3. on success the workunit becomes ``available`` (Figure 16 "Ready"),
   on failure ``failed`` and an ``experiment.failed`` event opens an
   admin task.

``defer=True`` leaves the workflow parked in its pending step so the
demo's pending screen is observable; :meth:`ExperimentService.execute_pending`
then fires it.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Sequence

from repro.apps.connectors import RunOutcome, RunRequest
from repro.apps.registry import ApplicationRegistry, check_parameters
from repro.audit.log import AuditLog
from repro.core.entities import Experiment, Workunit
from repro.core.services.samples import SampleService
from repro.core.services.workunits import WorkunitService
from repro.dataimport.store import ManagedStore
from repro.errors import (
    BFabricError,
    CrashPoint,
    EntityNotFound,
    StateError,
    TimeoutExceeded,
    ValidationError,
)
from repro.orm import Registry
from repro.security.acl import AccessControl, Permission
from repro.security.principals import Principal
from repro.tasks.queue import (
    Job,
    JobQueue,
    decode_principal,
    encode_principal,
)
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.text import normalize_whitespace
from repro.workflow.definitions import Action, Step, WorkflowDefinition
from repro.workflow.engine import WorkflowEngine

#: Name of the registered experiment-run workflow definition.
EXPERIMENT_WORKFLOW = "run_experiment"

#: Queue job type for background application runs.
EXECUTE_JOB = "experiment.execute"


def experiment_workflow_definition() -> WorkflowDefinition:
    """The demo's single-step "generate an R report" workflow."""
    return WorkflowDefinition(
        EXPERIMENT_WORKFLOW,
        steps=[
            Step(
                "pending",
                actions=(
                    Action("execute", target="ready", label="Generate report"),
                ),
                label="Pending",
                description="Application run queued",
            ),
            Step("ready", actions=(), label="Ready"),
        ],
        description="Run a registered application over an experiment",
    )


class ExperimentService:
    """Defines and runs experiments."""

    def __init__(
        self,
        registry: Registry,
        *,
        applications: ApplicationRegistry,
        workunits: WorkunitService,
        samples: SampleService,
        workflow: WorkflowEngine,
        store: ManagedStore,
        audit: AuditLog,
        acl: AccessControl,
        events: EventBus,
        clock: Clock | None = None,
        access=None,
        queue: JobQueue | None = None,
    ):
        self._registry = registry
        self._access = access
        self._queue = queue
        if queue is not None:
            queue.register_handler(
                EXECUTE_JOB,
                self._execute_job,
                on_lease_lost=self._on_execute_lease_lost,
            )
        self._applications = applications
        self._workunits = workunits
        self._samples = samples
        self._workflow = workflow
        self._store = store
        self._audit = audit
        self._acl = acl
        self._events = events
        self._clock = clock or SystemClock()
        self._experiments = registry.repository(Experiment)
        if EXPERIMENT_WORKFLOW not in workflow.definition_names():
            workflow.register_definition(experiment_workflow_definition())

    # -- definition (Figure 13) -----------------------------------------------------

    def define(
        self,
        principal: Principal,
        project_id: int,
        name: str,
        *,
        application_id: int,
        resource_ids: Sequence[int] = (),
        sample_ids: Sequence[int] = (),
        extract_ids: Sequence[int] = (),
        attributes: dict[str, Any] | None = None,
    ) -> Experiment:
        """Create an experiment definition, validating every selection."""
        self._acl.require(principal, Permission.WRITE, project_id)
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("experiment name required", {"name": "required"})
        application = self._applications.get(application_id)
        if not application.active:
            raise ValidationError(f"application {application.name!r} is inactive")

        needed = set(application.interface.get("inputs", []))
        if "resource" in needed and not resource_ids:
            raise ValidationError(
                f"application {application.name!r} needs data resources"
            )
        self._check_resources_in_project(principal, project_id, resource_ids)
        for sample_id in sample_ids:
            sample = self._samples.get_sample(principal, sample_id)
            if sample.project_id != project_id:
                raise ValidationError(
                    f"sample {sample_id} belongs to another project"
                )
        project_extracts = {
            e.id for e in self._samples.extracts_of_project(principal, project_id)
        }
        for extract_id in extract_ids:
            if extract_id not in project_extracts:
                raise ValidationError(
                    f"extract {extract_id} belongs to another project"
                )

        experiment = self._experiments.create(
            name=name,
            project_id=project_id,
            application_id=application_id,
            resource_ids=list(resource_ids),
            sample_ids=list(sample_ids),
            extract_ids=list(extract_ids),
            attributes=attributes or {},
            created_by=principal.user_id,
            created_at=self._clock.now(),
        )
        self._audit.record(principal, "create", "experiment", experiment.id, name)
        self._events.publish(
            "experiment.defined", experiment=experiment, principal=principal
        )
        return experiment

    def _check_resources_in_project(
        self, principal: Principal, project_id: int, resource_ids: Sequence[int]
    ) -> None:
        for resource_id in resource_ids:
            resource = self._find_resource(principal, resource_id)
            workunit = self._workunits.get(principal, resource.workunit_id)
            if workunit.project_id != project_id:
                raise ValidationError(
                    f"resource {resource_id} belongs to another project"
                )

    def _find_resource(self, principal: Principal, resource_id: int):
        from repro.core.entities import DataResource

        resource = self._registry.repository(DataResource).get_or_none(resource_id)
        if resource is None:
            raise EntityNotFound("DataResource", resource_id)
        return resource

    def get(self, principal: Principal, experiment_id: int) -> Experiment:
        experiment = self._experiments.get_or_none(experiment_id)
        if experiment is None:
            raise EntityNotFound("Experiment", experiment_id)
        self._acl.require(principal, Permission.READ, experiment.project_id)
        return experiment

    def of_project(self, principal: Principal, project_id: int) -> list[Experiment]:
        self._acl.require(principal, Permission.READ, project_id)
        return (
            self._experiments.query()
            .where("project_id", "=", project_id)
            .order_by("id")
            .all()
        )

    # -- running (Figure 14) ------------------------------------------------------------

    def run(
        self,
        principal: Principal,
        experiment_id: int,
        *,
        workunit_name: str,
        parameters: dict[str, Any] | None = None,
        defer: bool = False,
    ) -> Workunit:
        """Invoke the experiment's application.

        Returns the result workunit: ``available`` after a synchronous
        run, ``pending`` when *defer* is set (fire later with
        :meth:`execute_pending`), ``failed`` if the application failed.
        """
        experiment = self.get(principal, experiment_id)
        self._acl.require(principal, Permission.WRITE, experiment.project_id)
        application = self._applications.get(experiment.application_id)
        effective = check_parameters(application.interface, parameters or {})

        workunit = self._workunits.create(
            principal,
            experiment.project_id,
            workunit_name,
            description=f"run of {application.name!r} "
            f"for experiment {experiment.name!r}",
            application_id=application.id,
            parameters=effective,
        )
        self._workflow.start(
            principal,
            EXPERIMENT_WORKFLOW,
            entity_type="workunit",
            entity_id=workunit.id,
            context={"experiment_id": experiment.id, "parameters": effective},
        )
        self._audit.record(
            principal, "create", "experiment_run", workunit.id,
            f"run {application.name} for {experiment.name}",
        )
        if defer:
            return workunit
        if self._queue is not None and self._queue.workers_active():
            return self._execute_via_queue(principal, workunit.id)
        return self.execute_pending(principal, workunit.id)

    # -- the queue path -----------------------------------------------------------------

    def enqueue_execution(self, principal: Principal, workunit_id: int) -> Job:
        """Queue a pending run as a background job; returns the job row.

        Idempotent per workunit: one workunit executes once no matter
        how many times its execution is enqueued or redelivered.
        """
        if self._queue is None:
            raise ValidationError("no job queue attached to the experiments")
        return self._queue.enqueue(
            EXECUTE_JOB,
            {
                "principal": encode_principal(principal),
                "workunit_id": workunit_id,
            },
            idempotency_key=f"exp:{workunit_id}",
        )

    def _execute_via_queue(
        self, principal: Principal, workunit_id: int, *, timeout: float = 300.0
    ) -> Workunit:
        job = self.enqueue_execution(principal, workunit_id)
        finished = self._queue.wait(job.id, timeout=timeout)
        if finished.state in ("done", "dead"):
            # Domain failures surface as the workunit's ``failed`` status
            # (same contract as the inline path), so both terminal job
            # states just hand the workunit back.
            return self._workunits.get(principal, workunit_id)
        raise TimeoutExceeded(
            f"execution job {finished.id} still {finished.state} after "
            f"{timeout:g}s",
            seconds=timeout,
        )

    def _execute_job(self, job: Job) -> dict:
        """Queue handler: run (or recover) one pending execution."""
        principal = decode_principal(job.payload["principal"])
        workunit_id = job.payload["workunit_id"]
        workunit = self._workunits.get(principal, workunit_id)
        if workunit.status in ("available", "failed"):
            # Redelivery after a torn ack: the run already finished.
            return {
                "workunit_id": workunit_id,
                "status": workunit.status,
                "resumed": True,
            }
        if workunit.status == "processing":
            # A killed worker died mid-run; discard its partial outputs
            # and put the workunit back where a fresh run can start.
            self._reset_interrupted_run(principal, workunit_id)
        workunit = self.execute_pending(principal, workunit_id)
        return {"workunit_id": workunit_id, "status": workunit.status}

    def _reset_interrupted_run(
        self, principal: Principal, workunit_id: int
    ) -> None:
        """Compensate a run that died between ``processing`` and done.

        Partial outputs (collected resources, store bytes) go; the
        status returns to ``pending`` directly — the lifecycle map has
        no processing→pending edge because no *user* action does this,
        but crash recovery legitimately rewinds the machine.
        """
        from repro.core.entities import DataResource

        resource_repo = self._registry.repository(DataResource)
        for resource in resource_repo.find(workunit_id=workunit_id):
            resource_repo.delete(resource.id)
        directory = self._store.directory_for(workunit_id)
        if directory.exists():
            import shutil

            shutil.rmtree(directory, ignore_errors=True)
        self._registry.repository(Workunit).update(
            workunit_id, status="pending"
        )

    def _on_execute_lease_lost(self, job: Job, result: object) -> None:
        """Compensate the losing side of a double execution.

        Both deliveries ran over the *same* workunit, so the duplicate
        effects are doubled-up resource rows; keep the first of each
        (name, is_input) pair and drop the rest.  Store bytes are keyed
        by content inside one workunit directory, so deduplicating rows
        is sufficient.
        """
        from repro.core.entities import DataResource

        workunit_id = job.payload["workunit_id"]
        resource_repo = self._registry.repository(DataResource)
        seen: set[tuple[str, bool]] = set()
        for resource in sorted(
            resource_repo.find(workunit_id=workunit_id), key=lambda r: r.id
        ):
            key = (resource.name, bool(resource.is_input))
            if key in seen:
                resource_repo.delete(resource.id)
            else:
                seen.add(key)

    def pending_runs(self, principal: Principal) -> list[Workunit]:
        """Workunits whose experiment workflow awaits execution."""
        pending = []
        for instance in self._workflow.active_instances():
            if instance.definition != EXPERIMENT_WORKFLOW:
                continue
            workunit = self._workunits.get(principal, instance.entity_id)
            if workunit.status == "pending":
                pending.append(workunit)
        return pending

    def execute_pending(self, principal: Principal, workunit_id: int) -> Workunit:
        """Fire the ``execute`` action: stage, run, collect."""
        instance = self._active_instance(workunit_id)
        experiment = self.get(principal, instance.context["experiment_id"])
        application = self._applications.get(experiment.application_id)

        workunit = self._workunits.transition(principal, workunit_id, "processing")
        try:
            with tempfile.TemporaryDirectory() as tmp:
                workdir = Path(tmp)
                input_files = self._stage_inputs(principal, experiment, workdir)
                # Registry.run applies the retry/timeout/breaker policy;
                # CircuitOpenError and TimeoutExceeded are BFabricErrors,
                # so an outage lands in the same failed path below.
                outcome = self._applications.run(
                    application,
                    RunRequest(
                        application=application.name,
                        executable=application.executable,
                        input_files=input_files,
                        parameters=dict(workunit.parameters),
                        attributes=dict(experiment.attributes),
                        workdir=workdir,
                    )
                )
                self._collect(principal, workunit, experiment, outcome)
        except CrashPoint:
            # A simulated process kill (CrashPoint *is* a BFabricError):
            # a real SIGKILL cannot fail the workflow or transition the
            # workunit, so neither may we — redelivery heals the
            # ``processing`` state via _reset_interrupted_run.
            raise
        except BFabricError as error:
            self._workflow.fail(principal, instance.id, str(error))
            workunit = self._workunits.transition(principal, workunit_id, "failed")
            self._events.publish(
                "experiment.failed", workunit=workunit, error=error,
                principal=principal,
            )
            return workunit

        self._workflow.fire(principal, instance.id, "execute")
        workunit = self._workunits.transition(principal, workunit_id, "available")
        self._events.publish(
            "experiment.completed", workunit=workunit, experiment=experiment,
            principal=principal,
        )
        return workunit

    def _active_instance(self, workunit_id: int):
        for instance in self._workflow.for_entity("workunit", workunit_id):
            if (
                instance.definition == EXPERIMENT_WORKFLOW
                and instance.status == "active"
            ):
                return instance
        raise StateError(
            f"workunit {workunit_id} has no active experiment workflow"
        )

    def _stage_inputs(
        self, principal: Principal, experiment: Experiment, workdir: Path
    ) -> list[Path]:
        """Materialize the experiment's input resources as local files."""
        staging = workdir / "inputs"
        staging.mkdir()
        staged: list[Path] = []
        for resource_id in experiment.resource_ids:
            resource = self._find_resource(principal, resource_id)
            target = staging / resource.name
            if resource.uri.startswith("store://"):
                source = self._store.path_for(resource.uri)
                target.write_bytes(source.read_bytes())
            elif self._access is not None:
                # Linked resources: re-fetch through the provider so the
                # application sees real bytes ("users do not need to
                # care about where and how the data are kept").
                try:
                    fetched = self._access.materialize(resource.uri, staging)
                    if fetched != target:
                        target.write_bytes(fetched.read_bytes())
                except BFabricError:
                    # Provider gone: stage a descriptor so the run can
                    # still proceed deterministically.
                    target.write_bytes(resource.uri.encode("utf-8"))
            else:
                target.write_bytes(resource.uri.encode("utf-8"))
            staged.append(target)
        return staged

    def _collect(
        self,
        principal: Principal,
        workunit: Workunit,
        experiment: Experiment,
        outcome: RunOutcome,
    ) -> None:
        """Store result files and re-link inputs into the workunit."""
        for path in outcome.files:
            uri, checksum, size = self._store.ingest(workunit.id, Path(path))
            self._workunits.add_resource(
                principal,
                workunit.id,
                Path(path).name,
                uri,
                storage="internal",
                size_bytes=size,
                checksum=checksum,
            )
        if outcome.report:
            report_path = self._store.directory_for(workunit.id) / "_run_report.txt"
            report_path.parent.mkdir(parents=True, exist_ok=True)
            report_path.write_text(outcome.report, encoding="utf-8")
        for resource_id in experiment.resource_ids:
            original = self._find_resource(principal, resource_id)
            self._workunits.add_resource(
                principal,
                workunit.id,
                original.name,
                original.uri,
                storage="linked",
                size_bytes=original.size_bytes,
                checksum=original.checksum,
                extract_id=original.extract_id,
                is_input=True,
            )
