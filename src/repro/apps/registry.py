"""Application registration (paper Figure 12).

Registering an application binds a name to a connector kind, an
executable (script) name, and a small *interface definition* describing
how the application gets its input::

    {
        "inputs": ["resource"],            # what gets selected/staged
        "parameters": [
            {"name": "reference_group", "type": "text", "required": True},
            {"name": "alpha", "type": "float", "default": 0.05},
        ],
        "output": "CSV of per-gene statistics plus a text report",
    }

"Through application registration, the functionality of B-Fabric can be
extended at run-time without changing the core code base" — hence this
is all data, validated here, interpreted by the executor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.apps.connectors import Connector, RunOutcome, RunRequest
from repro.audit.log import AuditLog
from repro.core.entities import Application
from repro.errors import (
    ApplicationError,
    ConnectorError,
    EntityNotFound,
    TimeoutExceeded,
    ValidationError,
)
from repro.orm import Registry
from repro.resilience.faults import fault_point
from repro.resilience.policies import (
    BreakerRegistry,
    ResiliencePolicy,
    RetryPolicy,
    Timeout,
    resilient,
)
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.text import normalize_whitespace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

_INPUT_KINDS = ("resource", "sample", "extract")
_PARAMETER_TYPES = ("text", "int", "float", "bool", "choice")

#: Defaults for connector execution.  Infrastructure failures
#: (ConnectorError, a hung backend) are retried and count against the
#: connector's breaker; an ApplicationError means the *run* is bad —
#: retrying cannot help and the endpoint is not at fault.
DEFAULT_RUN_POLICY = ResiliencePolicy(
    retry=RetryPolicy(
        max_attempts=3,
        base_delay=0.05,
        seed=0,
        retry_on=(ConnectorError, TimeoutExceeded),
    ),
    timeout=Timeout(60.0),
    give_up_on=(ApplicationError,),
)


def validate_interface(interface: dict[str, Any]) -> dict[str, str]:
    """Return field errors for an interface definition (empty = valid)."""
    errors: dict[str, str] = {}
    inputs = interface.get("inputs", [])
    if not isinstance(inputs, list) or not inputs:
        errors["inputs"] = "at least one input kind required"
    else:
        unknown = [kind for kind in inputs if kind not in _INPUT_KINDS]
        if unknown:
            errors["inputs"] = f"unknown input kind(s): {unknown}"
    parameters = interface.get("parameters", [])
    if not isinstance(parameters, list):
        errors["parameters"] = "must be a list"
    else:
        seen: set[str] = set()
        for position, parameter in enumerate(parameters):
            if not isinstance(parameter, dict) or "name" not in parameter:
                errors[f"parameters[{position}]"] = "needs a name"
                continue
            name = parameter["name"]
            if name in seen:
                errors[f"parameters[{position}]"] = f"duplicate name {name!r}"
            seen.add(name)
            ptype = parameter.get("type", "text")
            if ptype not in _PARAMETER_TYPES:
                errors[f"parameters[{position}]"] = f"unknown type {ptype!r}"
            if ptype == "choice" and not parameter.get("choices"):
                errors[f"parameters[{position}]"] = "choice needs 'choices'"
    return errors


def check_parameters(
    interface: dict[str, Any], supplied: dict[str, Any]
) -> dict[str, Any]:
    """Validate run parameters against the interface; returns the
    effective parameters with defaults applied."""
    declared = {p["name"]: p for p in interface.get("parameters", [])}
    unknown = set(supplied) - set(declared)
    if unknown:
        raise ValidationError(
            f"unknown parameter(s): {sorted(unknown)}",
            {name: "unknown" for name in unknown},
        )
    effective: dict[str, Any] = {}
    errors: dict[str, str] = {}
    for name, spec in declared.items():
        if name in supplied:
            value = supplied[name]
        elif "default" in spec:
            value = spec["default"]
        elif spec.get("required"):
            errors[name] = "required"
            continue
        else:
            continue
        ptype = spec.get("type", "text")
        try:
            if ptype == "int":
                value = int(value)
            elif ptype == "float":
                value = float(value)
            elif ptype == "bool":
                value = bool(value)
            elif ptype == "choice":
                if value not in spec.get("choices", []):
                    errors[name] = f"not one of {spec.get('choices')}"
                    continue
            else:
                value = str(value)
        except (TypeError, ValueError):
            errors[name] = f"not a valid {ptype}"
            continue
        effective[name] = value
    if errors:
        raise ValidationError("invalid run parameters", errors)
    return effective


class ApplicationRegistry:
    """Registered applications plus the live connector instances."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        events: EventBus,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
        breakers: BreakerRegistry | None = None,
        run_policy: ResiliencePolicy | None = None,
    ):
        self._audit = audit
        self._events = events
        self._clock = clock or SystemClock()
        self._obs = obs
        self._breakers = breakers
        self._run_policy = run_policy or DEFAULT_RUN_POLICY
        self._applications = registry.repository(Application)
        self._connectors: dict[str, Connector] = {}

    # -- connectors --------------------------------------------------------------

    def register_connector(self, connector: Connector) -> None:
        """Install a connector for one application type."""
        if connector.kind in self._connectors:
            raise ConnectorError(
                f"connector kind {connector.kind!r} already registered"
            )
        self._connectors[connector.kind] = connector

    def connector(self, kind: str) -> Connector:
        try:
            return self._connectors[kind]
        except KeyError:
            raise ConnectorError(f"no connector of kind {kind!r}") from None

    def connector_kinds(self) -> list[str]:
        return sorted(self._connectors)

    def run(self, application: Application, request: RunRequest) -> RunOutcome:
        """Execute *application* through its connector, resiliently.

        The call runs under the registry's retry/timeout policy with a
        circuit breaker per connector endpoint: a flapping Rserve is
        retried with backoff, a down one fails fast with
        :class:`~repro.errors.CircuitOpenError` until its cooldown
        half-opens the breaker.  All of these are
        :class:`~repro.errors.BFabricError`\\ s, so callers' failure
        handling (workflow ``fail``, the ``experiment.failed`` event)
        is unchanged.
        """
        connector = self.connector(application.connector)
        policy = self._run_policy
        if self._breakers is not None:
            policy = policy.with_breaker(
                self._breakers.breaker(connector.endpoint)
            )

        def run_once(req: RunRequest) -> RunOutcome:
            fault_point("connector.run")
            return connector.run(req)

        return resilient(policy, site="connector.run", obs=self._obs)(run_once)(
            request
        )

    # -- applications ----------------------------------------------------------------

    def register_application(
        self,
        principal: Principal,
        *,
        name: str,
        connector: str,
        executable: str,
        interface: dict[str, Any],
        description: str = "",
    ) -> Application:
        """Register an application (Figure 12); available immediately."""
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("application name required", {"name": "required"})
        if connector not in self._connectors:
            raise ValidationError(
                f"unknown connector {connector!r} "
                f"(installed: {self.connector_kinds()})",
                {"connector": "unknown"},
            )
        interface_errors = validate_interface(interface)
        if interface_errors:
            raise ValidationError("invalid interface definition", interface_errors)
        application = self._applications.create(
            name=name,
            connector=connector,
            executable=executable,
            interface=interface,
            description=description,
            created_by=principal.user_id,
            created_at=self._clock.now(),
        )
        self._audit.record(
            principal, "create", "application", application.id, name
        )
        self._events.publish(
            "application.registered", application=application, principal=principal
        )
        return application

    def get(self, application_id: int) -> Application:
        application = self._applications.get_or_none(application_id)
        if application is None:
            raise EntityNotFound("Application", application_id)
        return application

    def by_name(self, name: str) -> Application:
        application = self._applications.find_one(name=name)
        if application is None:
            raise EntityNotFound("Application", name)
        return application

    def active_applications(self) -> list[Application]:
        return (
            self._applications.query()
            .where("active", "=", True)
            .order_by("name")
            .all()
        )

    def deactivate(self, principal: Principal, application_id: int) -> Application:
        application = self._applications.update(application_id, active=False)
        self._audit.record(
            principal, "update", "application", application_id, "deactivated"
        )
        return application

    def count(self) -> int:
        return self._applications.count()
