"""Result viewing and zip export (paper Figure 16).

"The results of the experiment is also presented to the user as a zip
file so that they can easily be transferred to another medium."
"""

from __future__ import annotations

import io
import zipfile
from pathlib import Path

from repro.core.services.workunits import WorkunitService
from repro.dataimport.store import ManagedStore
from repro.errors import StateError
from repro.security.principals import Principal


class ResultPackager:
    """Collects a result workunit's files and packs them into a zip."""

    def __init__(self, workunits: WorkunitService, store: ManagedStore):
        self._workunits = workunits
        self._store = store

    def result_files(
        self, principal: Principal, workunit_id: int
    ) -> list[tuple[str, Path]]:
        """``(name, local path)`` of the workunit's non-input resources.

        Only internally stored files have local bytes; linked results
        are skipped (their URI is in the resource row).
        """
        files = []
        for resource in self._workunits.resources_of(
            principal, workunit_id, inputs=False
        ):
            if resource.uri.startswith("store://"):
                path = self._store.path_for(resource.uri)
                if path.is_file():
                    files.append((resource.name, path))
        return files

    def read_report(self, workunit_id: int) -> str:
        """The run report text, if the connector produced one."""
        path = self._store.directory_for(workunit_id) / "_run_report.txt"
        if not path.is_file():
            return ""
        return path.read_text(encoding="utf-8")

    def as_zip_bytes(self, principal: Principal, workunit_id: int) -> bytes:
        """The workunit's results as an in-memory zip archive."""
        workunit = self._workunits.get(principal, workunit_id)
        if workunit.status != "available":
            raise StateError(
                f"workunit {workunit_id} is {workunit.status}; results are "
                "only packaged once available"
            )
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
            for name, path in self.result_files(principal, workunit_id):
                archive.writestr(name, path.read_bytes())
            report = self.read_report(workunit_id)
            if report:
                archive.writestr("report/run_report.txt", report)
        return buffer.getvalue()

    def write_zip(
        self, principal: Principal, workunit_id: int, destination: "str | Path"
    ) -> Path:
        """Write the results zip to *destination* and return the path."""
        payload = self.as_zip_bytes(principal, workunit_id)
        target = Path(destination)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(payload)
        return target
