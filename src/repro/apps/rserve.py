"""Simulated Rserve connector and the demo's two-group analysis.

The FGCZ deployment runs R scripts on an Rserve server; there is no R
here, so :class:`RserveConnector` *simulates* Rserve: registered "R
scripts" are Python callables with the same contract (staged inputs +
parameters in, result files + a textual report out), and the connector
adds Rserve-flavoured behaviour — a session log, per-script timeouts,
and R-style report formatting.  The integration surface (registration,
staging, collection) is identical to the real thing; only the
interpreter differs (see DESIGN.md substitutions).

The built-in :func:`two_group_analysis` reproduces the demo's example
application: it derives an expression matrix from each input file
deterministically, splits samples by the ``reference group`` parameter
and reports per-gene Welch t-tests — real statistics (scipy) over
simulated measurements.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable

import numpy as np
from scipy import stats

from repro.apps.connectors import Connector, RunOutcome, RunRequest
from repro.errors import ApplicationError, ConnectorError

_GENES = 200


class RserveConnector(Connector):
    """Runs "R scripts" on a simulated Rserve session."""

    kind = "rserve"

    def __init__(self, *, host: str = "rserve.local", port: int = 6311):
        self.host = host
        self.port = port
        self._scripts: dict[str, Callable[[RunRequest], RunOutcome]] = {}
        self._session_log: list[str] = []

    @property
    def endpoint(self) -> str:
        return f"rserve:{self.host}:{self.port}"

    def register_script(
        self, name: str, function: Callable[[RunRequest], RunOutcome]
    ) -> None:
        """Deploy a script on the Rserve side."""
        if name in self._scripts:
            raise ConnectorError(f"R script {name!r} already deployed")
        self._scripts[name] = function

    def script_names(self) -> list[str]:
        return sorted(self._scripts)

    @property
    def session_log(self) -> list[str]:
        return list(self._session_log)

    def run(self, request: RunRequest) -> RunOutcome:
        script = self._scripts.get(request.executable)
        if script is None:
            raise ConnectorError(
                f"Rserve at {self.host}:{self.port} has no script "
                f"{request.executable!r}"
            )
        self._session_log.append(
            f"RS.connect({self.host}, {self.port}); "
            f"source('{request.executable}.R')"
        )
        try:
            outcome = script(request)
        except ApplicationError:
            self._session_log.append("status: error")
            raise
        except Exception as exc:
            self._session_log.append("status: error")
            raise ConnectorError(
                f"R script {request.executable!r} failed: {exc}"
            ) from exc
        self._session_log.append(
            f"status: ok ({len(outcome.files)} result file(s))"
        )
        return outcome


def _expression_vector(path: Path, genes: int = _GENES) -> np.ndarray:
    """Deterministic simulated expression values for one input file.

    The file bytes seed a generator, so the same imported resource
    always yields the same measurements — experiments are reproducible,
    which is the whole point of capturing processing parameters.
    """
    digest = hashlib.sha256(path.read_bytes()).digest()
    seed = int.from_bytes(digest[:8], "big")
    rng = np.random.default_rng(seed)
    return rng.normal(loc=8.0, scale=2.0, size=genes)


def two_group_analysis(request: RunRequest) -> RunOutcome:
    """The demo application: differential analysis between two groups.

    Parameters:

    * ``reference_group`` (required) — substring marking reference
      files; everything else is the treatment group.
    * ``alpha`` (default 0.05) — significance threshold for the report.

    Produces ``two_group_result.csv`` (per-gene statistics) and
    ``report.txt`` (an R-session-style summary).
    """
    reference_marker = request.parameters.get("reference_group")
    if not reference_marker:
        raise ApplicationError(
            "two group analysis requires the 'reference_group' parameter"
        )
    alpha = float(request.parameters.get("alpha", 0.05))
    if not request.input_files:
        raise ApplicationError("two group analysis received no input files")

    reference, treatment = [], []
    for path in request.input_files:
        vector = _expression_vector(path)
        if reference_marker.lower() in path.name.lower():
            reference.append(vector)
        else:
            treatment.append(vector)
    if not reference or not treatment:
        raise ApplicationError(
            f"grouping by {reference_marker!r} left one group empty "
            f"({len(reference)} reference / {len(treatment)} treatment files)"
        )

    ref_matrix = np.vstack(reference)
    trt_matrix = np.vstack(treatment)
    t_stat, p_value = stats.ttest_ind(
        trt_matrix, ref_matrix, axis=0, equal_var=False
    )
    log_fc = trt_matrix.mean(axis=0) - ref_matrix.mean(axis=0)
    significant = int(np.sum(p_value < alpha))

    result_csv = request.workdir / "two_group_result.csv"
    with open(result_csv, "w", encoding="utf-8") as fh:
        fh.write("gene,log_fc,t_statistic,p_value\n")
        for gene in range(ref_matrix.shape[1]):
            fh.write(
                f"gene_{gene:04d},{log_fc[gene]:.4f},"
                f"{t_stat[gene]:.4f},{p_value[gene]:.6f}\n"
            )

    report_lines = [
        "Two Group Analysis Report",
        "=========================",
        f"application: {request.application}",
        f"attributes: {json.dumps(request.attributes, sort_keys=True)}",
        f"reference group: {reference_marker!r} "
        f"({len(reference)} file(s))",
        f"treatment group: {len(treatment)} file(s)",
        f"genes tested: {ref_matrix.shape[1]}",
        f"significant at alpha={alpha}: {significant}",
    ]
    report_txt = request.workdir / "report.txt"
    report_txt.write_text("\n".join(report_lines) + "\n", encoding="utf-8")

    return RunOutcome(
        files=[result_csv, report_txt],
        report="\n".join(report_lines),
        metrics={
            "genes": int(ref_matrix.shape[1]),
            "significant": significant,
            "reference_files": len(reference),
            "treatment_files": len(treatment),
        },
    )
