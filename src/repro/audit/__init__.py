"""Audit trail and system monitoring.

Paper §2 (Miscellaneous Functions): "all data manipulation operations
(create/update/delete) are logged in the system such that the user can
remember what he did in the past and the system can be monitored."

:class:`AuditLog` is the service every domain operation reports to;
:class:`SystemMonitor` aggregates low-level storage commit activity into
counters for the admin screens.
"""

from repro.audit.log import AuditLog, AuditEntry
from repro.audit.monitor import SystemMonitor

__all__ = ["AuditLog", "AuditEntry", "SystemMonitor"]
