"""The audit log: who did what to which object, when."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.security.principals import Principal
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType
from repro.util.clock import Clock, SystemClock

AUDIT_TABLE = "audit_entry"


def audit_schema() -> TableSchema:
    return TableSchema(
        name=AUDIT_TABLE,
        columns=[
            Column("id", ColumnType.INT, primary_key=True),
            Column("at", ColumnType.DATETIME, nullable=False),
            Column("user_id", ColumnType.INT, nullable=False),
            Column("user_login", ColumnType.TEXT, nullable=False),
            Column("action", ColumnType.TEXT, nullable=False,
                   check=lambda v: v in ("create", "update", "delete")),
            Column("entity_type", ColumnType.TEXT, nullable=False),
            Column("entity_id", ColumnType.INT, nullable=False),
            Column("summary", ColumnType.TEXT, default=""),
            Column("details", ColumnType.JSON, default=dict),
        ],
        indexes=["user_id", "entity_type", ("entity_type", "entity_id"), "at"],
        doc="Create/update/delete trail over all domain objects",
    )


@dataclass(frozen=True)
class AuditEntry:
    """One recorded manipulation."""

    id: int
    at: Any
    user_id: int
    user_login: str
    action: str
    entity_type: str
    entity_id: int
    summary: str
    details: dict

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "AuditEntry":
        return cls(**{k: row[k] for k in cls.__dataclass_fields__})


class AuditLog:
    """Records and queries manipulation history."""

    def __init__(self, database: Database, *, clock: Clock | None = None):
        self._db = database
        self._clock = clock or SystemClock()
        if not database.has_table(AUDIT_TABLE):
            database.create_table(audit_schema())

    # -- recording ----------------------------------------------------------------

    def record(
        self,
        principal: Principal,
        action: str,
        entity_type: str,
        entity_id: int,
        summary: str = "",
        details: dict | None = None,
        *,
        txn=None,
    ) -> AuditEntry:
        """Append one entry; joins the caller's transaction when given."""
        values = {
            "at": self._clock.now(),
            "user_id": principal.user_id,
            "user_login": principal.login,
            "action": action,
            "entity_type": entity_type,
            "entity_id": entity_id,
            "summary": summary,
            "details": details or {},
        }
        target = txn if txn is not None else self._db
        row = target.insert(AUDIT_TABLE, values)
        return AuditEntry.from_row(row)

    # -- queries --------------------------------------------------------------------

    def for_user(self, user_id: int, *, limit: int = 50) -> list[AuditEntry]:
        """Most recent activity of one user ("what did I do?")."""
        rows = (
            self._db.query(AUDIT_TABLE)
            .where("user_id", "=", user_id)
            .order_by("at", descending=True)
            .order_by("id", descending=True)
            .limit(limit)
            .all()
        )
        return [AuditEntry.from_row(r) for r in rows]

    def for_entity(
        self, entity_type: str, entity_id: int, *, limit: int = 50
    ) -> list[AuditEntry]:
        """Full manipulation history of one object."""
        rows = (
            self._db.query(AUDIT_TABLE)
            .where("entity_type", "=", entity_type)
            .where("entity_id", "=", entity_id)
            .order_by("at")
            .order_by("id")
            .limit(limit)
            .all()
        )
        return [AuditEntry.from_row(r) for r in rows]

    def recent(self, *, limit: int = 100) -> list[AuditEntry]:
        rows = (
            self._db.query(AUDIT_TABLE)
            .order_by("id", descending=True)
            .limit(limit)
            .all()
        )
        return [AuditEntry.from_row(r) for r in rows]

    def count(self) -> int:
        return self._db.count(AUDIT_TABLE)

    def counts_by_action(self) -> dict[str, int]:
        counts: dict[str, int] = {"create": 0, "update": 0, "delete": 0}
        for row in self._db.rows(AUDIT_TABLE):
            counts[row["action"]] = counts.get(row["action"], 0) + 1
        return counts
