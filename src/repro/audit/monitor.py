"""Low-level system monitoring.

Subscribes to storage commits and keeps rolling counters per table and
operation — the raw material for the admin "monitor the system" screens.
Purely in-memory; restarting resets the window.
"""

from __future__ import annotations

from collections import Counter

from repro.storage.database import Database
from repro.storage.table import UndoEntry


class SystemMonitor:
    """Counts committed storage operations per table."""

    def __init__(self, database: Database):
        self._db = database
        self._ops: Counter[tuple[str, str]] = Counter()
        self._commits = 0
        database.on_commit(self._observe)

    def _observe(self, operations: list[UndoEntry]) -> None:
        self._commits += 1
        for op in operations:
            self._ops[(op.table, op.op)] += 1

    # -- reporting -----------------------------------------------------------------

    @property
    def commit_count(self) -> int:
        return self._commits

    def operation_counts(self) -> dict[str, dict[str, int]]:
        """``{table: {op: count}}`` for all observed activity."""
        report: dict[str, dict[str, int]] = {}
        for (table, op), count in sorted(self._ops.items()):
            report.setdefault(table, {})[op] = count
        return report

    def busiest_tables(self, n: int = 5) -> list[tuple[str, int]]:
        totals: Counter[str] = Counter()
        for (table, _), count in self._ops.items():
            totals[table] += count
        return totals.most_common(n)

    def snapshot(self) -> dict:
        """One dict for the admin dashboard."""
        return {
            "commits": self._commits,
            "operations": self.operation_counts(),
            "storage": self._db.statistics(),
        }
