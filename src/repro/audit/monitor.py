"""Low-level system monitoring.

The admin "monitor the system" screens read here.  Since the
observability layer landed, the monitor no longer keeps its own
counters: the database records per-table operation counters and commit
latency histograms into its metrics registry, and :class:`SystemMonitor`
is a read-side view over that registry (plus the storage statistics),
so the admin dashboard, the CLI, and the ``/admin/metrics`` exposition
all report the same numbers.
"""

from __future__ import annotations

from collections import Counter

from repro.storage.database import Database


class SystemMonitor:
    """Read-side view over the storage metrics registry."""

    def __init__(self, database: Database):
        self._db = database
        self._obs = database.obs

    # -- reporting -----------------------------------------------------------------

    @property
    def commit_count(self) -> int:
        family = self._obs.metrics.get("storage_commits_total")
        if family is None:
            return 0
        # Sharded deployments label the family with {shard=...}; the
        # monitor reports the whole deployment, so sum every child
        # (an unlabelled family has exactly one).
        return int(sum(child.value for _labels, child in family.samples()))

    def operation_counts(self) -> dict[str, dict[str, int]]:
        """``{table: {op: count}}`` for all observed activity."""
        report: dict[str, dict[str, int]] = {}
        family = self._obs.metrics.get("storage_ops_total")
        if family is None:
            return report
        samples = sorted(
            family.samples(), key=lambda pair: (pair[0]["table"], pair[0]["op"])
        )
        for labels, child in samples:
            report.setdefault(labels["table"], {})[labels["op"]] = int(child.value)
        return report

    def busiest_tables(self, n: int = 5) -> list[tuple[str, int]]:
        totals: Counter[str] = Counter()
        for table, ops in self.operation_counts().items():
            totals[table] += sum(ops.values())
        return totals.most_common(n)

    def latency_summary(self) -> dict[str, dict]:
        """Percentile summaries of the storage latency histograms."""
        report: dict[str, dict] = {}
        for name in (
            "storage_commit_seconds",
            "storage_wal_append_seconds",
            "storage_wal_fsync_seconds",
            "storage_checkpoint_seconds",
            "storage_recover_seconds",
        ):
            family = self._obs.metrics.get(name)
            if family is None:
                continue
            if not family.labelnames:
                summary = family.summary()
                if summary["count"]:
                    report[name] = summary
                continue
            # Sharded deployments: one summary per shard, keyed in
            # Prometheus exposition style.
            for labels, child in family.samples():
                summary = child.summary()
                if summary["count"]:
                    rendered = ",".join(
                        f'{k}="{v}"' for k, v in sorted(labels.items())
                    )
                    report[f"{name}{{{rendered}}}"] = summary
        return report

    def snapshot(self) -> dict:
        """One dict for the admin dashboard."""
        report = {
            "commits": self.commit_count,
            "operations": self.operation_counts(),
            "storage": self._db.statistics(),
            "latency": self.latency_summary(),
            "observability": self._obs.statistics(),
        }
        shard_status = getattr(self._db, "shard_status", None)
        if shard_status is not None:
            report["shards"] = shard_status()
        return report
