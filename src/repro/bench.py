"""Benchmark harness for the storage hot paths.

Measures the paths the performance work targets:

* **commit throughput** per WAL durability mode (``always``, ``group``,
  ``buffered``) under concurrent committers, with the fsync count so the
  group-commit batching is visible (fsyncs ≪ commits);
* **query latency** — primary-key hit, indexed equality, forced full
  scan, and cached repeat of the same queries;
* **query-result cache** hit rate over that workload;
* **full-text search** QPS on a warm corpus, where the candidate cache
  serves repeated query shapes;
* **concurrency** (PR4) — reader-only, writer-only, and 90/10 mixed
  workloads at 1/4/16 threads, with readers pinned to MVCC snapshots.
  The mixed workload is where snapshot isolation pays: writers spend
  most of their commit inside ``fsync`` (which releases the GIL), so
  lock-free readers keep scanning instead of queueing on the writer
  lock, and aggregate reader throughput *scales* with threads;
* **replication** (PR5) — WAL-shipping end-to-end apply throughput,
  aggregate snapshot-read QPS fanned out across 1/2/4 replicas, and
  the p95 replica lag under concurrent writes;
* **sharded commits** (PR7) — always-mode throughput through the
  :class:`~repro.storage.sharding.ShardedDatabase` coordinator at
  1/2/4 shards with a 20% cross-shard (two-phase) transaction mix.
  Single-shard transactions fsync only their owning shard's WAL, so
  throughput scales with the shard count;
* **queue ingest** (PR8) — file-import jobs drained through the durable
  job queue by a :class:`~repro.tasks.workers.WorkerPool` at 1/4/8
  workers: end-to-end jobs/s and the p95 enqueue-to-claim delay from
  the queue's claim-latency ring;
* **planner shapes** (PR9) — p50 latency of the query shapes the
  cost-based planner targets (selective range, multi-predicate
  composite prefix, covering projection, LIMIT early exit riding an
  ordered index), each against the forced-scan baseline, with the
  planner's chosen strategy from ``explain()`` recorded alongside.

The report is JSON in the stable ``repro-bench/v1`` schema; CI runs a
scaled-down smoke (``--scale 0.05``) and checks the shape with
:func:`validate_report`.  The full run writes ``BENCH_PR9.json``::

    python -m repro.bench --out BENCH_PR9.json
    python -m repro.cli --data /tmp/d bench --scale 0.1 --out report.json
"""

from __future__ import annotations

import argparse
import json
import socket
import statistics
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Sequence

from repro.search.engine import SearchEngine
from repro.security.principals import SYSTEM
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType

REPORT_SCHEMA = "repro-bench/v1"

#: Commit workload at scale 1.0.  48 threads is where group commit
#: saturates on a typical 150 µs-fsync filesystem (batches fill to the
#: thread count, so fsyncs drop 48×) while the GIL still schedules every
#: committer fairly.
COMMIT_TXNS = 3200
COMMIT_THREADS = 48
QUERY_ROWS = 2000
SEARCH_DOCS = 400
SEARCH_QUERIES = 400

#: Concurrency matrix: every workload runs at each of these thread
#: counts.  16 is the reader-scaling acceptance point for PR 4.
CONCURRENCY_THREADS = (1, 4, 16)
#: Measured window per concurrency cell at scale 1.0, seconds.
CONCURRENCY_WINDOW = 0.6
CONCURRENCY_SEED_ROWS = 1000

#: Queue-ingest matrix: import jobs drained at each worker count.
QUEUE_WORKER_COUNTS = (1, 4, 8)
#: Import jobs per queue-ingest cell at scale 1.0.
QUEUE_INGEST_JOBS = 24
#: Files per import job (each fetched, checksummed, and ingested).
QUEUE_INGEST_FILES = 2

#: Portal serving matrix: concurrent HTTP client threads per cell.
PORTAL_CLIENT_COUNTS = (1, 4, 16)
#: Measured window per portal cell at scale 1.0, seconds.
PORTAL_WINDOW = 0.8


def _commit_schema() -> TableSchema:
    return TableSchema(
        name="bench_commit",
        columns=[
            Column("id", ColumnType.INT, primary_key=True),
            Column("n", ColumnType.INT, nullable=False),
        ],
    )


def _fsync_count(db) -> int:
    """Total WAL fsyncs — sums per-shard children on labelled families."""
    family = db.obs.metrics.get("storage_wal_fsync_seconds")
    if family is None:
        return 0
    return int(sum(child.count for _labels, child in family.samples()))


def bench_commit_mode(
    mode: str, *, txns: int, threads: int, base_dir: "str | Path | None" = None
) -> dict[str, Any]:
    """Throughput of *txns* single-insert commits from *threads* writers."""
    per_thread = max(1, txns // threads)
    total = per_thread * threads
    with tempfile.TemporaryDirectory(
        prefix=f"bench-{mode.split(':')[0]}-", dir=base_dir
    ) as tmp:
        db = Database(tmp, durability=mode)
        db.create_table(_commit_schema())
        barrier = threading.Barrier(threads + 1)

        def worker(worker_id: int) -> None:
            barrier.wait()
            base = worker_id * per_thread
            for i in range(per_thread):
                db.insert("bench_commit", {"id": base + i, "n": i})

        pool = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(threads)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - started
        fsyncs = _fsync_count(db)
        committed = db.count("bench_commit")
        db.close()
    return {
        "mode": mode,
        "transactions": total,
        "committed": committed,
        "threads": threads,
        "seconds": round(elapsed, 6),
        "tx_per_sec": round(total / elapsed, 1),
        "fsyncs": fsyncs,
    }


def bench_commit_throughput(
    *,
    txns: int,
    threads: int,
    repeats: int = 3,
    base_dir: "str | Path | None" = None,
) -> dict[str, Any]:
    """Per-mode throughput, best of *repeats* runs.

    Scheduling noise on a shared box is one-sided — interference only
    slows a run down — so each mode reports its best run, with every
    individual measurement kept under ``runs``.
    """
    modes = {}
    for mode in ("buffered", "always", "group"):
        runs = [
            bench_commit_mode(mode, txns=txns, threads=threads, base_dir=base_dir)
            for _ in range(repeats)
        ]
        best = max(runs, key=lambda r: r["tx_per_sec"])
        best["runs"] = [r["tx_per_sec"] for r in runs]
        modes[mode] = best
    speedup = modes["group"]["tx_per_sec"] / modes["always"]["tx_per_sec"]
    return {"modes": modes, "group_speedup_vs_always": round(speedup, 2)}


#: Every Nth transaction in the sharded workload is a two-row
#: cross-shard transaction (~9% of commits pay the 2PC protocol, inside
#: the acceptance mix "cross-shard ≤ 20%").  Cross-shard transactions
#: cost far more than their own fsyncs: one holds its first shard's
#: writer lock while it queues behind that many single-writers for the
#: second shard's lock (a lock convoy), so each point of cross-shard
#: mix erases several points of aggregate throughput.
SHARDED_CROSS_EVERY = 10
#: Shard counts measured by the scaling sweep.
SHARDED_COUNTS = (1, 2, 4)


def _sharded_plan(
    sdb, worker_id: int, per_thread: int
) -> list[tuple[int, ...]]:
    """Pre-compute each worker's transactions (outside the timed window).

    Workers draw primary keys from disjoint ranges; keys are bucketed by
    owning shard so singles rotate across shards and cross-shard pairs
    really do span two shards (at one shard the pair is just a two-row
    transaction, which keeps the row mix identical across cells).
    """
    import itertools

    nshards = sdb.shard_count
    ids = itertools.count(1 + worker_id * 10_000_000)
    buckets: list[list[int]] = [[] for _ in range(nshards)]

    def take(shard: int) -> int:
        while not buckets[shard]:
            i = next(ids)
            buckets[sdb.shard_index(i) if nshards > 1 else 0].append(i)
        return buckets[shard].pop()

    plan: list[tuple[int, ...]] = []
    for k in range(per_thread):
        if k % SHARDED_CROSS_EVERY == SHARDED_CROSS_EVERY - 1:
            # Acquire participants in ascending shard order — the
            # coordinator's documented lock-ordering discipline; writers
            # that ignore it deadlock against each other and pay the
            # lock timeout instead.
            first, second = sorted((k % nshards, (k + 1) % nshards))
            plan.append((take(first), take(second)))
        else:
            plan.append((take(k % nshards),))
    return plan


def bench_sharded_commit_cell(
    shards: int,
    *,
    txns: int,
    threads: int,
    base_dir: "str | Path | None" = None,
) -> dict[str, Any]:
    """Always-mode commit throughput through the shard coordinator.

    Same barrier/disjoint-key pattern as :func:`bench_commit_mode`, but
    the writers go through :class:`ShardedDatabase` so single-shard
    transactions route directly (one WAL fsync, on the owning shard's
    writer lock) while every ``SHARDED_CROSS_EVERY``-th transaction is a
    two-row cross-shard commit paying the full two-phase protocol.
    """
    from repro.storage.sharding import ShardedDatabase

    per_thread = max(SHARDED_CROSS_EVERY, txns // threads)
    total = per_thread * threads
    cross = threads * (per_thread // SHARDED_CROSS_EVERY)
    rows = total + cross  # cross-shard transactions insert two rows
    with tempfile.TemporaryDirectory(
        prefix=f"bench-shard{shards}-", dir=base_dir
    ) as tmp:
        sdb = ShardedDatabase(tmp, shards=shards, durability="always")
        sdb.create_table(_commit_schema())
        plans = [_sharded_plan(sdb, w, per_thread) for w in range(threads)]
        barrier = threading.Barrier(threads + 1)

        def worker(plan: list[tuple[int, ...]]) -> None:
            barrier.wait()
            for pks in plan:
                if len(pks) == 1:
                    sdb.insert("bench_commit", {"id": pks[0], "n": pks[0] % 97})
                else:
                    with sdb.transaction() as txn:
                        for pk in pks:
                            txn.insert(
                                "bench_commit", {"id": pk, "n": pk % 97}
                            )

        pool = [
            threading.Thread(target=worker, args=(plan,), daemon=True)
            for plan in plans
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - started
        fsyncs = _fsync_count(sdb)
        committed = sdb.count("bench_commit")
        two_pc = 0
        family = sdb.obs.metrics.get("storage_2pc_total")
        if family is not None:
            two_pc = int(
                sum(
                    child.value
                    for labels, child in family.samples()
                    if labels.get("outcome") == "commit"
                )
            )
        sdb.close()
    return {
        "shards": shards,
        "transactions": total,
        "cross_shard_txns": cross,
        "rows": rows,
        "committed": committed,
        "threads": threads,
        "seconds": round(elapsed, 6),
        "tx_per_sec": round(total / elapsed, 1),
        "fsyncs": fsyncs,
        "two_phase_commits": two_pc,
    }


def bench_sharded_commit(
    *,
    txns: int,
    threads: int,
    shard_counts: Sequence[int] = SHARDED_COUNTS,
    repeats: int = 3,
    base_dir: "str | Path | None" = None,
) -> dict[str, Any]:
    """Shard-count scaling sweep, best of *repeats* per cell.

    Every cell runs the identical always-mode workload — only the shard
    count changes — so ``scaling_4x_vs_1`` isolates what partitioning
    the write path buys: independent WAL fsyncs (which release the GIL)
    on independent writer locks.
    """
    cells: dict[str, dict[str, Any]] = {}
    for count in shard_counts:
        runs = [
            bench_sharded_commit_cell(
                count, txns=txns, threads=threads, base_dir=base_dir
            )
            for _ in range(repeats)
        ]
        best = max(runs, key=lambda r: r["tx_per_sec"])
        best["runs"] = [r["tx_per_sec"] for r in runs]
        cells[str(count)] = best
    low, high = str(shard_counts[0]), str(shard_counts[-1])
    scaling = (
        round(cells[high]["tx_per_sec"] / cells[low]["tx_per_sec"], 2)
        if cells[low]["tx_per_sec"]
        else None
    )
    first = cells[low]
    return {
        "mode": "always",
        "shard_counts": list(shard_counts),
        "threads": first["threads"],
        "transactions": first["transactions"],
        "cross_shard_fraction": round(
            first["cross_shard_txns"] / first["transactions"], 4
        ),
        "shards": cells,
        "scaling_4x_vs_1": scaling,
        # Honest context for the scaling number on a single-disk,
        # single-interpreter host; DESIGN §14 has the full analysis.
        "notes": (
            "Shard WAL fsyncs overlap but share one block device's flush "
            "queue, per-commit Python shares one interpreter lock, and "
            "each cross-shard transaction convoys two shard writer locks; "
            "all three cap always-mode scaling well below shard count on "
            "one host. Partitioning pays off proportionally to "
            "independent fsync streams (separate devices/hosts)."
        ),
    }


def _query_db(rows: int) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            name="bench_q",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("project", ColumnType.INT, nullable=False),
                Column("score", ColumnType.INT, nullable=False),
                Column("payload", ColumnType.TEXT, nullable=False),
            ],
            indexes=["project"],
            ordered=["score", ("project", "score")],
        )
    )
    with db.transaction() as txn:
        for i in range(rows):
            txn.insert(
                "bench_q",
                {
                    "id": i,
                    "project": i % 50,
                    "score": i,
                    "payload": f"payload row {i}",
                },
            )
    return db


def _planner_shape(
    db: Database, build, *, values: Sequence[Any]
) -> dict[str, Any]:
    """p50 latency of one query shape vs its forced-scan twin.

    *build* maps a parameter value to a :class:`Query`; distinct values
    keep every execution a result-cache miss, so the medians measure
    the access path itself.  The explain() of the first value records
    which plan the cost model actually chose.
    """
    plan = build(values[0]).explain(analyze=True)

    def p50(scan: bool) -> float:
        samples = []
        for value in values:
            query = build(value)
            if scan:
                query = query.without_indexes()
            started = time.perf_counter()
            query.all()
            samples.append(time.perf_counter() - started)
        return statistics.median(samples)

    planned = p50(scan=False)
    scanned = p50(scan=True)
    return {
        "p50_seconds": round(planned, 9),
        "scan_p50_seconds": round(scanned, 9),
        "speedup_vs_scan": round(scanned / planned, 2) if planned else None,
        "strategy": plan["strategy"],
        "estimated_rows": plan["estimated_rows"],
        "actual_rows": plan["actual_rows"],
    }


def bench_planner_shapes(db: Database, rows: int) -> dict[str, Any]:
    """The four planner-targeted shapes, each vs the scan baseline."""
    width = max(1, rows // 100)  # ~1% selective range
    los = [(i * 37) % max(1, rows - width) for i in range(50)]
    projects = list(range(50))
    floor = rows - max(1, rows // 20)  # top ~5% of scores
    return {
        "range": _planner_shape(
            db,
            lambda lo: db.query("bench_q")
            .where("score", ">=", lo)
            .where("score", "<", lo + width),
            values=los,
        ),
        "multi_predicate": _planner_shape(
            db,
            lambda p: db.query("bench_q")
            .where("project", "=", p)
            .where("score", ">=", floor),
            values=projects,
        ),
        "covering": _planner_shape(
            db,
            lambda p: db.query("bench_q")
            .select("project", "score")
            .where("project", "=", p)
            .where("score", ">=", floor),
            values=projects,
        ),
        "limit_early_exit": _planner_shape(
            db,
            lambda lo: db.query("bench_q")
            .where("score", ">=", lo)
            .order_by("score")
            .limit(10),
            values=los,
        ),
    }


def bench_query_latency(rows: int) -> tuple[dict[str, Any], dict[str, Any]]:
    """Per-query latency by access path, plus the cache statistics."""
    db = _query_db(rows)
    projects = list(range(50))

    def timed(run) -> float:
        started = time.perf_counter()
        for project in projects:
            run(project)
        return (time.perf_counter() - started) / len(projects)

    pk_seconds = timed(
        lambda p: db.query("bench_q").where("id", "=", p).all()
    )
    # First pass over distinct values: every lookup is a cache miss, so
    # this is true index latency; the repeat pass measures cache hits.
    indexed_seconds = timed(
        lambda p: db.query("bench_q").where("project", "=", p).all()
    )
    cached_seconds = timed(
        lambda p: db.query("bench_q").where("project", "=", p).all()
    )
    scan_seconds = timed(
        lambda p: db.query("bench_q")
        .where("project", "=", p)
        .without_indexes()
        .all()
    )
    stats = db.query_cache.statistics()
    lookups = stats.get("lookups", {})
    hits = lookups.get("hit", 0)
    misses = lookups.get("miss", 0)
    latency = {
        "rows": rows,
        "pk_seconds": round(pk_seconds, 9),
        "indexed_seconds": round(indexed_seconds, 9),
        "cached_seconds": round(cached_seconds, 9),
        "scan_seconds": round(scan_seconds, 9),
        "scan_vs_indexed": round(scan_seconds / indexed_seconds, 2)
        if indexed_seconds
        else None,
        "planner": bench_planner_shapes(db, rows),
    }
    cache = {
        "hits": hits,
        "misses": misses,
        "bypasses": lookups.get("bypass", 0),
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "entries": stats.get("entries", 0),
        "evictions": stats.get("evictions", 0),
    }
    db.close()
    return latency, cache


def _concurrency_db(tmp: str) -> Database:
    db = Database(tmp, durability="always")
    db.create_table(
        TableSchema(
            name="bench_c",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("n", ColumnType.INT, nullable=False),
            ],
        )
    )
    with db.transaction() as txn:
        for i in range(CONCURRENCY_SEED_ROWS):
            txn.insert("bench_c", {"n": i})
    return db


def _mix_for(workload: str, threads: int) -> list[int]:
    """Per-thread ``write_every`` assignments for a workload cell.

    ``0`` marks a pure snapshot reader, ``1`` a pure writer, ``10`` a
    client interleaving nine reads with each write.  The 90/10 mix
    models the portal's traffic shape — ~10% of clients are writers
    (imports, workflow updates) while the rest browse — so at N > 1
    threads roughly N/10 of them (at least one) write continuously and
    the others only read.  The single-thread baseline interleaves 90/10
    in one client, which is the best a reader can do when every write
    stalls it: the scaling figure measures how far concurrent readers
    escape that serial floor.
    """
    if workload == "read_only":
        return [0] * threads
    if workload == "write_only":
        return [1] * threads
    if threads == 1:
        return [10]
    writers = max(1, round(threads * 0.1))
    return [1] * writers + [0] * (threads - writers)


def _concurrency_cell(
    threads: int,
    workload: str,
    duration: float,
    base_dir: "str | Path | None",
) -> dict[str, Any]:
    """One workload cell: *threads* clients for *duration* seconds.

    Reads are snapshot point-gets (each reader re-pins its snapshot
    every 256 reads so pruning stays active); writes are durable
    single-insert commits.  Returns aggregate reads/writes and
    per-second rates.
    """
    mix = _mix_for(workload, threads)
    with tempfile.TemporaryDirectory(prefix="bench-conc-", dir=base_dir) as tmp:
        db = _concurrency_db(tmp)
        stop = threading.Event()
        barrier = threading.Barrier(threads + 1)
        tallies: list[tuple[int, int]] = [(0, 0)] * threads

        def worker(tid: int) -> None:
            write_every = mix[tid]
            reads = writes = 0
            snap = db.snapshot()
            barrier.wait()
            i = 0
            try:
                while not stop.is_set():
                    i += 1
                    if write_every and i % write_every == 0:
                        db.insert("bench_c", {"n": i})
                        writes += 1
                    else:
                        pk = (tid * 7919 + i) % CONCURRENCY_SEED_ROWS + 1
                        snap.get_or_none("bench_c", pk)
                        reads += 1
                        if reads % 1024 == 0:
                            # Real request handlers have I/O gaps between
                            # reads; a periodic yield models that and
                            # keeps spinning readers from timeslicing
                            # concurrent writers out of the GIL.
                            time.sleep(0)
                    if i % 256 == 0:
                        snap.close()
                        snap = db.snapshot()
            finally:
                snap.close()
            tallies[tid] = (reads, writes)

        pool = [
            threading.Thread(target=worker, args=(t,), daemon=True)
            for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        time.sleep(duration)
        stop.set()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - started
        db.close()
    reads = sum(r for r, _ in tallies)
    writes = sum(w for _, w in tallies)
    return {
        "threads": threads,
        "reader_threads": sum(1 for w in mix if w != 1),
        "writer_threads": sum(1 for w in mix if w >= 1),
        "seconds": round(elapsed, 6),
        "reads": reads,
        "writes": writes,
        "reads_per_sec": round(reads / elapsed, 1),
        "writes_per_sec": round(writes / elapsed, 1),
    }


def bench_concurrency(
    *,
    duration: float = CONCURRENCY_WINDOW,
    thread_counts: Sequence[int] = CONCURRENCY_THREADS,
    base_dir: "str | Path | None" = None,
) -> dict[str, Any]:
    """Reader/writer scaling across the thread matrix.

    The key figure is ``mixed_read_scaling``: aggregate snapshot-reader
    throughput of the 90/10 workload at the highest thread count over
    the single-thread figure.  At one thread every write stalls reading
    for a full durable commit; with MVCC, concurrent readers never
    touch the writer lock, so reader throughput scales far past 2×
    while the write stream keeps committing.  Read-only scaling stays
    near 1× on CPython (pure CPU under the GIL) — the win is reader
    latency being decoupled from writers, not parallel compute.
    """
    cells: dict[str, dict[str, Any]] = {}
    for name in ("read_only", "write_only", "mixed_90_10"):
        cells[name] = {
            str(threads): _concurrency_cell(threads, name, duration, base_dir)
            for threads in thread_counts
        }
    low, high = str(thread_counts[0]), str(thread_counts[-1])

    def scaling(workload: str) -> float | None:
        base = cells[workload][low]["reads_per_sec"]
        top = cells[workload][high]["reads_per_sec"]
        return round(top / base, 2) if base else None

    return {
        "duration_seconds": duration,
        "seed_rows": CONCURRENCY_SEED_ROWS,
        "thread_counts": list(thread_counts),
        "workloads": cells,
        "mixed_read_scaling": scaling("mixed_90_10"),
        "read_only_scaling": scaling("read_only"),
    }


#: Replication workload at scale 1.0.
REPLICATION_COMMITS = 800
REPLICATION_FANOUT = (1, 2, 4)
REPLICATION_READERS_PER_REPLICA = 4
#: Per-read client think time, seconds.  Snapshot point-gets are pure
#: CPU under the GIL, so raw in-process reads cannot scale with replica
#: count; real portal clients pay network/render latency between
#: requests.  The think time models that, which makes the fan-out
#: figure honest: capacity scales because each replica serves its own
#: pool of latency-bound clients, not because Python grew parallelism.
REPLICATION_THINK_SECONDS = 0.002
REPLICATION_WINDOW = 0.8
REPLICATION_SEED_ROWS = 400


def bench_replication(
    *,
    commits: int,
    window: float = REPLICATION_WINDOW,
    fanout: Sequence[int] = REPLICATION_FANOUT,
    readers_per_replica: int = REPLICATION_READERS_PER_REPLICA,
    base_dir: "str | Path | None" = None,
) -> dict[str, Any]:
    """WAL-shipping replication: apply throughput, read fan-out, lag.

    * **apply** — end-to-end replication throughput: time from the
      first primary commit until one replica confirms the last of
      *commits* streamed records (``wait_for`` on the final sequence).
    * **fanout** — aggregate snapshot-read QPS from think-time readers
      pinned round-robin to 1/2/4 replicas, with a background writer
      keeping the stream busy; the same replicas persist across cells
      so each step only adds followers.
    * **lag** — p95 of the worst replica's sequence lag, sampled every
      5 ms during the largest fan-out cell (the busiest moment).
    """
    from repro.errors import ReplicaLagExceeded
    from repro.replication import Replica, ReplicationPublisher

    think = REPLICATION_THINK_SECONDS
    with tempfile.TemporaryDirectory(prefix="bench-repl-", dir=base_dir) as tmp:
        root = Path(tmp)
        primary = Database(root / "primary", durability="group:2:64")
        primary.create_table(_commit_schema())
        with primary.transaction() as txn:
            for i in range(REPLICATION_SEED_ROWS):
                txn.insert("bench_commit", {"id": i, "n": i})
        publisher = ReplicationPublisher(primary).start()
        replicas: list[Replica] = []

        def add_replica() -> Replica:
            index = len(replicas)
            rdb = Database(root / f"replica-{index}", durability="buffered")
            rdb.create_table(_commit_schema())
            replica = Replica(
                rdb, ("127.0.0.1", publisher.port), name=f"r{index}"
            ).start()
            replicas.append(replica)
            return replica

        def converge(timeout: float = 15.0) -> None:
            seq = primary.replication_start_point()[0]
            for replica in replicas:
                replica.wait_for(seq, timeout=timeout)

        # -- apply throughput ------------------------------------------
        add_replica()
        converge()
        writer_threads = 8
        per_writer = max(1, commits // writer_threads)
        total = per_writer * writer_threads
        barrier = threading.Barrier(writer_threads + 1)

        def commit_worker(worker_id: int) -> None:
            barrier.wait()
            base = REPLICATION_SEED_ROWS + 1_000 + worker_id * per_writer
            for i in range(per_writer):
                primary.insert("bench_commit", {"id": base + i, "n": i})

        pool = [
            threading.Thread(target=commit_worker, args=(w,), daemon=True)
            for w in range(writer_threads)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in pool:
            thread.join()
        final_seq = primary.replication_start_point()[0]
        replicas[0].wait_for(final_seq, timeout=60.0)
        apply_elapsed = time.perf_counter() - started
        apply = {
            "commits": total,
            "seconds": round(apply_elapsed, 6),
            "replicated_per_sec": round(total / apply_elapsed, 1),
        }

        # -- read fan-out + lag sampling -------------------------------
        cells: dict[str, dict[str, Any]] = {}
        lag_samples: list[int] = []
        next_write_id = [REPLICATION_SEED_ROWS + 200_000]
        for count in fanout:
            while len(replicas) < count:
                add_replica()
            converge()
            n_readers = count * readers_per_replica
            stop = threading.Event()
            ready = threading.Barrier(n_readers + 2)
            reads = [0] * n_readers
            sample_here = count == fanout[-1]
            if sample_here:
                lag_samples.clear()

            def reader(tid: int, count: int = count) -> None:
                replica = replicas[tid % count]
                ready.wait()
                i, done = 0, 0
                while not stop.is_set():
                    i += 1
                    try:
                        with replica.snapshot() as snap:
                            snap.get_or_none(
                                "bench_commit",
                                (tid * 31 + i) % REPLICATION_SEED_ROWS,
                            )
                        done += 1
                    except ReplicaLagExceeded:
                        pass
                    time.sleep(think)
                reads[tid] = done

            def background_writer() -> None:
                ready.wait()
                while not stop.is_set():
                    row_id = next_write_id[0]
                    next_write_id[0] += 1
                    primary.insert("bench_commit", {"id": row_id, "n": row_id})
                    time.sleep(0.002)

            def lag_sampler() -> None:
                while not stop.is_set():
                    lag_samples.append(max(r.lag() for r in replicas))
                    time.sleep(0.005)

            threads = [
                threading.Thread(target=reader, args=(t,), daemon=True)
                for t in range(n_readers)
            ]
            threads.append(
                threading.Thread(target=background_writer, daemon=True)
            )
            if sample_here:
                threads.append(
                    threading.Thread(target=lag_sampler, daemon=True)
                )
            for thread in threads:
                thread.start()
            ready.wait()
            cell_started = time.perf_counter()
            time.sleep(window)
            stop.set()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - cell_started
            cells[str(count)] = {
                "replicas": count,
                "readers": n_readers,
                "reads": sum(reads),
                "seconds": round(elapsed, 6),
                "qps": round(sum(reads) / elapsed, 1),
            }

        for replica in replicas:
            replica.stop()
            replica.db.close()
        publisher.stop()
        primary.close()

    low, high = str(fanout[0]), str(fanout[-1])
    scaling = (
        round(cells[high]["qps"] / cells[low]["qps"], 2)
        if cells[low]["qps"]
        else None
    )
    lag_p95 = 0
    if lag_samples:
        lag_p95 = sorted(lag_samples)[min(len(lag_samples) - 1, int(len(lag_samples) * 0.95))]
    return {
        "seed_rows": REPLICATION_SEED_ROWS,
        "think_seconds": think,
        "window_seconds": window,
        "apply": apply,
        "fanout": cells,
        "fanout_scaling": scaling,
        "lag_p95_seqs": int(lag_p95),
    }


_SPECIES = ("arabidopsis", "yeast", "zebrafish", "mouse", "human")
_TISSUES = ("leaf", "root", "liver", "brain", "culture")


def bench_search(docs: int, queries: int) -> dict[str, Any]:
    """QPS of a fixed query mix over a warm corpus."""
    engine = SearchEngine()
    for i in range(docs):
        engine.index_document(
            "sample",
            i,
            {
                "name": f"{_SPECIES[i % 5]} {_TISSUES[i % 4]} sample {i}",
                "description": f"replicate {i % 7} of the "
                f"{_SPECIES[(i + 2) % 5]} series",
            },
            label=f"sample {i}",
        )
    # A small rotation of shapes: repeats exercise the candidate cache
    # the way a portal's saved searches do.
    shapes = [f"{s} {t}" for s in _SPECIES for t in _TISSUES[:3]]
    started = time.perf_counter()
    results = 0
    for i in range(queries):
        results += len(engine.search(SYSTEM, shapes[i % len(shapes)], limit=10))
    elapsed = time.perf_counter() - started
    metrics = engine.obs.metrics.get("search_cache_total")
    hits = misses = 0.0
    if metrics is not None:
        hits = metrics.labels(result="hit").value
        misses = metrics.labels(result="miss").value
    return {
        "documents": docs,
        "queries": queries,
        "results": results,
        "seconds": round(elapsed, 6),
        "qps": round(queries / elapsed, 1),
        "cache_hits": int(hits),
        "cache_misses": int(misses),
        "cache_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else 0.0,
    }


def bench_queue_ingest(
    jobs: int = QUEUE_INGEST_JOBS,
    worker_counts: "tuple[int, ...]" = QUEUE_WORKER_COUNTS,
    files_per_job: int = QUEUE_INGEST_FILES,
) -> dict[str, Any]:
    """File imports drained through the durable job queue.

    Each cell boots a fresh in-memory deployment, starts a pool of N
    workers, enqueues *jobs* imports (each fetching and checksumming
    *files_per_job* files into the managed store), and times the drain.
    The claim-to-start p95 comes from the queue's claim-latency ring —
    the delay between a job becoming runnable and a worker leasing it.
    """
    from repro.dataimport.filesystem import LocalFileSystemProvider
    from repro.facade import BFabric

    workers_section: dict[str, dict[str, Any]] = {}
    for workers in worker_counts:
        with tempfile.TemporaryDirectory(prefix="bench-queue-") as tmp:
            source = Path(tmp) / "source"
            source.mkdir()
            names = [f"bench-{i:02d}.raw" for i in range(files_per_job)]
            for index, name in enumerate(names):
                (source / name).write_bytes(b"bench payload\n" * (64 + index))
            system = BFabric()
            admin = system.bootstrap()
            project = system.projects.create(
                admin, f"queue bench {workers}w"
            )
            system.imports.register_provider(
                LocalFileSystemProvider("bench-src", source)
            )
            system.start_workers(workers=workers, name=f"bench-{workers}w")
            started = time.perf_counter()
            job_ids = [
                system.imports.enqueue_import(
                    admin,
                    project.id,
                    "bench-src",
                    names,
                    workunit_name=f"bench import {i}",
                    job_key=f"bench-{workers}-{i}",
                ).id
                for i in range(jobs)
            ]
            for job_id in job_ids:
                system.queue.wait(job_id, timeout=120.0)
            elapsed = time.perf_counter() - started
            system.stop_workers(drain=True, timeout=30.0)
            done = sum(
                1
                for job_id in job_ids
                if system.queue.get(job_id).state == "done"
            )
            samples = sorted(system.queue.claim_latency_samples())
            system.close()
            p95 = (
                samples[min(len(samples) - 1, int(0.95 * len(samples)))]
                if samples
                else 0.0
            )
            workers_section[str(workers)] = {
                "jobs": jobs,
                "done": done,
                "files_per_job": files_per_job,
                "seconds": round(elapsed, 6),
                "jobs_per_sec": round(done / elapsed, 3) if elapsed else 0.0,
                "claim_to_start_p95_seconds": round(p95, 6),
                "claim_samples": len(samples),
            }
    one = workers_section.get("1", {}).get("jobs_per_sec") or 0.0
    four = workers_section.get("4", {}).get("jobs_per_sec") or 0.0
    return {
        "worker_counts": list(worker_counts),
        "workers": workers_section,
        "scaling_4x_vs_1": round(four / one, 3) if one else None,
    }


def _read_http_response(sock, buffer: bytes) -> "tuple[int, bytes, bool]":
    """Read one framed response; returns (status, leftover, closed).

    Minimal by design: the hammer client must cost as little Python as
    possible so the cell measures the *server* (client and server share
    one interpreter — a heavyweight client steals GIL time from the
    code under test).  Handles Content-Length framing, bodyless 304s,
    and servers that frame by closing (wsgiref's HTTP/1.0 baseline).
    """
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionResetError("eof in headers")
        buffer += chunk
    head, _, buffer = buffer.partition(b"\r\n\r\n")
    status = int(head[9:12])
    lowered = head.lower()
    closing = b"connection: close" in lowered
    length = None
    marker = lowered.find(b"content-length:")
    if marker != -1:
        line_end = lowered.find(b"\r\n", marker)
        end = line_end if line_end != -1 else len(lowered)
        length = int(lowered[marker + 15 : end])
    if status == 304 or length == 0:
        return status, buffer, closing
    if length is not None:
        while len(buffer) < length:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionResetError("eof in body")
            buffer += chunk
        return status, buffer[length:], closing
    # No length: the peer frames by closing (HTTP/1.0 style).
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return status, b"", True
        buffer += chunk


def _portal_hammer(
    port: int, path: str, headers: dict[str, str], clients: int, window: float
) -> dict[str, Any]:
    """*clients* keep-alive connections hammering one GET for *window*.

    A connection the server closes (wsgiref baseline, shed-and-close) is
    transparently reopened, so the cell measures end-to-end throughput
    including reconnect costs — exactly what a real client fleet pays.
    The client is a raw socket loop sending precomputed request bytes
    (see :func:`_read_http_response` for why not ``http.client``).
    """
    request_lines = [f"GET {path} HTTP/1.1", "Host: bench"]
    request_lines += [f"{name}: {value}" for name, value in headers.items()]
    request = ("\r\n".join(request_lines) + "\r\n\r\n").encode("latin-1")

    counts: dict[int, int] = {}
    mu = threading.Lock()
    # The window only starts once every client thread is up: spawning
    # 16 threads on a loaded box can take longer than a smoke-scale
    # window, and a cell with zero requests reads as a broken server.
    go = threading.Event()
    deadline: list[float] = [0.0]

    def run() -> None:
        sock = None
        buffer = b""
        local: dict[int, int] = {}
        go.wait()
        clock = time.perf_counter
        while True:
            try:
                if sock is None:
                    sock = socket.create_connection(
                        ("127.0.0.1", port), timeout=10
                    )
                    sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                    buffer = b""
                sock.sendall(request)
                status, buffer, closed = _read_http_response(sock, buffer)
                local[status] = local.get(status, 0) + 1
                if closed:
                    sock.close()
                    sock = None
            except OSError:
                if sock is not None:
                    sock.close()
                sock = None
            if clock() >= deadline[0]:
                break  # after ≥ 1 attempt, so no cell is ever empty
        if sock is not None:
            sock.close()
        with mu:
            for status, count in local.items():
                counts[status] = counts.get(status, 0) + count

    threads = [threading.Thread(target=run) for _ in range(clients)]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    deadline[0] = started + window
    go.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total_ok = counts.get(200, 0) + counts.get(304, 0)
    return {
        "requests": sum(counts.values()),
        "ok": total_ok,
        "statuses": {str(k): v for k, v in sorted(counts.items())},
        "seconds": round(elapsed, 6),
        "qps": round(total_ok / elapsed, 3) if elapsed else 0.0,
    }


def _portal_login(port: int) -> str:
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.request(
        "POST", "/login", body="login=admin&password=adminpw",
        headers={"Content-Type": "application/x-www-form-urlencoded"},
    )
    response = conn.getresponse()
    response.read()
    cookie = (response.getheader("Set-Cookie") or "").split(";")[0]
    conn.close()
    return cookie


def bench_portal_qps(
    client_counts: "tuple[int, ...]" = PORTAL_CLIENT_COUNTS,
    window: float = PORTAL_WINDOW,
) -> dict[str, Any]:
    """Serving-tier throughput: cold renders vs 304 hits vs JSON.

    One deployment, three read modes against the same project page:

    * ``cold`` — full HTML render (no validator presented);
    * ``not_modified`` — the same GET with ``If-None-Match``, answered
      by the 304 fast path (no render, no snapshot, no table reads);
    * ``json_api`` — the machine-readable projection.

    A single-threaded ``wsgiref`` baseline serves the JSON mode at the
    top client count (the ROADMAP's "what we replaced" number), and a
    deliberately tiny admission gate (``max_inflight=2``) is saturated
    to show overload shedding 503s instead of queueing.
    """
    from wsgiref.simple_server import WSGIRequestHandler, make_server

    from repro.facade import BFabric
    from repro.portal import PortalApplication
    from repro.portal.server import PortalServer

    system = BFabric()
    admin = system.bootstrap(password="adminpw")
    system.directory.set_password(admin, admin.user_id, "adminpw")
    project = system.projects.create(
        admin, "portal bench", description="serving-tier workload"
    )
    for index in range(300):
        system.samples.register_sample(
            admin, project.id, f"sample-{index:03d}", species="H. sapiens"
        )
    app = PortalApplication(system)
    page_path = f"/projects/{project.id}"
    api_path = "/api/projects"

    server = PortalServer(
        app, "127.0.0.1", 0, workers=8, max_inflight=64, keep_alive=5.0
    ).start()
    try:
        cookie = _portal_login(server.port)
        import http.client

        probe = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        probe.request("GET", page_path, headers={"Cookie": cookie})
        response = probe.getresponse()
        response.read()
        etag = response.getheader("ETag") or ""
        probe.close()
        top = max(client_counts)
        modes: dict[str, dict[str, Any]] = {"cold": {}, "not_modified": {}, "json_api": {}}
        for clients in client_counts:
            # The speedup-bearing cells (top client count) run best-of-3,
            # same methodology as the commit-throughput sweep: scheduler
            # noise only ever loses requests, so max is the honest read.
            rounds = 3 if clients == top else 1
            modes["cold"][str(clients)] = max(
                (_portal_hammer(
                    server.port, page_path, {"Cookie": cookie}, clients, window
                ) for _ in range(rounds)),
                key=lambda cell: cell["qps"],
            )
            modes["not_modified"][str(clients)] = max(
                (_portal_hammer(
                    server.port, page_path,
                    {"Cookie": cookie, "If-None-Match": etag}, clients, window,
                ) for _ in range(rounds)),
                key=lambda cell: cell["qps"],
            )
            modes["json_api"][str(clients)] = max(
                (_portal_hammer(
                    server.port, api_path, {"Cookie": cookie}, clients, window
                ) for _ in range(rounds)),
                key=lambda cell: cell["qps"],
            )
    finally:
        server.shutdown()

    # -- single-threaded wsgiref baseline (what `repro serve` used to be) --
    class _Quiet(WSGIRequestHandler):
        def log_message(self, *args):  # noqa: N802 - wsgiref API
            pass

    with make_server("127.0.0.1", 0, app, handler_class=_Quiet) as httpd:
        baseline_port = httpd.server_address[1]
        runner = threading.Thread(target=httpd.serve_forever, daemon=True)
        runner.start()
        cookie = _portal_login(baseline_port)
        wsgiref_cell = max(
            (_portal_hammer(
                baseline_port, api_path, {"Cookie": cookie}, top, window
            ) for _ in range(3)),
            key=lambda cell: cell["qps"],
        )
        httpd.shutdown()
        runner.join(timeout=10)

    # -- overload: a tiny in-flight gate saturated by the top client count --
    shed_server = PortalServer(
        app, "127.0.0.1", 0, workers=4, max_inflight=1, queue_depth=2,
        keep_alive=5.0,
    ).start()
    retry_after: dict[str, str] = {}
    try:
        cookie = _portal_login(shed_server.port)

        def probe_retry_after() -> None:
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", shed_server.port, timeout=10
            )
            for _ in range(500):
                if retry_after:
                    break
                try:
                    conn.request("GET", page_path, headers={"Cookie": cookie})
                    response = conn.getresponse()
                    response.read()
                    if response.status == 503:
                        retry_after["value"] = (
                            response.getheader("Retry-After") or ""
                        )
                        break
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", shed_server.port, timeout=10
                    )
            conn.close()

        prober = threading.Thread(target=probe_retry_after)
        prober.start()
        shed_cell = _portal_hammer(
            shed_server.port, page_path, {"Cookie": cookie}, top, window
        )
        prober.join(timeout=10)
    finally:
        shed_server.shutdown()
    system.close()

    top_key = str(top)
    cold = modes["cold"][top_key]["qps"] or 0.0
    hit = modes["not_modified"][top_key]["qps"] or 0.0
    json_qps = modes["json_api"][top_key]["qps"] or 0.0
    wsgiref_qps = wsgiref_cell["qps"] or 0.0
    return {
        "client_counts": list(client_counts),
        "page": page_path,
        "modes": modes,
        "wsgiref_json_baseline": wsgiref_cell,
        "shed": {
            "max_inflight": 1,
            "clients": top,
            "served_200": shed_cell["statuses"].get("200", 0),
            "shed_503": shed_cell["statuses"].get("503", 0),
            "retry_after": retry_after.get("value", ""),
        },
        "not_modified_speedup_vs_cold": round(hit / cold, 3) if cold else None,
        "json_speedup_vs_wsgiref": (
            round(json_qps / wsgiref_qps, 3) if wsgiref_qps else None
        ),
    }


def run_benchmarks(
    *,
    scale: float = 1.0,
    threads: int = COMMIT_THREADS,
    max_shards: int = 4,
    data_dir: "str | Path | None" = None,
) -> dict[str, Any]:
    """Run every benchmark and return the report dict."""
    txns = max(threads, int(COMMIT_TXNS * scale))
    rows = max(100, int(QUERY_ROWS * scale))
    docs = max(50, int(SEARCH_DOCS * scale))
    queries = max(50, int(SEARCH_QUERIES * scale))
    base_dir = None
    if data_dir is not None:
        base_dir = Path(data_dir)
        base_dir.mkdir(parents=True, exist_ok=True)
    window = max(0.12, CONCURRENCY_WINDOW * scale)
    replication_commits = max(64, int(REPLICATION_COMMITS * scale))
    replication_window = max(0.2, REPLICATION_WINDOW * scale)
    shard_counts = tuple(
        c for c in SHARDED_COUNTS if c <= max(1, max_shards)
    ) or (1,)
    commit = bench_commit_throughput(
        txns=txns, threads=threads, base_dir=base_dir
    )
    sharded = bench_sharded_commit(
        txns=txns,
        threads=threads,
        shard_counts=shard_counts,
        base_dir=base_dir,
    )
    latency, cache = bench_query_latency(rows)
    search = bench_search(docs, queries)
    concurrency = bench_concurrency(duration=window, base_dir=base_dir)
    replication = bench_replication(
        commits=replication_commits,
        window=replication_window,
        base_dir=base_dir,
    )
    queue_jobs = max(6, int(QUEUE_INGEST_JOBS * scale))
    queue_ingest = bench_queue_ingest(jobs=queue_jobs)
    portal_window = max(0.25, PORTAL_WINDOW * scale)
    portal = bench_portal_qps(window=portal_window)
    return {
        "schema": REPORT_SCHEMA,
        "generated_by": "PR10",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "config": {
            "scale": scale,
            "threads": threads,
            "commit_txns": txns,
            "query_rows": rows,
            "search_docs": docs,
            "search_queries": queries,
            "concurrency_window_seconds": window,
            "replication_commits": replication_commits,
            "replication_window_seconds": replication_window,
            "shard_counts": list(shard_counts),
            "queue_jobs": queue_jobs,
            "queue_worker_counts": list(QUEUE_WORKER_COUNTS),
            "portal_client_counts": list(PORTAL_CLIENT_COUNTS),
            "portal_window_seconds": portal_window,
        },
        "benchmarks": {
            "commit_throughput": commit,
            "sharded_commit_throughput": sharded,
            "query_latency": latency,
            "query_cache": cache,
            "search": search,
            "concurrency": concurrency,
            "replication": replication,
            "queue_ingest": queue_ingest,
            "portal_qps": portal,
        },
    }


def validate_report(report: dict[str, Any]) -> list[str]:
    """Shape-check a report; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if report.get("schema") != REPORT_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {REPORT_SCHEMA!r}"
        )
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, dict):
        return problems + ["missing benchmarks section"]
    commit = benchmarks.get("commit_throughput", {})
    modes = commit.get("modes", {})
    for mode in ("always", "group", "buffered"):
        entry = modes.get(mode)
        if not isinstance(entry, dict):
            problems.append(f"commit_throughput missing mode {mode!r}")
            continue
        if not entry.get("tx_per_sec", 0) > 0:
            problems.append(f"mode {mode!r} reports no throughput")
        if entry.get("committed") != entry.get("transactions"):
            problems.append(f"mode {mode!r} lost transactions")
    group, always = modes.get("group", {}), modes.get("always", {})
    if group.get("fsyncs", 0) >= group.get("transactions", 1):
        problems.append("group mode did not batch fsyncs")
    if not isinstance(commit.get("group_speedup_vs_always"), (int, float)):
        problems.append("missing group_speedup_vs_always")
    sharded = benchmarks.get("sharded_commit_throughput")
    if not isinstance(sharded, dict):
        # Reports generated before the write path was sharded (PR7)
        # legitimately lack the section; anything newer must have it.
        if report.get("generated_by") not in ("PR5", "PR6"):
            problems.append("missing sharded_commit_throughput section")
    else:
        counts = [str(c) for c in sharded.get("shard_counts", [])]
        if not counts:
            problems.append("sharded_commit_throughput reports no shard counts")
        cells = sharded.get("shards", {})
        for count in counts:
            cell = cells.get(count)
            if not isinstance(cell, dict):
                problems.append(f"sharded commit missing {count}-shard cell")
                continue
            if not cell.get("tx_per_sec", 0) > 0:
                problems.append(f"sharded commit@{count} reports no throughput")
            if cell.get("committed") != cell.get("rows"):
                problems.append(f"sharded commit@{count} lost rows")
            if int(count) > 1 and not cell.get("two_phase_commits", 0) > 0:
                problems.append(
                    f"sharded commit@{count} recorded no 2PC commits"
                )
        fraction = sharded.get("cross_shard_fraction")
        if not isinstance(fraction, (int, float)) or not 0 < fraction <= 0.2:
            problems.append(
                "cross_shard_fraction missing or outside (0, 0.2]"
            )
        if not isinstance(sharded.get("scaling_4x_vs_1"), (int, float)):
            problems.append("missing scaling_4x_vs_1")
    latency = benchmarks.get("query_latency", {})
    for key in ("pk_seconds", "indexed_seconds", "cached_seconds", "scan_seconds"):
        if not latency.get(key, 0) > 0:
            problems.append(f"query_latency missing {key}")
    planner = latency.get("planner")
    if not isinstance(planner, dict):
        # Reports generated before the cost-based planner (PR9)
        # legitimately lack the section; anything newer must have it.
        if report.get("generated_by") in ("PR5", "PR6", "PR7", "PR8"):
            planner = None
        else:
            problems.append("missing query_latency planner section")
    if isinstance(planner, dict):
        for shape in ("range", "multi_predicate", "covering", "limit_early_exit"):
            cell = planner.get(shape)
            if not isinstance(cell, dict):
                problems.append(f"planner missing shape {shape!r}")
                continue
            if not cell.get("p50_seconds", 0) > 0:
                problems.append(f"planner {shape} recorded no latency")
            if not cell.get("scan_p50_seconds", 0) > 0:
                problems.append(f"planner {shape} recorded no scan baseline")
            if not isinstance(cell.get("speedup_vs_scan"), (int, float)):
                problems.append(f"planner {shape} missing speedup_vs_scan")
            strategy = cell.get("strategy")
            if not isinstance(strategy, str) or not strategy:
                problems.append(f"planner {shape} missing strategy")
            elif strategy == "scan":
                problems.append(
                    f"planner {shape} fell back to a scan plan"
                )
    cache = benchmarks.get("query_cache", {})
    if not cache.get("hits", 0) > 0:
        problems.append("query cache recorded no hits")
    search = benchmarks.get("search", {})
    if not search.get("qps", 0) > 0:
        problems.append("search benchmark recorded no throughput")
    if not search.get("cache_hits", 0) > 0:
        problems.append("search candidate cache recorded no hits")
    concurrency = benchmarks.get("concurrency")
    if not isinstance(concurrency, dict):
        problems.append("missing concurrency section")
        return problems
    workloads = concurrency.get("workloads", {})
    counts = [str(t) for t in concurrency.get("thread_counts", [])]
    if not counts:
        problems.append("concurrency reports no thread counts")
    for workload in ("read_only", "write_only", "mixed_90_10"):
        cells = workloads.get(workload)
        if not isinstance(cells, dict):
            problems.append(f"concurrency missing workload {workload!r}")
            continue
        for count in counts:
            cell = cells.get(count)
            if not isinstance(cell, dict):
                problems.append(f"{workload} missing {count}-thread cell")
                continue
            ops = cell.get("reads", 0) + cell.get("writes", 0)
            if not ops > 0:
                problems.append(f"{workload}@{count} recorded no operations")
    for cell in (workloads.get("mixed_90_10") or {}).values():
        if isinstance(cell, dict) and not cell.get("reads", 0) > 0:
            problems.append("mixed workload recorded no reads")
        if isinstance(cell, dict) and not cell.get("writes", 0) > 0:
            problems.append("mixed workload recorded no writes")
    if not isinstance(concurrency.get("mixed_read_scaling"), (int, float)):
        problems.append("missing mixed_read_scaling")
    replication = benchmarks.get("replication")
    if not isinstance(replication, dict):
        problems.append("missing replication section")
        return problems
    apply = replication.get("apply", {})
    if not apply.get("replicated_per_sec", 0) > 0:
        problems.append("replication apply recorded no throughput")
    fanout = replication.get("fanout", {})
    for count in ("1", "2", "4"):
        cell = fanout.get(count)
        if not isinstance(cell, dict):
            problems.append(f"replication fanout missing {count}-replica cell")
            continue
        if not cell.get("reads", 0) > 0:
            problems.append(f"replication fanout@{count} recorded no reads")
    if not isinstance(replication.get("fanout_scaling"), (int, float)):
        problems.append("missing replication fanout_scaling")
    if not isinstance(replication.get("lag_p95_seqs"), (int, float)):
        problems.append("missing replication lag_p95_seqs")
    queue = benchmarks.get("queue_ingest")
    if not isinstance(queue, dict):
        # Reports generated before the durable job queue (PR8)
        # legitimately lack the section; anything newer must have it.
        if report.get("generated_by") not in ("PR5", "PR6", "PR7"):
            problems.append("missing queue_ingest section")
    else:
        worker_counts = [str(c) for c in queue.get("worker_counts", [])]
        if not worker_counts:
            problems.append("queue_ingest reports no worker counts")
        cells = queue.get("workers", {})
        for count in worker_counts:
            cell = cells.get(count)
            if not isinstance(cell, dict):
                problems.append(f"queue_ingest missing {count}-worker cell")
                continue
            if not cell.get("jobs_per_sec", 0) > 0:
                problems.append(f"queue_ingest@{count} recorded no throughput")
            if cell.get("done") != cell.get("jobs"):
                problems.append(f"queue_ingest@{count} lost jobs")
            if not isinstance(
                cell.get("claim_to_start_p95_seconds"), (int, float)
            ):
                problems.append(
                    f"queue_ingest@{count} missing claim_to_start_p95_seconds"
                )
    portal = benchmarks.get("portal_qps")
    if not isinstance(portal, dict):
        # Reports generated before the serving tier (PR10) legitimately
        # lack the section; anything newer must have it.
        if report.get("generated_by") not in (
            "PR5", "PR6", "PR7", "PR8", "PR9"
        ):
            problems.append("missing portal_qps section")
        return problems
    client_counts = [str(c) for c in portal.get("client_counts", [])]
    if not client_counts:
        problems.append("portal_qps reports no client counts")
    for mode in ("cold", "not_modified", "json_api"):
        cells = (portal.get("modes") or {}).get(mode)
        if not isinstance(cells, dict):
            problems.append(f"portal_qps missing mode {mode!r}")
            continue
        for count in client_counts:
            cell = cells.get(count)
            if not isinstance(cell, dict):
                problems.append(f"portal_qps {mode} missing {count}-client cell")
                continue
            if not cell.get("qps", 0) > 0:
                problems.append(f"portal_qps {mode}@{count} recorded no throughput")
    for count, cell in ((portal.get("modes") or {}).get("not_modified") or {}).items():
        if isinstance(cell, dict):
            if not cell.get("statuses", {}).get("304", 0) > 0:
                problems.append(
                    f"portal_qps not_modified@{count} saw no real 304s"
                )
    if not (portal.get("wsgiref_json_baseline") or {}).get("qps", 0) > 0:
        problems.append("portal_qps missing wsgiref baseline throughput")
    shed = portal.get("shed") or {}
    if not shed.get("shed_503", 0) > 0:
        problems.append("portal_qps overload cell shed no 503s")
    if not shed.get("retry_after"):
        problems.append("portal_qps 503s carried no Retry-After")
    for key in ("not_modified_speedup_vs_cold", "json_speedup_vs_wsgiref"):
        if not isinstance(portal.get(key), (int, float)):
            problems.append(f"portal_qps missing {key}")
    return problems


def write_report(report: dict[str, Any], path: "str | Path") -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="Storage hot-path benchmarks"
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--threads", type=int, default=COMMIT_THREADS)
    parser.add_argument(
        "--shards", type=int, default=4,
        help="largest shard count in the sharded-commit scaling sweep",
    )
    parser.add_argument(
        "--data", default=None,
        help="scratch parent directory for the WAL workloads "
        "(defaults to the system temp dir)",
    )
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument(
        "--validate", metavar="PATH",
        help="validate an existing report instead of running benchmarks",
    )
    args = parser.parse_args(argv)
    if args.validate:
        report = json.loads(Path(args.validate).read_text())
        problems = validate_report(report)
        for problem in problems:
            print(f"INVALID: {problem}")
        if problems:
            return 1
        print(f"{args.validate}: valid {report.get('schema')} report")
        return 0
    report = run_benchmarks(
        scale=args.scale,
        threads=args.threads,
        max_shards=args.shards,
        data_dir=args.data,
    )
    write_report(report, args.out)
    commit = report["benchmarks"]["commit_throughput"]
    for mode, entry in commit["modes"].items():
        print(
            f"{mode:<10s} {entry['tx_per_sec']:>9.1f} tx/s  "
            f"fsyncs={entry['fsyncs']}"
        )
    print(f"group speedup vs always: {commit['group_speedup_vs_always']}x")
    sharded = report["benchmarks"]["sharded_commit_throughput"]
    cells = "  ".join(
        f"{k}sh={cell['tx_per_sec']:.0f}tx/s"
        for k, cell in sharded["shards"].items()
    )
    print(
        f"sharded(always) {cells}  "
        f"scaling={sharded['scaling_4x_vs_1']}x  "
        f"cross_shard={sharded['cross_shard_fraction']:.0%}"
    )
    concurrency = report["benchmarks"]["concurrency"]
    for name, cells in concurrency["workloads"].items():
        rates = "  ".join(
            f"{t}t={cell['reads_per_sec']:.0f}r/{cell['writes_per_sec']:.0f}w"
            for t, cell in cells.items()
        )
        print(f"{name:<12s} {rates} per sec")
    print(f"mixed reader scaling (max vs 1 thread): {concurrency['mixed_read_scaling']}x")
    replication = report["benchmarks"]["replication"]
    fan = "  ".join(
        f"{k}rep={cell['qps']:.0f}qps"
        for k, cell in replication["fanout"].items()
    )
    print(
        f"replication   apply={replication['apply']['replicated_per_sec']:.0f}/s  "
        f"{fan}  scaling={replication['fanout_scaling']}x  "
        f"lag_p95={replication['lag_p95_seqs']} seqs"
    )
    planner = report["benchmarks"]["query_latency"]["planner"]
    cells = "  ".join(
        f"{name}={cell['speedup_vs_scan']:.1f}x"
        for name, cell in planner.items()
    )
    print(f"planner       {cells} vs scan (p50)")
    queue = report["benchmarks"]["queue_ingest"]
    cells = "  ".join(
        f"{k}w={cell['jobs_per_sec']:.1f}j/s"
        f"(p95={cell['claim_to_start_p95_seconds']:.3f}s)"
        for k, cell in queue["workers"].items()
    )
    print(f"queue_ingest  {cells}  scaling={queue['scaling_4x_vs_1']}x")
    print(f"report written: {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - direct execution
    import sys

    sys.exit(main())
