"""``bfabric`` — the command-line administration tool.

Operates on a durable deployment directory (the argument every
subcommand takes via ``--data``).  Subcommands:

* ``init`` — create a deployment and its first admin user;
* ``stats`` — print the deployment-statistics table (paper Final Remark);
  ``--window N`` adds windowed per-second rates from the metrics
  history ring;
* ``metrics`` — dump the observability registry (text exposition or JSON);
* ``slowlog`` — show operations that blew their latency budget, with
  the query planner's ``explain()`` output where one was captured;
* ``debug-bundle`` — write the flight-recorder bundle (traces, slow
  ops, metrics history, log tail, storage/replication state) as one
  schema-validated JSON file;
* ``integrity`` — run the storage self-checks;
* ``checkpoint`` — snapshot the database and truncate the WAL;
* ``reindex`` — rebuild the full-text index;
* ``audit`` — show recent audit entries;
* ``search`` — run a query from the shell;
* ``generate`` — synthesize an FGCZ-scale benchmark deployment;
* ``bench`` — measure the storage hot paths, write a JSON report;
* ``serve`` — run the web portal under wsgiref;
* ``replicate`` — WAL-shipping replication: ``serve`` publishes this
  deployment's log, ``join`` follows a primary, ``status`` prints the
  local replication position, ``promote`` heals a replica directory
  into a writable primary;
* ``queue`` — the durable job queue: ``status`` shows backlog depth and
  per-state/per-type counts, ``retry`` re-queues dead jobs, ``drain``
  runs workers until the backlog is empty;
* ``maintenance`` — housekeeping (``prune`` sweeps MVCC version
  chains);
* ``shard`` — sharded-deployment administration: ``status`` prints the
  shard map, table placements, and per-shard commit seq / WAL size /
  open snapshots (``init --shards N`` creates a sharded deployment).

Usage::

    python -m repro.cli --data /var/lib/bfabric init --admin-password s3cret
    python -m repro.cli --data /var/lib/bfabric stats
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.facade import BFabric


def _open(args: argparse.Namespace, *, recover: bool = True) -> BFabric:
    system = BFabric(args.data, durability=getattr(args, "durability", None))
    if recover:
        system.recover()
    return system


def _principal(system: BFabric, login: str):
    user = system.directory.user_by_login(login)
    if user is None:
        raise SystemExit(f"error: no user named {login!r} (run init first?)")
    return system.directory.principal_for(user)


def cmd_init(args: argparse.Namespace) -> int:
    system = BFabric(
        args.data,
        durability=getattr(args, "durability", None),
        shards=getattr(args, "shards", None),
    )
    try:
        system.recover()
    except Exception:
        pass  # brand-new directory
    principal = system.bootstrap(
        login=args.admin_login, password=args.admin_password
    )
    system.db.checkpoint()
    print(f"initialized deployment at {args.data}")
    shard_count = getattr(system.db, "shard_count", None)
    if shard_count is not None:
        print(f"sharded: {shard_count} shard(s)")
    print(f"admin user: {principal.login}")
    system.close()
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    system = _open(args)
    try:
        status = getattr(system.db, "shard_status", None)
        if status is None:
            print("deployment is not sharded (single database)")
            return 0
        sharding = system.db.statistics()["sharding"]
        print(f"shards: {sharding['shards']}")
        print(f"open snapshot vectors: {sharding['open_snapshot_vectors']}")
        print("placements:")
        for name, kind in sorted(sharding["placements"].items()):
            print(f"  {name:<20s} {kind}")
        print(f"{'shard':>5s} {'seq':>8s} {'wal_bytes':>10s} "
              f"{'snapshots':>9s} {'horizon':>8s} {'rows':>8s} {'txns':>8s}")
        for row in sharding["per_shard"]:
            print(f"{row['shard']:>5d} {row['committed_seq']:>8d} "
                  f"{row['wal_bytes']:>10d} {row['open_snapshots']:>9d} "
                  f"{row['version_horizon']:>8d} {row['rows']:>8d} "
                  f"{row['transactions']:>8d}")
        return 0
    finally:
        system.close()


def cmd_stats(args: argparse.Namespace) -> int:
    system = _open(args)
    stats = system.deployment_statistics()
    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{key:<{width}}  {value}")
    storage = system.db.statistics()
    print(f"\ntotal rows: {storage['total_rows']}, "
          f"WAL: {storage['wal_bytes']} bytes")
    mvcc = storage["mvcc"]
    print(f"MVCC: committed seq {mvcc['committed_seq']}, "
          f"open snapshots {mvcc['open_snapshots']}, "
          f"version horizon {mvcc['version_horizon']}, "
          f"retained versions {mvcc['retained_versions']}")
    snapshot = system.monitor.snapshot()
    print(f"commits observed: {snapshot['commits']}")
    queue = system.queue.status()
    states = queue["states"]
    print(f"queue: depth {queue['depth']} "
          f"(pending {states['pending']}, leased {states['leased']}, "
          f"retry_wait {states['retry_wait']}), "
          f"done {states['done']}, dead {states['dead']}, "
          f"lease expirations {queue['lease_expirations']}")
    for job_type, counts in sorted(queue["per_type"].items()):
        parts = ", ".join(
            f"{state} {count}" for state, count in counts.items() if count
        )
        print(f"  {job_type:<24s} {parts}")
    latency = snapshot["latency"]
    if latency:
        print("latency (seconds):")
        for name, summary in sorted(latency.items()):
            print(f"  {name:<32s} n={summary['count']:<7d} "
                  f"p50={summary['p50']:.6f} p95={summary['p95']:.6f} "
                  f"p99={summary['p99']:.6f}")
    if args.window is not None:
        history = system.obs.history
        history.capture()  # the freshest sample anchors the window
        summary = history.window_summary(window=args.window)
        print(f"\nwindowed rates, last {args.window:g}s "
              f"({summary['samples']} samples, "
              f"span {summary['span_seconds']:.1f}s):")
        for key, info in sorted(summary["keys"].items()):
            if "rate" in info:
                if info["rate"]:
                    print(f"  {key:<52s} {info['rate']:>10.3f}/s "
                          f"(total {info['last']:g})")
            else:
                print(f"  {key:<52s} last={info['last']:g} "
                      f"min={info['min']:g} max={info['max']:g}")
    system.close()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    system = _open(args)
    if args.format == "json":
        import json

        print(json.dumps(system.obs.metrics.snapshot(), indent=2, default=str))
    else:
        print(system.obs.metrics.render_text(), end="")
    system.close()
    return 0


def cmd_slowlog(args: argparse.Namespace) -> int:
    import json

    system = _open(args)
    entries = system.obs.slowlog.entries(name=args.name, limit=args.limit)
    if not entries:
        print("slow-op log is empty")
        system.close()
        return 0
    for entry in entries:
        attrs = ", ".join(
            f"{k}={v}" for k, v in sorted(entry["attributes"].items())
        )
        trace = entry.get("trace_id") or "-"
        print(f"{entry['ts']}  {entry['name']:<20s} "
              f"{entry['duration']:.6f}s (budget {entry['threshold']:g}s, "
              f"{entry.get('status', 'ok')})  trace={trace}  {attrs}")
        explain = entry.get("explain")
        if explain is not None:
            print(f"    explain: "
                  f"{json.dumps(explain, sort_keys=True, default=str)}")
    print(f"\n{len(entries)} shown, "
          f"{system.obs.slowlog.promoted} promoted in total")
    system.close()
    return 0


def cmd_debug_bundle(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import (
        collect_debug_bundle,
        validate_debug_bundle,
        write_debug_bundle,
    )

    system = _open(args)
    bundle = collect_debug_bundle(system, note=args.note)
    system.close()
    problems = validate_debug_bundle(bundle)
    out = Path(args.out) if args.out else Path(args.data) / "debug"
    path = write_debug_bundle(bundle, out)
    print(f"debug bundle written: {path}")
    print(f"traces={len(bundle['traces'])} "
          f"slow_ops={len(bundle['slow_ops'])} "
          f"history_samples={len(bundle['metrics_history'])} "
          f"log_records={len(bundle['log_tail'])}")
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}")
        return 1
    print(f"bundle validated against {bundle['schema']}")
    return 0


def cmd_integrity(args: argparse.Namespace) -> int:
    system = _open(args)
    problems = system.db.verify_integrity()
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}")
        system.close()
        return 1
    print("integrity check passed: no problems found")
    system.close()
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    system = _open(args)
    path = system.db.checkpoint()
    print(f"checkpoint written: {path}")
    system.close()
    return 0


def cmd_reindex(args: argparse.Namespace) -> int:
    system = _open(args)
    count = system.reindex_all()
    print(f"indexed {count} documents "
          f"({system.search.statistics()['terms']} terms)")
    system.close()
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    system = _open(args)
    for entry in system.audit.recent(limit=args.limit):
        print(f"{entry.at}  {entry.user_login:<12s} {entry.action:<7s} "
              f"{entry.entity_type}:{entry.entity_id}  {entry.summary}")
    system.close()
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    system = _open(args)
    system.reindex_all()
    principal = _principal(system, args.as_user)
    results = system.search.search(
        principal, " ".join(args.query), limit=args.limit
    )
    if not results:
        print("no results")
    for result in results:
        print(f"{result.score:8.4f}  {result.entity_type:<14s} "
              f"{result.label}  — {result.snippet}")
    system.close()
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.workload import DeploymentGenerator, FGCZ_JANUARY_2010

    system = _open(args)
    spec = FGCZ_JANUARY_2010.scaled(args.scale)
    counts = DeploymentGenerator(system, seed=args.seed).generate(spec)
    for key, value in counts.items():
        print(f"{key:<15s} {value}")
    system.db.checkpoint()
    system.close()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    system = _open(args)
    principal = _principal(system, args.as_user)
    report = system.reports.full_report(principal)
    print("Busiest projects:")
    for row in report["projects"]:
        print(f"  {row['project']:<40s} workunits={row['workunits']:<6d} "
              f"samples={row['samples']}")
    print("Storage by mode:")
    for mode, info in sorted(report["storage"].items()):
        print(f"  {mode:<10s} resources={info['resources']:<8d} "
              f"bytes={info['bytes']}")
    print("Vocabulary health:", dict(sorted(report["vocabulary"].items())))
    system.close()
    return 0


def cmd_provenance(args: argparse.Namespace) -> int:
    system = _open(args)
    record = system.provenance.trace(args.workunit_id)
    print(record.render_text())
    system.close()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks, write_report

    report = run_benchmarks(
        scale=args.scale, threads=args.threads, data_dir=args.data,
        max_shards=args.shards,
    )
    write_report(report, args.out)
    print(f"benchmark report written: {args.out}")
    return 0


def cmd_dlq(args: argparse.Namespace) -> int:
    system = _open(args)
    try:
        if args.dlq_command == "list":
            letters = system.dlq.list(
                status=None if args.all else "dead"
            )
            if not letters:
                print("dead-letter queue is empty")
                return 0
            for letter in letters:
                print(
                    f"#{letter.id:<5d} {letter.status:<9s} "
                    f"{letter.event:<28s} {letter.handler:<36s} "
                    f"attempts={letter.attempts}  {letter.error}"
                )
            return 0
        if args.dlq_command == "retry":
            if args.id is not None:
                try:
                    letter = system.dlq.retry(args.id, system.events)
                except Exception as exc:
                    print(f"retry of #{args.id} failed: {exc}")
                    return 1
                print(f"#{letter.id} redelivered ({letter.event})")
                return 0
            succeeded, failed = system.dlq.retry_all(system.events)
            print(f"retried: {succeeded} succeeded, {failed} failed")
            return 0 if failed == 0 else 1
        if args.dlq_command == "discard":
            letter = system.dlq.discard(args.id)
            print(f"#{letter.id} discarded ({letter.event})")
            return 0
        raise SystemExit(f"unknown dlq command {args.dlq_command!r}")
    finally:
        system.close()


def cmd_queue(args: argparse.Namespace) -> int:
    system = _open(args)
    try:
        if args.queue_command == "status":
            status = system.queue.status()
            states = status["states"]
            print(f"depth: {status['depth']} runnable "
                  f"(pending {states['pending']}, leased {states['leased']}, "
                  f"retry_wait {states['retry_wait']})")
            print(f"terminal: done {states['done']}, dead {states['dead']}")
            print(f"lease expirations: {status['lease_expirations']}")
            print(f"duplicates suppressed: {status['duplicates_suppressed']}")
            print(f"shed (backpressure): {status['shed']}")
            print(f"active workers: {status['active_workers']}")
            if status["per_type"]:
                print("per job type:")
                for job_type, counts in sorted(status["per_type"].items()):
                    parts = ", ".join(
                        f"{state} {count}"
                        for state, count in counts.items()
                        if count
                    )
                    print(f"  {job_type:<24s} {parts}")
            return 0
        if args.queue_command == "retry":
            if args.id is not None:
                try:
                    job = system.queue.retry_dead(args.id)
                except Exception as exc:
                    print(f"retry of job #{args.id} failed: {exc}")
                    return 1
                print(f"job #{job.id} ({job.job_type}) re-queued")
                return 0
            revived = system.queue.retry_all_dead()
            print(f"re-queued {revived} dead job(s)")
            return 0
        if args.queue_command == "drain":
            depth = system.queue.depth()
            if depth == 0:
                print("queue is empty — nothing to drain")
                return 0
            print(f"draining {depth} job(s) with {args.workers} worker(s)...")
            system.start_workers(workers=args.workers, name="drain")
            system.stop_workers(drain=True, timeout=args.timeout)
            remaining = system.queue.depth()
            dead = len(system.queue.list(state="dead"))
            print(f"done: {remaining} job(s) left runnable, {dead} dead")
            return 0 if remaining == 0 else 1
        raise SystemExit(f"unknown queue command {args.queue_command!r}")
    finally:
        system.close()


def cmd_torture(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.resilience.torture import run_replication_torture, run_torture

    # The driver creates its own throwaway databases under the
    # deployment directory; the deployment itself is never touched.
    base = Path(args.data) / "torture"
    if args.ingest:
        from repro.resilience.torture import run_ingest_torture

        report = run_ingest_torture(
            base / "ingest", jobs=args.jobs, seed=args.seed
        )
        print(report.summary())
        return 0 if report.ok else 1
    if args.shards:
        from repro.resilience.torture import run_shard_torture

        report = run_shard_torture(
            base / "sharded", shards=args.shards, seed=args.seed
        )
        print(report.summary())
        return 0 if report.ok else 1
    if args.replication:
        report = run_replication_torture(
            base / "replication",
            commits=max(args.commits, 20),
            seed=args.seed,
        )
        print(report.summary())
        return 0 if report.ok else 1
    kwargs = {}
    if args.mode:
        kwargs["modes"] = (args.mode,)
    report = run_torture(base, commits=args.commits, seed=args.seed, **kwargs)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_replicate(args: argparse.Namespace) -> int:
    import time

    from repro.replication import Replica, ReplicationPublisher

    if args.replicate_command == "status":
        system = _open(args)
        databases = list(getattr(system.db, "shards", None) or [system.db])
        for i, db in enumerate(databases):
            label = f"shard {i} " if len(databases) > 1 else ""
            seq, offset = db.replication_start_point()
            print(f"{label}committed seq:    {seq}")
            print(f"{label}WAL tail offset:  {offset} bytes")
        mvcc = system.db.statistics()["mvcc"]
        print(f"open snapshots:   {mvcc['open_snapshots']}")
        print(f"version horizon:  {mvcc['version_horizon']}")
        system.close()
        return 0

    if args.replicate_command == "promote":
        # Offline heal: turn an abandoned replica directory into a
        # writable primary.  Online promotion (a live Replica object)
        # goes through ReplicaSet.failover(); this verb covers the
        # process-per-node deployment where the replica process died.
        system = BFabric(args.data, durability=getattr(args, "durability", None))
        if system.db.wal is not None:
            system.db.wal.truncate_torn_tail()
        system.recover()
        problems = system.db.verify_integrity()
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}")
            system.close()
            return 1
        # Post-promotion commits are a new lineage: mint a fresh history
        # id so replicas of the dead primary bootstrap rather than
        # resume when they re-join this directory's publisher.
        system.db.new_history()
        system.db.checkpoint()
        seq = system.db.replication_start_point()[0]
        print(f"promoted: {args.data} is writable at commit seq {seq}")
        system.close()
        return 0

    if args.replicate_command == "serve":
        system = _open(args)
        system.reindex_all()
        system.obs.history.start()  # windowed lag/frame rates for stats
        # A sharded deployment ships each shard's WAL independently: one
        # publisher per shard on consecutive ports (port, port+1, ...),
        # each reusing the unchanged single-database protocol.
        databases = list(getattr(system.db, "shards", None) or [system.db])
        publishers = [
            ReplicationPublisher(
                db, host=args.host, port=args.port + i, obs=system.obs
            ).start()
            for i, db in enumerate(databases)
        ]
        for i, publisher in enumerate(publishers):
            label = f" (shard {i})" if len(publishers) > 1 else ""
            print(f"publishing WAL of {args.data}{label} "
                  f"on {publisher.host}:{publisher.port}")
        deadline = (
            time.monotonic() + args.duration if args.duration else None
        )
        try:
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        statuses = [publisher.status() for publisher in publishers]
        for publisher in publishers:
            publisher.stop()
        system.obs.history.stop()
        system.close()
        for i, status in enumerate(statuses):
            label = f"shard {i}: " if len(statuses) > 1 else ""
            print(f"{label}served seq {status['last_seq']} to "
                  f"{len(status['replicas'])} replica(s)")
        return 0

    if args.replicate_command == "join":
        host, _, port = args.primary.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(
                f"error: --primary must be host:port, got {args.primary!r}"
            )
        system = BFabric(args.data, durability=getattr(args, "durability", None))
        try:
            system.recover()
        except Exception:
            pass  # brand-new replica directory; bootstrap will fill it
        replica = Replica(
            system,
            (host, int(port)),
            name=args.name,
            max_lag=args.max_lag,
        ).start()
        print(f"replica {replica.name!r} following {host}:{port} "
              f"from seq {replica.applied_seq}")
        deadline = (
            time.monotonic() + args.duration if args.duration else None
        )
        try:
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.5)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        status = replica.status()
        replica.stop()
        system.close()
        print(f"applied seq {status['applied_seq']} "
              f"(lag {status['lag_seqs']}, connected={status['connected']})")
        return 0

    raise SystemExit(f"unknown replicate command {args.replicate_command!r}")


def cmd_maintenance(args: argparse.Namespace) -> int:
    system = _open(args)
    try:
        if args.maintenance_command == "prune":
            reclaimed = system.db.prune_versions()
            for name, count in sorted(reclaimed.items()):
                if count:
                    print(f"{name:<20s} {count}")
            total = sum(reclaimed.values())
            print(f"pruned {total} retained version(s) "
                  f"(horizon seq {system.db.version_horizon()})")
            return 0
        raise SystemExit(
            f"unknown maintenance command {args.maintenance_command!r}"
        )
    finally:
        system.close()


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.portal import PortalApplication

    system = _open(args)
    system.reindex_all()
    # Periodic registry sampling makes `repro stats --window` and
    # /admin/metrics/history meaningful for this portal session.
    system.obs.history.start()
    portal = PortalApplication(system)
    if args.legacy_wsgiref:
        from wsgiref.simple_server import make_server

        print(
            f"serving the B-Fabric portal on http://{args.host}:{args.port} "
            "(legacy wsgiref, single-threaded)"
        )
        with make_server(args.host, args.port, portal) as httpd:
            try:
                httpd.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                pass
    else:
        from repro.portal.server import PortalServer

        server = PortalServer(
            portal, args.host, args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            keep_alive=args.keep_alive,
        )
        server.start()
        print(
            f"serving the B-Fabric portal on http://{args.host}:{server.port} "
            f"({args.workers} workers, max {args.max_inflight} in flight)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            server.shutdown()
    system.obs.history.stop()
    system.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bfabric",
        description="Administer a B-Fabric deployment directory",
    )
    parser.add_argument(
        "--data", required=True, help="deployment directory (WAL + store)"
    )
    parser.add_argument(
        "--durability",
        default=None,
        help="WAL durability mode: always (default), "
        "group[:window_ms:max_batch], or buffered",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="create deployment + admin user")
    p_init.add_argument("--admin-login", default="admin")
    p_init.add_argument("--admin-password", default="admin")
    p_init.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the write path across N single-writer shards "
        "(persisted in the shard map; reopens keep the count)",
    )
    p_init.set_defaults(func=cmd_init)

    p_shard = sub.add_parser(
        "shard", help="sharded-deployment administration"
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)
    p_shard_status = shard_sub.add_parser(
        "status",
        help="shard map, placements, per-shard seq / WAL size / snapshots",
    )
    p_shard_status.set_defaults(func=cmd_shard)

    p_stats = sub.add_parser("stats", help="deployment statistics table")
    p_stats.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="also print windowed per-second rates from the metrics "
        "history ring (counters) and last/min/max (gauges)",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_metrics = sub.add_parser(
        "metrics", help="dump the observability metrics registry"
    )
    p_metrics.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text = Prometheus exposition, json = structured snapshot",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_slowlog = sub.add_parser(
        "slowlog", help="operations that blew their latency budget"
    )
    p_slowlog.add_argument(
        "--limit", type=int, default=50, help="newest N entries to show"
    )
    p_slowlog.add_argument(
        "--name", default=None,
        help="filter to one operation (e.g. storage.query)",
    )
    p_slowlog.set_defaults(func=cmd_slowlog)

    p_bundle = sub.add_parser(
        "debug-bundle",
        help="write the flight-recorder bundle as one JSON file",
    )
    p_bundle.add_argument(
        "--out", default=None, metavar="DIR",
        help="target directory (default: <data>/debug)",
    )
    p_bundle.add_argument(
        "--note", default="", help="free-form note stored in the bundle"
    )
    p_bundle.set_defaults(func=cmd_debug_bundle)

    p_integrity = sub.add_parser("integrity", help="storage self-checks")
    p_integrity.set_defaults(func=cmd_integrity)

    p_checkpoint = sub.add_parser("checkpoint", help="snapshot + truncate WAL")
    p_checkpoint.set_defaults(func=cmd_checkpoint)

    p_reindex = sub.add_parser("reindex", help="rebuild the search index")
    p_reindex.set_defaults(func=cmd_reindex)

    p_audit = sub.add_parser("audit", help="recent audit entries")
    p_audit.add_argument("--limit", type=int, default=20)
    p_audit.set_defaults(func=cmd_audit)

    p_search = sub.add_parser("search", help="run a search query")
    p_search.add_argument("query", nargs="+")
    p_search.add_argument("--as-user", default="admin")
    p_search.add_argument("--limit", type=int, default=10)
    p_search.set_defaults(func=cmd_search)

    p_generate = sub.add_parser(
        "generate", help="synthesize an FGCZ-scale deployment"
    )
    p_generate.add_argument("--scale", type=float, default=1.0)
    p_generate.add_argument("--seed", type=int, default=2010)
    p_generate.set_defaults(func=cmd_generate)

    p_report = sub.add_parser("report", help="facility usage report")
    p_report.add_argument("--as-user", default="admin")
    p_report.set_defaults(func=cmd_report)

    p_provenance = sub.add_parser(
        "provenance", help="derivation record of a workunit"
    )
    p_provenance.add_argument("workunit_id", type=int)
    p_provenance.set_defaults(func=cmd_provenance)

    p_bench = sub.add_parser(
        "bench", help="measure the storage hot paths, write a JSON report"
    )
    p_bench.add_argument(
        "--scale", type=float, default=1.0,
        help="workload multiplier (CI smoke uses ~0.1)",
    )
    p_bench.add_argument(
        "--threads", type=int, default=48,
        help="concurrent committers for the group-commit comparison",
    )
    p_bench.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="largest shard count in the sharded-commit scaling section",
    )
    p_bench.add_argument("--out", default="BENCH_PR8.json")
    p_bench.set_defaults(func=cmd_bench)

    p_dlq = sub.add_parser(
        "dlq", help="inspect and replay the event dead-letter queue"
    )
    dlq_sub = p_dlq.add_subparsers(dest="dlq_command", required=True)
    p_dlq_list = dlq_sub.add_parser("list", help="show dead letters")
    p_dlq_list.add_argument(
        "--all", action="store_true",
        help="include retried and discarded letters",
    )
    p_dlq_list.set_defaults(func=cmd_dlq)
    p_dlq_retry = dlq_sub.add_parser(
        "retry", help="redeliver one letter (or every dead one)"
    )
    p_dlq_retry.add_argument(
        "id", type=int, nargs="?", default=None,
        help="letter id; omit to retry all dead letters",
    )
    p_dlq_retry.set_defaults(func=cmd_dlq)
    p_dlq_discard = dlq_sub.add_parser("discard", help="drop one letter")
    p_dlq_discard.add_argument("id", type=int)
    p_dlq_discard.set_defaults(func=cmd_dlq)

    p_queue = sub.add_parser(
        "queue", help="inspect and operate the durable job queue"
    )
    queue_sub = p_queue.add_subparsers(dest="queue_command", required=True)
    p_queue_status = queue_sub.add_parser(
        "status", help="backlog depth, per-state and per-type counts"
    )
    p_queue_status.set_defaults(func=cmd_queue)
    p_queue_retry = queue_sub.add_parser(
        "retry", help="re-queue one dead job (or every dead one)"
    )
    p_queue_retry.add_argument(
        "id", type=int, nargs="?", default=None,
        help="job id; omit to retry all dead jobs",
    )
    p_queue_retry.set_defaults(func=cmd_queue)
    p_queue_drain = queue_sub.add_parser(
        "drain", help="run workers until the backlog is empty, then stop"
    )
    p_queue_drain.add_argument("--workers", type=int, default=2)
    p_queue_drain.add_argument("--timeout", type=float, default=300.0)
    p_queue_drain.set_defaults(func=cmd_queue)

    p_torture = sub.add_parser(
        "torture",
        help="crash-point torture: kill the WAL at every fault site, "
        "verify recovery in all durability modes",
    )
    p_torture.add_argument("--commits", type=int, default=6)
    p_torture.add_argument("--seed", type=int, default=2010)
    p_torture.add_argument(
        "--ingest",
        action="store_true",
        help="run the ingest scenario instead: kill queue workers at "
        "every lease-protocol fault site mid-import (plus a full "
        "database restart), verify no job is lost and no import's "
        "effects are applied twice",
    )
    p_torture.add_argument(
        "--jobs", type=int, default=4,
        help="import jobs per ingest-torture case",
    )
    p_torture.add_argument(
        "--mode",
        default=None,
        help="restrict to one durability mode (e.g. always, group:4:32, "
        "buffered); default runs all modes",
    )
    p_torture.add_argument(
        "--replication",
        action="store_true",
        help="run the replication scenario instead: kill the primary "
        "mid-stream, promote the most-caught-up replica, verify no "
        "confirmed commit is lost",
    )
    p_torture.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the cross-shard scenario instead: kill a 2PC commit "
        "at every crash point across N shards, verify deterministic "
        "in-doubt resolution",
    )
    p_torture.set_defaults(func=cmd_torture)

    p_replicate = sub.add_parser(
        "replicate", help="WAL-shipping replication: publish, follow, promote"
    )
    rep_sub = p_replicate.add_subparsers(dest="replicate_command", required=True)
    p_rep_serve = rep_sub.add_parser(
        "serve", help="publish this deployment's WAL to replicas"
    )
    p_rep_serve.add_argument("--host", default="127.0.0.1")
    p_rep_serve.add_argument("--port", type=int, default=9443)
    p_rep_serve.add_argument(
        "--duration", type=float, default=None,
        help="stop after N seconds (default: run until interrupted)",
    )
    p_rep_serve.set_defaults(func=cmd_replicate)
    p_rep_join = rep_sub.add_parser(
        "join", help="follow a primary as a read-only replica"
    )
    p_rep_join.add_argument(
        "--primary", required=True, metavar="HOST:PORT",
        help="address of the primary's replicate-serve endpoint",
    )
    p_rep_join.add_argument("--name", default="replica")
    p_rep_join.add_argument(
        "--max-lag", type=int, default=None,
        help="staleness bound in commit sequences for local reads",
    )
    p_rep_join.add_argument(
        "--duration", type=float, default=None,
        help="stop after N seconds (default: run until interrupted)",
    )
    p_rep_join.set_defaults(func=cmd_replicate)
    p_rep_status = rep_sub.add_parser(
        "status", help="local replication position of this deployment"
    )
    p_rep_status.set_defaults(func=cmd_replicate)
    p_rep_promote = rep_sub.add_parser(
        "promote", help="heal a replica directory into a writable primary"
    )
    p_rep_promote.set_defaults(func=cmd_replicate)

    p_maint = sub.add_parser("maintenance", help="housekeeping tasks")
    maint_sub = p_maint.add_subparsers(dest="maintenance_command", required=True)
    p_maint_prune = maint_sub.add_parser(
        "prune", help="sweep MVCC version chains up to the horizon"
    )
    p_maint_prune.set_defaults(func=cmd_maintenance)

    p_serve = sub.add_parser("serve", help="run the web portal")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--workers", type=int, default=8,
        help="request worker threads (default 8)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="concurrent requests before shedding 503s (default 64)",
    )
    p_serve.add_argument(
        "--keep-alive", type=float, default=5.0, metavar="SECONDS",
        help="idle keep-alive timeout (default 5s)",
    )
    p_serve.add_argument(
        "--legacy-wsgiref", action="store_true",
        help="serve single-threaded via wsgiref (escape hatch)",
    )
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
