"""The B-Fabric core: Figure-1 metadata schema and registration services.

Entities (paper Figure 1 + Final Remark):

* :class:`~repro.core.entities.Organization` / :class:`~repro.core.entities.Institute`
  / :class:`~repro.core.entities.User` — who works at/with the center;
* :class:`~repro.core.entities.Project` — the scoping unit for samples
  and visibility;
* :class:`~repro.core.entities.Sample` — general information about a
  biological source;
* :class:`~repro.core.entities.Extract` — one extraction of a sample,
  the actual experiment/measurement input (several per sample);
* :class:`~repro.core.entities.DataResource` — abstraction of a file or
  link to a file (raw mass-spec files, cel files, ...);
* :class:`~repro.core.entities.Workunit` — a container referencing data
  resources that logically form a unit; some resources are marked as
  inputs of the processing step that created the rest;
* :class:`~repro.core.entities.Application` /
  :class:`~repro.core.entities.Experiment` — registered external
  applications and experiment definitions that feed them.

Services in :mod:`repro.core.services` wrap the entities with
validation, cloning, batch registration, access control, and audit.
"""

from repro.core.entities import (
    ALL_MODELS,
    Application,
    DataResource,
    Experiment,
    Extract,
    Institute,
    Organization,
    Project,
    ProjectMembership,
    Sample,
    User,
    Workunit,
)

__all__ = [
    "ALL_MODELS",
    "Organization",
    "Institute",
    "User",
    "Project",
    "ProjectMembership",
    "Sample",
    "Extract",
    "DataResource",
    "Workunit",
    "Application",
    "Experiment",
]
