"""Declarative entities for the core metadata schema (paper Figure 1).

Relationship chain, as the paper draws it::

    Project 1──n Sample 1──n Extract 1──n DataResource n──1 Workunit

A data resource is connected to the extract that was the biological input
of the measurement producing it; samples (and through them extracts) hang
off a project, which "helps to significantly reduce the set of values in
drop-down menus".  Workunits group resources that logically form a unit,
with some resources flagged ``is_input``.
"""

from __future__ import annotations

from repro.orm import (
    BoolField,
    DateTimeField,
    IntField,
    JsonField,
    Model,
    TextField,
)

#: Workunit lifecycle states.  An import or application run creates the
#: workunit in ``pending``; the executor moves it through ``processing``
#: to ``available`` (paper Figure 16: "Ready") or ``failed``.
WORKUNIT_STATES = ("pending", "processing", "available", "failed")

#: How a data resource's bytes are held (paper: physically copying vs.
#: linking, internal storage vs. attached external stores).
RESOURCE_STORAGE_MODES = ("internal", "linked", "external")


class Organization(Model):
    """A customer organization (university, company...)."""

    __table__ = "organization"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, unique=True)
    created_at = DateTimeField()


class Institute(Model):
    """An institute within an organization; users belong to institutes."""

    __table__ = "institute"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    organization_id = IntField(nullable=False, foreign_key="organization.id")
    __unique_together__ = [("name", "organization_id")]
    created_at = DateTimeField()


class User(Model):
    """A registered user of the center."""

    __table__ = "user"
    id = IntField(primary_key=True)
    login = TextField(nullable=False, unique=True)
    full_name = TextField(nullable=False)
    email = TextField(default="")
    institute_id = IntField(foreign_key="institute.id")
    role = TextField(
        nullable=False,
        default="scientist",
        check=lambda v: v in ("scientist", "employee", "admin"),
    )
    password_hash = TextField(default="")
    active = BoolField(default=True)
    created_at = DateTimeField()


class Project(Model):
    """The scoping unit: samples, workunits and visibility hang off it."""

    __table__ = "project"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    description = TextField(default="")
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()


class ProjectMembership(Model):
    """Grants a user access to a project (role: member or leader)."""

    __table__ = "project_membership"
    id = IntField(primary_key=True)
    user_id = IntField(nullable=False, foreign_key="user.id")
    project_id = IntField(nullable=False, foreign_key="project.id")
    role = TextField(
        nullable=False,
        default="member",
        check=lambda v: v in ("member", "leader"),
    )
    __unique_together__ = [("user_id", "project_id")]


class Sample(Model):
    """General information about a biological source (paper Figure 2)."""

    __table__ = "sample"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    project_id = IntField(nullable=False, foreign_key="project.id")
    species = TextField(default="")
    description = TextField(default="")
    #: Free-form structured annotations beyond the controlled vocabulary
    #: links (e.g. instrument-specific fields drawn dynamically).
    attributes = JsonField(default=dict)
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()
    __unique_together__ = [("name", "project_id")]


class Extract(Model):
    """One extraction of a sample; the actual measurement input.

    Paper: "There might be several extracts of one sample.  These
    extracts might be the result of different extraction procedures."
    """

    __table__ = "extract"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    sample_id = IntField(nullable=False, foreign_key="sample.id")
    procedure = TextField(default="")
    description = TextField(default="")
    attributes = JsonField(default=dict)
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()
    __unique_together__ = [("name", "sample_id")]


class Application(Model):
    """A registered external application (paper Figure 12).

    ``connector`` names the connector type it runs through (e.g.
    ``rserve``); ``interface`` is the small declarative description of
    how the application gets its input.
    """

    __table__ = "application"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, unique=True)
    description = TextField(default="")
    connector = TextField(nullable=False)
    #: Interface definition: input kinds, declared parameters, output
    #: description.  Validated by the application registry.
    interface = JsonField(default=dict)
    executable = TextField(default="")
    active = BoolField(default=True)
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()


class Workunit(Model):
    """A container of data resources that logically form a unit.

    Created by a data import (Figure 9) or by running an application
    (Figure 14).  ``application_id`` is set for application results;
    ``parameters`` holds the run parameters (e.g. reference group).
    """

    __table__ = "workunit"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    project_id = IntField(nullable=False, foreign_key="project.id")
    application_id = IntField(foreign_key="application.id")
    description = TextField(default="")
    status = TextField(
        nullable=False,
        default="pending",
        check=lambda v: v in WORKUNIT_STATES,
    )
    parameters = JsonField(default=dict)
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()


class DataResource(Model):
    """Abstraction of a file or a link to a file (paper Figure 1).

    ``is_input`` marks resources that were inputs of the processing step
    that created the remaining resources of the workunit.
    """

    __table__ = "data_resource"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    workunit_id = IntField(nullable=False, foreign_key="workunit.id")
    extract_id = IntField(foreign_key="extract.id")
    uri = TextField(nullable=False)
    storage = TextField(
        nullable=False,
        default="internal",
        check=lambda v: v in RESOURCE_STORAGE_MODES,
    )
    size_bytes = IntField(default=0, check=lambda v: v >= 0)
    checksum = TextField(default="")
    is_input = BoolField(default=False)
    created_at = DateTimeField()


class Experiment(Model):
    """An experiment definition (paper Figure 13).

    Selects data resources, samples, extracts and arbitrary attributes
    (e.g. species, treatment) that feed a registered application.  The
    id lists are validated against the project by the experiment
    service; they are stored denormalized because the selection is an
    immutable snapshot of what the scientist picked.
    """

    __table__ = "experiment"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    project_id = IntField(nullable=False, foreign_key="project.id")
    application_id = IntField(nullable=False, foreign_key="application.id")
    resource_ids = JsonField(default=list)
    sample_ids = JsonField(default=list)
    extract_ids = JsonField(default=list)
    #: Arbitrary attribute name -> value pairs, e.g.
    #: ``{"species": "Arabidopsis Thaliana", "treatment": "light"}``.
    attributes = JsonField(default=dict)
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()


#: Registration order is irrelevant (the registry topo-sorts), but this
#: is the canonical list of core models.
ALL_MODELS = [
    Organization,
    Institute,
    User,
    Project,
    ProjectMembership,
    Sample,
    Extract,
    Application,
    Workunit,
    DataResource,
    Experiment,
]
