"""Service layer over the core entities.

Services take the acting :class:`~repro.security.principals.Principal`
explicitly, enforce access control, validate input, write audit entries
and publish events.  They are the only code the portal and the examples
call; nothing above this layer touches the storage engine directly.
"""

from repro.core.services.directory import DirectoryService
from repro.core.services.projects import ProjectService
from repro.core.services.samples import SampleService
from repro.core.services.workunits import WorkunitService

__all__ = [
    "DirectoryService",
    "ProjectService",
    "SampleService",
    "WorkunitService",
]
