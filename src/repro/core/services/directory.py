"""Organizations, institutes and users."""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.core.entities import Institute, Organization, User
from repro.errors import AccessDenied, ValidationError
from repro.orm import Registry
from repro.security.auth import hash_password
from repro.security.principals import Principal, Role
from repro.util.clock import Clock, SystemClock
from repro.util.text import normalize_whitespace


class DirectoryService:
    """Who exists: organizations > institutes > users."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        clock: Clock | None = None,
    ):
        self._audit = audit
        self._clock = clock or SystemClock()
        self._organizations = registry.repository(Organization)
        self._institutes = registry.repository(Institute)
        self._users = registry.repository(User)

    # -- organizations ------------------------------------------------------------

    def create_organization(self, principal: Principal, name: str) -> Organization:
        self._require_admin(principal, "create organizations")
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("organization name required", {"name": "required"})
        organization = self._organizations.create(
            name=name, created_at=self._clock.now()
        )
        self._audit.record(
            principal, "create", "organization", organization.id, name
        )
        return organization

    def organizations(self) -> list[Organization]:
        return self._organizations.query().order_by("name").all()

    # -- institutes -----------------------------------------------------------------

    def create_institute(
        self, principal: Principal, name: str, organization_id: int
    ) -> Institute:
        self._require_admin(principal, "create institutes")
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("institute name required", {"name": "required"})
        institute = self._institutes.create(
            name=name,
            organization_id=organization_id,
            created_at=self._clock.now(),
        )
        self._audit.record(principal, "create", "institute", institute.id, name)
        return institute

    def institutes_of(self, organization_id: int) -> list[Institute]:
        return (
            self._institutes.query()
            .where("organization_id", "=", organization_id)
            .order_by("name")
            .all()
        )

    # -- users ------------------------------------------------------------------------

    def create_user(
        self,
        principal: Principal,
        *,
        login: str,
        full_name: str,
        email: str = "",
        institute_id: int | None = None,
        role: str = "scientist",
        password: str = "",
    ) -> User:
        self._require_admin(principal, "create users")
        login = normalize_whitespace(login).lower()
        errors: dict[str, str] = {}
        if not login:
            errors["login"] = "required"
        if not normalize_whitespace(full_name):
            errors["full_name"] = "required"
        if role not in ("scientist", "employee", "admin"):
            errors["role"] = f"unknown role {role!r}"
        if email and "@" not in email:
            errors["email"] = "not an email address"
        if errors:
            raise ValidationError("invalid user", errors)
        user = self._users.create(
            login=login,
            full_name=normalize_whitespace(full_name),
            email=email,
            institute_id=institute_id,
            role=role,
            password_hash=hash_password(password) if password else "",
            created_at=self._clock.now(),
        )
        self._audit.record(principal, "create", "user", user.id, login)
        return user

    def deactivate_user(self, principal: Principal, user_id: int) -> User:
        self._require_admin(principal, "deactivate users")
        user = self._users.update(user_id, active=False)
        self._audit.record(
            principal, "update", "user", user_id, f"deactivated {user.login}"
        )
        return user

    def set_password(self, principal: Principal, user_id: int, password: str) -> None:
        if principal.user_id != user_id:
            self._require_admin(principal, "reset other users' passwords")
        if len(password) < 4:
            raise ValidationError(
                "password too short", {"password": "minimum 4 characters"}
            )
        self._users.update(user_id, password_hash=hash_password(password))
        self._audit.record(
            principal, "update", "user", user_id, "password changed"
        )

    def user_by_login(self, login: str) -> User | None:
        return self._users.find_one(login=login.lower())

    def principal_for(self, user: User) -> Principal:
        """Build the acting principal for a stored user."""
        return Principal(user_id=user.id, login=user.login, role=Role(user.role))

    def counts(self) -> dict[str, int]:
        """Directory object counts (the Final-Remark table's left column)."""
        return {
            "users": self._users.count(),
            "institutes": self._institutes.count(),
            "organizations": self._organizations.count(),
        }

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _require_admin(principal: Principal, what: str) -> None:
        if not principal.is_admin:
            raise AccessDenied(
                f"only admins may {what}",
                principal=principal.login,
                permission="directory.admin",
            )
