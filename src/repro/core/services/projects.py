"""Projects and membership."""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.core.entities import Project, ProjectMembership
from repro.errors import ValidationError
from repro.orm import Registry
from repro.security.acl import AccessControl, Permission
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.text import normalize_whitespace


class ProjectService:
    """Create projects and manage who belongs to them."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        acl: AccessControl,
        events: EventBus | None = None,
        clock: Clock | None = None,
    ):
        self._audit = audit
        self._acl = acl
        self._events = events or EventBus()
        self._clock = clock or SystemClock()
        self._projects = registry.repository(Project)
        self._memberships = registry.repository(ProjectMembership)

    def create(
        self, principal: Principal, name: str, *, description: str = ""
    ) -> Project:
        """Create a project; the creator becomes its leader."""
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("project name required", {"name": "required"})
        project = self._projects.create(
            name=name,
            description=description,
            created_by=principal.user_id,
            created_at=self._clock.now(),
        )
        self._acl.grant(project.id, principal.user_id, "leader")
        self._audit.record(principal, "create", "project", project.id, name)
        self._events.publish(
            "project.created", project=project, principal=principal
        )
        return project

    def get(self, principal: Principal, project_id: int) -> Project:
        self._acl.require(principal, Permission.READ, project_id)
        return self._projects.get(project_id)

    def visible_to(self, principal: Principal) -> list[Project]:
        """Projects the principal can read, for browse lists."""
        ids = self._acl.visible_project_ids(principal)
        return (
            self._projects.query().where("id", "in", ids).order_by("name").all()
        )

    def add_member(
        self,
        principal: Principal,
        project_id: int,
        user_id: int,
        role: str = "member",
    ) -> None:
        self._acl.require(principal, Permission.MANAGE, project_id)
        self._acl.grant(project_id, user_id, role)
        self._audit.record(
            principal, "update", "project", project_id,
            f"added user {user_id} as {role}",
        )

    def remove_member(
        self, principal: Principal, project_id: int, user_id: int
    ) -> bool:
        self._acl.require(principal, Permission.MANAGE, project_id)
        removed = self._acl.revoke(project_id, user_id)
        if removed:
            self._audit.record(
                principal, "update", "project", project_id,
                f"removed user {user_id}",
            )
        return removed

    def members(self, principal: Principal, project_id: int) -> list[ProjectMembership]:
        self._acl.require(principal, Permission.READ, project_id)
        return self._memberships.find(project_id=project_id)

    def count(self) -> int:
        return self._projects.count()
