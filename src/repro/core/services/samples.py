"""Sample and extract registration (paper Figures 2 and 3).

Registration supports the three entry styles the demo shows:

* single registration through a validated form, with drop-down values
  drawn from the released vocabulary and the option to create a missing
  annotation on the fly;
* *cloning* — "users typically register several samples and extracts
  where only a few attributes differ";
* *batch registration* — many names, one shared attribute set.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.annotations.service import AnnotationService
from repro.audit.log import AuditLog
from repro.core.entities import Extract, Sample
from repro.errors import EntityNotFound, ValidationError
from repro.orm import Registry
from repro.security.acl import AccessControl, Permission
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.text import normalize_whitespace


class SampleService:
    """Registers samples and extracts within a project."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        acl: AccessControl,
        annotations: AnnotationService,
        events: EventBus,
        clock: Clock | None = None,
    ):
        self._registry = registry
        self._audit = audit
        self._acl = acl
        self._annotations = annotations
        self._events = events
        self._clock = clock or SystemClock()
        self._samples = registry.repository(Sample)
        self._extracts = registry.repository(Extract)

    # -- samples -----------------------------------------------------------------

    def register_sample(
        self,
        principal: Principal,
        project_id: int,
        name: str,
        *,
        species: str = "",
        description: str = "",
        attributes: dict[str, Any] | None = None,
        annotation_ids: Sequence[int] = (),
    ) -> Sample:
        """Register one sample (Figure 2).

        ``annotation_ids`` are controlled-vocabulary values to attach;
        creating a *new* vocabulary value happens through
        :meth:`AnnotationService.create_annotation` first — the form
        layer wires the two together.
        """
        self._acl.require(principal, Permission.WRITE, project_id)
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("sample name required", {"name": "required"})
        if self._samples.find_one(name=name, project_id=project_id) is not None:
            raise ValidationError(
                f"sample {name!r} already exists in project {project_id}",
                {"name": "duplicate"},
            )
        sample = self._samples.create(
            name=name,
            project_id=project_id,
            species=normalize_whitespace(species),
            description=description,
            attributes=attributes or {},
            created_by=principal.user_id,
            created_at=self._clock.now(),
        )
        for annotation_id in annotation_ids:
            self._annotations.annotate(principal, annotation_id, "sample", sample.id)
        self._audit.record(principal, "create", "sample", sample.id, name)
        self._events.publish("sample.registered", sample=sample, principal=principal)
        return sample

    def clone_sample(
        self,
        principal: Principal,
        sample_id: int,
        new_name: str,
        *,
        overrides: dict[str, Any] | None = None,
    ) -> Sample:
        """Register a copy of a sample differing only in *overrides*."""
        original = self._samples.get_or_none(sample_id)
        if original is None:
            raise EntityNotFound("Sample", sample_id)
        overrides = dict(overrides or {})
        clone = self.register_sample(
            principal,
            overrides.pop("project_id", original.project_id),
            new_name,
            species=overrides.pop("species", original.species),
            description=overrides.pop("description", original.description),
            attributes={**original.attributes, **overrides.pop("attributes", {})},
        )
        if overrides:
            raise ValidationError(
                f"unknown clone override(s): {sorted(overrides)}"
            )
        # The clone inherits the original's vocabulary annotations.
        for annotation in self._annotations.annotations_for("sample", sample_id):
            self._annotations.annotate(principal, annotation.id, "sample", clone.id)
        return clone

    def batch_register_samples(
        self,
        principal: Principal,
        project_id: int,
        names: Sequence[str],
        *,
        species: str = "",
        attributes: dict[str, Any] | None = None,
        annotation_ids: Sequence[int] = (),
    ) -> list[Sample]:
        """Register many samples sharing one attribute set, atomically.

        All-or-nothing: one duplicate name aborts the whole batch — that
        is what makes batch registration safe to re-run.
        """
        self._acl.require(principal, Permission.WRITE, project_id)
        cleaned = [normalize_whitespace(n) for n in names]
        if not cleaned or any(not n for n in cleaned):
            raise ValidationError("every sample in a batch needs a name")
        if len(set(cleaned)) != len(cleaned):
            raise ValidationError("duplicate names within the batch")
        created: list[Sample] = []
        db = self._registry.database
        with db.transaction() as txn:
            for name in cleaned:
                if self._samples.find_one(name=name, project_id=project_id):
                    raise ValidationError(
                        f"sample {name!r} already exists in project {project_id}"
                    )
                row = txn.insert(
                    Sample.__table__,
                    {
                        "name": name,
                        "project_id": project_id,
                        "species": normalize_whitespace(species),
                        "description": "",
                        "attributes": attributes or {},
                        "created_by": principal.user_id,
                        "created_at": self._clock.now(),
                    },
                )
                created.append(Sample.from_row(row))
        for sample in created:
            for annotation_id in annotation_ids:
                self._annotations.annotate(
                    principal, annotation_id, "sample", sample.id
                )
            self._audit.record(
                principal, "create", "sample", sample.id, sample.name
            )
            self._events.publish(
                "sample.registered", sample=sample, principal=principal
            )
        return created

    def samples_of_project(
        self, principal: Principal, project_id: int
    ) -> list[Sample]:
        self._acl.require(principal, Permission.READ, project_id)
        return (
            self._samples.query()
            .where("project_id", "=", project_id)
            .order_by("name")
            .all()
        )

    def get_sample(self, principal: Principal, sample_id: int) -> Sample:
        sample = self._samples.get_or_none(sample_id)
        if sample is None:
            raise EntityNotFound("Sample", sample_id)
        self._acl.require(principal, Permission.READ, sample.project_id)
        return sample

    # -- extracts --------------------------------------------------------------------

    def register_extract(
        self,
        principal: Principal,
        sample_id: int,
        name: str,
        *,
        procedure: str = "",
        description: str = "",
        attributes: dict[str, Any] | None = None,
        annotation_ids: Sequence[int] = (),
    ) -> Extract:
        """Register one extract of a sample (Figure 3)."""
        sample = self.get_sample(principal, sample_id)
        self._acl.require(principal, Permission.WRITE, sample.project_id)
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("extract name required", {"name": "required"})
        if self._extracts.find_one(name=name, sample_id=sample_id) is not None:
            raise ValidationError(
                f"extract {name!r} already exists for sample {sample_id}",
                {"name": "duplicate"},
            )
        extract = self._extracts.create(
            name=name,
            sample_id=sample_id,
            procedure=normalize_whitespace(procedure),
            description=description,
            attributes=attributes or {},
            created_by=principal.user_id,
            created_at=self._clock.now(),
        )
        for annotation_id in annotation_ids:
            self._annotations.annotate(
                principal, annotation_id, "extract", extract.id
            )
        self._audit.record(principal, "create", "extract", extract.id, name)
        self._events.publish(
            "extract.registered", extract=extract, principal=principal
        )
        return extract

    def clone_extract(
        self,
        principal: Principal,
        extract_id: int,
        new_name: str,
        *,
        overrides: dict[str, Any] | None = None,
    ) -> Extract:
        original = self._extracts.get_or_none(extract_id)
        if original is None:
            raise EntityNotFound("Extract", extract_id)
        overrides = dict(overrides or {})
        clone = self.register_extract(
            principal,
            overrides.pop("sample_id", original.sample_id),
            new_name,
            procedure=overrides.pop("procedure", original.procedure),
            description=overrides.pop("description", original.description),
            attributes={**original.attributes, **overrides.pop("attributes", {})},
        )
        if overrides:
            raise ValidationError(
                f"unknown clone override(s): {sorted(overrides)}"
            )
        for annotation in self._annotations.annotations_for("extract", extract_id):
            self._annotations.annotate(
                principal, annotation.id, "extract", clone.id
            )
        return clone

    def batch_register_extracts(
        self,
        principal: Principal,
        sample_id: int,
        names: Sequence[str],
        *,
        procedure: str = "",
        attributes: dict[str, Any] | None = None,
    ) -> list[Extract]:
        """Register many extracts of one sample, atomically."""
        sample = self.get_sample(principal, sample_id)
        self._acl.require(principal, Permission.WRITE, sample.project_id)
        cleaned = [normalize_whitespace(n) for n in names]
        if not cleaned or any(not n for n in cleaned):
            raise ValidationError("every extract in a batch needs a name")
        if len(set(cleaned)) != len(cleaned):
            raise ValidationError("duplicate names within the batch")
        created: list[Extract] = []
        db = self._registry.database
        with db.transaction() as txn:
            for name in cleaned:
                if self._extracts.find_one(name=name, sample_id=sample_id):
                    raise ValidationError(
                        f"extract {name!r} already exists for sample {sample_id}"
                    )
                row = txn.insert(
                    Extract.__table__,
                    {
                        "name": name,
                        "sample_id": sample_id,
                        "procedure": normalize_whitespace(procedure),
                        "description": "",
                        "attributes": attributes or {},
                        "created_by": principal.user_id,
                        "created_at": self._clock.now(),
                    },
                )
                created.append(Extract.from_row(row))
        for extract in created:
            self._audit.record(
                principal, "create", "extract", extract.id, extract.name
            )
            self._events.publish(
                "extract.registered", extract=extract, principal=principal
            )
        return created

    def extracts_of_sample(
        self, principal: Principal, sample_id: int
    ) -> list[Extract]:
        self.get_sample(principal, sample_id)  # access check
        return (
            self._extracts.query()
            .where("sample_id", "=", sample_id)
            .order_by("name")
            .all()
        )

    def extracts_of_project(
        self, principal: Principal, project_id: int
    ) -> list[Extract]:
        """Every extract reachable through the project's samples.

        This is the "project association significantly reduces drop-down
        menus" path (paper §1): forms assigning extracts only offer the
        current project's extracts.
        """
        self._acl.require(principal, Permission.READ, project_id)
        sample_ids = (
            self._samples.query()
            .where("project_id", "=", project_id)
            .pks()
        )
        if not sample_ids:
            return []
        return (
            self._extracts.query()
            .where("sample_id", "in", sample_ids)
            .order_by("name")
            .all()
        )

    def get_extract(self, principal: Principal, extract_id: int) -> Extract:
        extract = self._extracts.get_or_none(extract_id)
        if extract is None:
            raise EntityNotFound("Extract", extract_id)
        self.get_sample(principal, extract.sample_id)  # access check
        return extract

    def counts(self) -> dict[str, int]:
        return {
            "samples": self._samples.count(),
            "extracts": self._extracts.count(),
        }
