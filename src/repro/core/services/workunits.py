"""Workunits and their data resources.

A workunit is "a container referencing data resources that logically
form a unit" — the result of an experiment, a measurement, an analysis,
a search, whatever the scientist decides.  Resources flagged
``is_input`` were the inputs of the processing step that created the
remaining resources.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.audit.log import AuditLog
from repro.core.entities import DataResource, Workunit, WORKUNIT_STATES
from repro.errors import EntityNotFound, StateError, ValidationError
from repro.orm import Registry
from repro.security.acl import AccessControl, Permission
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.text import normalize_whitespace

#: Legal status transitions of a workunit.
_TRANSITIONS = {
    "pending": {"processing", "available", "failed"},
    "processing": {"available", "failed"},
    "available": set(),
    "failed": {"pending"},  # retry
}


class WorkunitService:
    """Creates workunits and manages their resources and lifecycle."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        acl: AccessControl,
        events: EventBus,
        clock: Clock | None = None,
    ):
        self._registry = registry
        self._audit = audit
        self._acl = acl
        self._events = events
        self._clock = clock or SystemClock()
        self._workunits = registry.repository(Workunit)
        self._resources = registry.repository(DataResource)

    # -- creation ------------------------------------------------------------------

    def create(
        self,
        principal: Principal,
        project_id: int,
        name: str,
        *,
        description: str = "",
        application_id: int | None = None,
        parameters: dict[str, Any] | None = None,
        status: str = "pending",
    ) -> Workunit:
        self._acl.require(principal, Permission.WRITE, project_id)
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("workunit name required", {"name": "required"})
        if status not in WORKUNIT_STATES:
            raise ValidationError(f"unknown workunit status {status!r}")
        workunit = self._workunits.create(
            name=name,
            project_id=project_id,
            application_id=application_id,
            description=description,
            parameters=parameters or {},
            status=status,
            created_by=principal.user_id,
            created_at=self._clock.now(),
        )
        self._audit.record(principal, "create", "workunit", workunit.id, name)
        self._events.publish(
            "workunit.created", workunit=workunit, principal=principal
        )
        return workunit

    def get(self, principal: Principal, workunit_id: int) -> Workunit:
        workunit = self._workunits.get_or_none(workunit_id)
        if workunit is None:
            raise EntityNotFound("Workunit", workunit_id)
        self._acl.require(principal, Permission.READ, workunit.project_id)
        return workunit

    def of_project(self, principal: Principal, project_id: int) -> list[Workunit]:
        self._acl.require(principal, Permission.READ, project_id)
        return (
            self._workunits.query()
            .where("project_id", "=", project_id)
            .order_by("id")
            .all()
        )

    # -- resources ------------------------------------------------------------------

    def add_resource(
        self,
        principal: Principal,
        workunit_id: int,
        name: str,
        uri: str,
        *,
        storage: str = "internal",
        size_bytes: int = 0,
        checksum: str = "",
        extract_id: int | None = None,
        is_input: bool = False,
    ) -> DataResource:
        workunit = self.get(principal, workunit_id)
        self._acl.require(principal, Permission.WRITE, workunit.project_id)
        name = normalize_whitespace(name)
        if not name:
            raise ValidationError("resource name required", {"name": "required"})
        if not uri:
            raise ValidationError("resource uri required", {"uri": "required"})
        resource = self._resources.create(
            name=name,
            workunit_id=workunit_id,
            extract_id=extract_id,
            uri=uri,
            storage=storage,
            size_bytes=size_bytes,
            checksum=checksum,
            is_input=is_input,
            created_at=self._clock.now(),
        )
        self._audit.record(
            principal, "create", "data_resource", resource.id, name
        )
        self._events.publish(
            "resource.added", resource=resource, workunit=workunit,
            principal=principal,
        )
        return resource

    def resources_of(
        self, principal: Principal, workunit_id: int, *, inputs: bool | None = None
    ) -> list[DataResource]:
        self.get(principal, workunit_id)  # access check
        query = (
            self._resources.query()
            .where("workunit_id", "=", workunit_id)
            .order_by("id")
        )
        if inputs is not None:
            query.where("is_input", "=", inputs)
        return query.all()

    def assign_extract(
        self,
        principal: Principal,
        resource_id: int,
        extract_id: int | None,
    ) -> DataResource:
        """Connect a data resource to the extract it was measured from."""
        resource = self._resources.get_or_none(resource_id)
        if resource is None:
            raise EntityNotFound("DataResource", resource_id)
        workunit = self.get(principal, resource.workunit_id)
        self._acl.require(principal, Permission.WRITE, workunit.project_id)
        updated = self._resources.update(resource_id, extract_id=extract_id)
        self._audit.record(
            principal, "update", "data_resource", resource_id,
            f"assigned extract {extract_id}",
        )
        return updated

    def mark_inputs(
        self, principal: Principal, workunit_id: int, resource_ids: Sequence[int]
    ) -> int:
        """Flag the given resources as the workunit's processing inputs."""
        workunit = self.get(principal, workunit_id)
        self._acl.require(principal, Permission.WRITE, workunit.project_id)
        marked = 0
        for resource_id in resource_ids:
            resource = self._resources.get_or_none(resource_id)
            if resource is None or resource.workunit_id != workunit_id:
                raise ValidationError(
                    f"resource {resource_id} is not part of workunit {workunit_id}"
                )
            self._resources.update(resource_id, is_input=True)
            marked += 1
        return marked

    # -- lifecycle -------------------------------------------------------------------

    def transition(
        self, principal: Principal, workunit_id: int, new_status: str
    ) -> Workunit:
        """Move the workunit through its lifecycle, validating the edge."""
        workunit = self.get(principal, workunit_id)
        if new_status not in WORKUNIT_STATES:
            raise ValidationError(f"unknown workunit status {new_status!r}")
        if new_status not in _TRANSITIONS[workunit.status]:
            raise StateError(
                f"workunit {workunit_id}: illegal transition "
                f"{workunit.status} -> {new_status}"
            )
        updated = self._workunits.update(workunit_id, status=new_status)
        self._audit.record(
            principal, "update", "workunit", workunit_id,
            f"status {workunit.status} -> {new_status}",
        )
        self._events.publish(
            "workunit.status", workunit=updated, previous=workunit.status,
            principal=principal,
        )
        return updated

    def counts(self) -> dict[str, int]:
        return {
            "workunits": self._workunits.count(),
            "data_resources": self._resources.count(),
        }
