"""Data import (paper Figures 9–11).

"B-Fabric supports two ways of data import: 1) physically copying and
2) linking data files."  Files come from *data providers* — the local
file system or instruments known to the deployment (the demo fetches
from an Affymetrix GeneChip scanner).  Provider configuration restricts
the visible files "to the ones that are potentially relevant for the
user ... since the number of the data files can be huge".

An import produces a :class:`~repro.core.entities.Workunit` whose data
resources then get extracts assigned — with best-match proposals so the
scientist "typically just needs to press the save button".
"""

from repro.dataimport.providers import (
    DataProvider,
    ProviderFile,
    RelevanceFilter,
)
from repro.dataimport.filesystem import LocalFileSystemProvider
from repro.dataimport.instruments import (
    AffymetrixGeneChipProvider,
    MassSpectrometerProvider,
)
from repro.dataimport.store import ManagedStore
from repro.dataimport.access import ResourceAccessor
from repro.dataimport.matching import propose_assignments
from repro.dataimport.importer import DataImportService, IMPORT_WORKFLOW

__all__ = [
    "DataProvider",
    "ProviderFile",
    "RelevanceFilter",
    "LocalFileSystemProvider",
    "AffymetrixGeneChipProvider",
    "MassSpectrometerProvider",
    "ManagedStore",
    "ResourceAccessor",
    "propose_assignments",
    "DataImportService",
    "IMPORT_WORKFLOW",
]
