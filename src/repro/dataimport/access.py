"""Transparent access to data-resource bytes.

Paper §1: "any external data store can be attached and made accessible
via B-Fabric.  Users do not need to care about where and how the data
are kept.  B-Fabric captures and provides the data transparently."

A :class:`ResourceAccessor` resolves any resource URI to bytes:

* ``store://...`` — read from the managed internal store;
* ``<provider-kind>://<provider-name>/<path>`` — re-fetch from the
  registered provider on demand (link-mode imports);

so downstream consumers (experiment staging, the portal's download
links, checksum verification) use one call regardless of storage mode.
"""

from __future__ import annotations

import tempfile
import urllib.parse
from pathlib import Path
from typing import TYPE_CHECKING

from repro.dataimport.store import ManagedStore, sha256_of
from repro.errors import ProviderError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataimport.importer import DataImportService


class ResourceAccessor:
    """Resolves resource URIs to local bytes."""

    def __init__(self, store: ManagedStore, imports: "DataImportService"):
        self._store = store
        self._imports = imports

    def materialize(self, uri: str, destination: Path) -> Path:
        """Place the bytes behind *uri* under *destination*; return the path."""
        destination.mkdir(parents=True, exist_ok=True)
        if uri.startswith("store://"):
            source = self._store.path_for(uri)
            if not source.is_file():
                raise ProviderError(f"stored file missing: {uri}")
            target = destination / source.name
            target.write_bytes(source.read_bytes())
            return target
        return self._fetch_from_provider(uri, destination)

    def _fetch_from_provider(self, uri: str, destination: Path) -> Path:
        parsed = urllib.parse.urlsplit(uri)
        provider_name, _, remainder = parsed.netloc, "", parsed.path.lstrip("/")
        if not provider_name:
            raise ProviderError(f"cannot resolve resource uri {uri!r}")
        provider = self._imports.provider(provider_name)
        file_name = remainder.rsplit("/", 1)[-1]
        file = provider.find(file_name)
        return provider.fetch(file, destination)

    def read_bytes(self, uri: str) -> bytes:
        """The full content behind *uri*."""
        if uri.startswith("store://"):
            path = self._store.path_for(uri)
            if not path.is_file():
                raise ProviderError(f"stored file missing: {uri}")
            return path.read_bytes()
        with tempfile.TemporaryDirectory() as tmp:
            return self.materialize(uri, Path(tmp)).read_bytes()

    def verify_checksum(self, uri: str, expected: str) -> bool:
        """Re-hash the bytes behind *uri* against a recorded checksum."""
        if not expected:
            return False
        with tempfile.TemporaryDirectory() as tmp:
            path = self.materialize(uri, Path(tmp))
            return sha256_of(path) == expected
