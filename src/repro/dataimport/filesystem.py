"""Local-filesystem data provider."""

from __future__ import annotations

import datetime as _dt
import shutil
from pathlib import Path

from repro.dataimport.providers import DataProvider, ProviderFile, RelevanceFilter
from repro.errors import ProviderError


class LocalFileSystemProvider(DataProvider):
    """Imports files from a directory tree on the local machine."""

    kind = "filesystem"

    def __init__(
        self,
        name: str,
        root: "str | Path",
        *,
        relevance: RelevanceFilter | None = None,
    ):
        super().__init__(name, relevance=relevance)
        self.root = Path(root)
        if not self.root.is_dir():
            raise ProviderError(f"provider root {self.root} is not a directory")

    def _list_all(self) -> list[ProviderFile]:
        files = []
        for path in sorted(self.root.rglob("*")):
            if not path.is_file():
                continue
            stat = path.stat()
            files.append(
                ProviderFile(
                    name=path.name,
                    path=str(path.relative_to(self.root)),
                    size_bytes=stat.st_size,
                    modified=_dt.datetime.utcfromtimestamp(int(stat.st_mtime)),
                    kind=path.suffix.lstrip(".").lower(),
                )
            )
        return files

    def fetch(self, file: ProviderFile, destination: Path) -> Path:
        source = self.root / file.path
        if not source.is_file():
            raise ProviderError(f"file vanished from provider: {source}")
        destination.mkdir(parents=True, exist_ok=True)
        target = destination / file.name
        shutil.copyfile(source, target)
        return target
