"""The data-import service: provider registry, imports, extract assignment.

An import (paper Figure 9) runs as a workflow (Figure 10)::

    [fetch files] --fetched(auto)--> [assign extracts] --save--> END

The fetch step executes during :meth:`DataImportService.import_files`;
the workflow then parks in ``assign_extracts`` — the step highlighted
for the user — until :meth:`apply_assignments` fires ``save``.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.audit.log import AuditLog
from repro.core.entities import DataResource, Extract, Workunit
from repro.core.services.samples import SampleService
from repro.core.services.workunits import WorkunitService
from repro.dataimport.matching import AssignmentProposal, propose_assignments
from repro.dataimport.providers import DataProvider, ProviderFile, RelevanceFilter
from repro.dataimport.store import ManagedStore
from repro.errors import (
    CrashPoint,
    ImportError_,
    ProviderError,
    TimeoutExceeded,
    ValidationError,
)
from repro.resilience.faults import fault_point
from repro.resilience.policies import (
    BreakerRegistry,
    ResiliencePolicy,
    RetryPolicy,
    Timeout,
    resilient,
)
from repro.orm import (
    BoolField,
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.security.principals import Principal
from repro.tasks.queue import (
    Job,
    JobQueue,
    decode_principal,
    encode_principal,
)
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.util.ids import token_hex
from repro.workflow.definitions import Action, Step, WorkflowDefinition
from repro.workflow.engine import WorkflowEngine, WorkflowInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Retry/timeout defaults for provider fetches: instrument shares are
#: slow and flaky, so a couple of short-backoff retries absorb most
#: transient failures; anything slower than the timeout is treated as
#: an outage and counts against the provider's circuit breaker.
DEFAULT_PROVIDER_POLICY = ResiliencePolicy(
    retry=RetryPolicy(
        max_attempts=3,
        base_delay=0.05,
        seed=0,
        retry_on=(ProviderError, TimeoutExceeded, OSError),
    ),
    timeout=Timeout(30.0),
)

#: Name of the registered data-import workflow definition.
IMPORT_WORKFLOW = "data_import"

#: Queue job type for background imports.
IMPORT_JOB = "import.files"

#: Workunit parameter carrying the import's queue-level identity.  A
#: redelivered job finds its first attempt's workunit through this key,
#: which is what turns at-least-once delivery into effects-once imports.
IMPORT_JOB_KEY_PARAM = "import_job_key"

IMPORT_MODES = ("copy", "link")


class ProviderConfig(Model):
    """Persisted provider configuration (admin-visible)."""

    __table__ = "data_provider"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, unique=True)
    kind = TextField(nullable=False)
    config = JsonField(default=dict)
    active = BoolField(default=True)
    created_at = DateTimeField()


def import_workflow_definition() -> WorkflowDefinition:
    """Build the two-step import workflow of Figure 10."""
    return WorkflowDefinition(
        IMPORT_WORKFLOW,
        steps=[
            Step(
                "fetch",
                actions=(
                    Action(
                        "fetched",
                        target="assign_extracts",
                        label="Files fetched",
                        auto=True,
                    ),
                ),
                label="Fetch files",
                description="Copy or link the selected provider files",
            ),
            Step(
                "assign_extracts",
                actions=(
                    Action("save", target="done", label="Save assignments"),
                ),
                label="Assign extracts",
                description="Connect each imported file to its extract",
            ),
            Step("done", actions=(), label="Import complete"),
        ],
        description="Data import: fetch provider files, assign extracts",
    )


class DataImportService:
    """Imports provider files into workunits."""

    def __init__(
        self,
        registry: Registry,
        *,
        workunits: WorkunitService,
        samples: SampleService,
        workflow: WorkflowEngine,
        store: ManagedStore,
        audit: AuditLog,
        events: EventBus,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
        breakers: BreakerRegistry | None = None,
        provider_policy: ResiliencePolicy | None = None,
        queue: JobQueue | None = None,
    ):
        self._registry = registry
        self._workunits = workunits
        self._samples = samples
        self._workflow = workflow
        self._store = store
        self._audit = audit
        self._events = events
        self._clock = clock or SystemClock()
        self._obs = obs
        self._breakers = breakers
        self._provider_policy = provider_policy or DEFAULT_PROVIDER_POLICY
        self._providers: dict[str, DataProvider] = {}
        self._configs = registry.repository(ProviderConfig)
        self._queue = queue
        if queue is not None:
            queue.register_handler(
                IMPORT_JOB,
                self._import_job,
                on_lease_lost=self._on_import_lease_lost,
            )
        if IMPORT_WORKFLOW not in workflow.definition_names():
            workflow.register_definition(import_workflow_definition())

    # -- provider registry -----------------------------------------------------------

    def register_provider(self, provider: DataProvider) -> ProviderConfig:
        """Make a provider available for imports.

        "New data providers can be added to the system easily" — the
        live object goes into the in-memory registry, its configuration
        is persisted for the admin console.
        """
        if provider.name in self._providers:
            raise ValidationError(f"provider {provider.name!r} already registered")
        self._providers[provider.name] = provider
        existing = self._configs.find_one(name=provider.name)
        if existing is not None:
            return existing
        return self._configs.create(
            name=provider.name,
            kind=provider.kind,
            config={
                "patterns": provider.relevance.patterns,
                "extensions": provider.relevance.extensions,
            },
            created_at=self._clock.now(),
        )

    def provider(self, name: str) -> DataProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise ProviderError(f"no provider named {name!r}") from None

    def provider_names(self) -> list[str]:
        return sorted(self._providers)

    def browse(
        self, provider_name: str, extra_filter: RelevanceFilter | None = None
    ):
        """List a provider's relevant files for the picker UI."""
        return self.provider(provider_name).list_files(extra_filter)

    # -- importing --------------------------------------------------------------------

    def import_files(
        self,
        principal: Principal,
        project_id: int,
        provider_name: str,
        file_names: Sequence[str],
        *,
        workunit_name: str,
        mode: str = "copy",
        description: str = "",
    ) -> tuple[Workunit, list[DataResource], WorkflowInstance]:
        """Import files into a new workunit (paper Figure 9).

        ``mode="copy"`` fetches bytes into the managed store and records
        checksums; ``mode="link"`` records the provider URI only.
        Returns the workunit (``pending`` until extract assignment), its
        resources, and the running import workflow instance.

        When a worker pool is draining the job queue, the import runs as
        a background job (crash-safe, per-provider limited) and this
        call becomes enqueue-then-wait — same signature, same results,
        same errors.  Without workers it runs inline, unchanged.
        """
        self._validate_request(provider_name, file_names, mode)
        if self._queue is not None and self._queue.workers_active():
            return self._import_via_queue(
                principal,
                project_id,
                provider_name,
                file_names,
                workunit_name=workunit_name,
                mode=mode,
                description=description,
            )
        return self._run_import(
            principal,
            project_id,
            provider_name,
            file_names,
            workunit_name=workunit_name,
            mode=mode,
            description=description,
        )

    def _validate_request(
        self, provider_name: str, file_names: Sequence[str], mode: str
    ) -> None:
        """Reject bad requests before they are enqueued or executed."""
        if mode not in IMPORT_MODES:
            raise ValidationError(f"import mode must be copy|link, got {mode!r}")
        if not file_names:
            raise ValidationError("nothing selected for import")
        provider = self.provider(provider_name)
        for name in file_names:
            provider.find(name)

    # -- the queue path -------------------------------------------------------------

    def enqueue_import(
        self,
        principal: Principal,
        project_id: int,
        provider_name: str,
        file_names: Sequence[str],
        *,
        workunit_name: str,
        mode: str = "copy",
        description: str = "",
        job_key: str = "",
    ) -> Job:
        """Queue an import as a background job; returns the job row.

        *job_key* is the import's idempotency identity: enqueueing the
        same key twice yields one job, and a redelivered job resumes or
        compensates its first attempt instead of importing twice.  A
        fresh key is minted when omitted (each call = one new import).
        """
        self._validate_request(provider_name, file_names, mode)
        if self._queue is None:
            raise ValidationError("no job queue attached to the importer")
        job_key = job_key or token_hex(8)
        return self._queue.enqueue(
            IMPORT_JOB,
            {
                "principal": encode_principal(principal),
                "project_id": project_id,
                "provider": provider_name,
                "files": list(file_names),
                "workunit_name": workunit_name,
                "mode": mode,
                "description": description,
                "job_key": job_key,
            },
            channel=f"provider:{provider_name}",
            idempotency_key=f"import:{job_key}",
        )

    def _import_via_queue(
        self,
        principal: Principal,
        project_id: int,
        provider_name: str,
        file_names: Sequence[str],
        *,
        workunit_name: str,
        mode: str,
        description: str,
        timeout: float = 300.0,
    ) -> tuple[Workunit, list[DataResource], WorkflowInstance]:
        """Enqueue-then-wait: the synchronous facade over the queue."""
        job = self.enqueue_import(
            principal,
            project_id,
            provider_name,
            file_names,
            workunit_name=workunit_name,
            mode=mode,
            description=description,
        )
        finished = self._queue.wait(job.id, timeout=timeout)
        if finished.state == "done":
            return self._load_import_result(principal, finished.result)
        if finished.state == "dead":
            raise ImportError_(
                f"import job {finished.id} failed after "
                f"{finished.attempts} attempt(s): {finished.error}"
            )
        raise TimeoutExceeded(
            f"import job {finished.id} still {finished.state} after "
            f"{timeout:g}s",
            seconds=timeout,
        )

    def _load_import_result(
        self, principal: Principal, result: dict
    ) -> tuple[Workunit, list[DataResource], WorkflowInstance]:
        workunit = self._workunits.get(principal, result["workunit_id"])
        resources = self._workunits.resources_of(principal, workunit.id)
        instance = self._workflow.get(result["instance_id"])
        return workunit, resources, instance

    def _import_job(self, job: Job) -> dict:
        """Queue handler: run (or resume) one import job."""
        payload = job.payload
        principal = decode_principal(payload["principal"])
        job_key = payload["job_key"]
        existing = self._find_import_by_key(
            principal, payload["project_id"], job_key
        )
        if existing is not None:
            workunit, resources, instance = existing
            if instance is not None and len(resources) == len(payload["files"]):
                # First delivery finished everything but the ack (the
                # torn-ack redelivery): the import already happened.
                return {
                    "workunit_id": workunit.id,
                    "resource_ids": [r.id for r in resources],
                    "instance_id": instance.id,
                    "resumed": True,
                }
            # A killed worker left a half-imported workunit behind; the
            # compensation contract says remove it, then run afresh.
            self._abort_import(
                principal,
                workunit,
                resources,
                ImportError_(
                    f"import job {job.id} redelivered over a partial "
                    f"first attempt (attempt {job.attempts})"
                ),
            )
        workunit, resources, instance = self._run_import(
            principal,
            payload["project_id"],
            payload["provider"],
            payload["files"],
            workunit_name=payload["workunit_name"],
            mode=payload["mode"],
            description=payload["description"],
            job_key=job_key,
        )
        return {
            "workunit_id": workunit.id,
            "resource_ids": [r.id for r in resources],
            "instance_id": instance.id,
        }

    def _find_import_by_key(
        self, principal: Principal, project_id: int, job_key: str
    ) -> "tuple[Workunit, list[DataResource], WorkflowInstance | None] | None":
        """The workunit a previous delivery of this job created, if any."""
        repo = self._registry.repository(Workunit)
        for workunit in repo.find(project_id=project_id):
            if (workunit.parameters or {}).get(IMPORT_JOB_KEY_PARAM) != job_key:
                continue
            resources = self._workunits.resources_of(principal, workunit.id)
            instance = None
            for candidate in self._workflow.for_entity("workunit", workunit.id):
                if candidate.definition == IMPORT_WORKFLOW:
                    instance = candidate
                    break
            return workunit, resources, instance
        return None

    def _on_import_lease_lost(self, job: Job, result: object) -> None:
        """Compensate the losing side of a double execution.

        This worker finished an import but its lease had expired and the
        job was redelivered; whatever the *winner* recorded on the job
        row is the import of record.  If this worker's workunit is a
        different row, it is a duplicate — remove it.
        """
        if not isinstance(result, dict) or "workunit_id" not in result:
            return
        principal = decode_principal(job.payload["principal"])
        current = self._queue.get(job.id) if self._queue is not None else None
        winner_id = (current.result or {}).get("workunit_id") if current else None
        loser_id = result["workunit_id"]
        if winner_id == loser_id:
            return  # same workunit (the winner resumed this attempt's work)
        repo = self._registry.repository(Workunit)
        workunit = repo.get_or_none(loser_id)
        if workunit is None:
            return  # the winner already compensated it
        for instance in self._workflow.for_entity("workunit", loser_id):
            if instance.definition == IMPORT_WORKFLOW and instance.status == "active":
                self._workflow.fail(
                    principal, instance.id, "duplicate import discarded"
                )
        resources = self._workunits.resources_of(principal, loser_id)
        self._abort_import(
            principal,
            workunit,
            resources,
            ImportError_(f"duplicate of workunit {winner_id} (lease lost)"),
        )

    # -- the inline import ------------------------------------------------------------

    def _run_import(
        self,
        principal: Principal,
        project_id: int,
        provider_name: str,
        file_names: Sequence[str],
        *,
        workunit_name: str,
        mode: str,
        description: str,
        job_key: str = "",
    ) -> tuple[Workunit, list[DataResource], WorkflowInstance]:
        provider = self.provider(provider_name)
        files = [provider.find(name) for name in file_names]
        fetch = self._fetcher_for(provider)
        parameters = {"provider": provider_name, "mode": mode}
        if job_key:
            parameters[IMPORT_JOB_KEY_PARAM] = job_key

        # Copy mode fetches everything *before* any row is created, so a
        # provider failure mid-import leaves no half-imported workunit.
        # Each fetch runs under the provider's retry/timeout/breaker
        # policy and is size-verified against the listing, so a partial
        # read is detected (and usually healed by a retry) here, not
        # discovered later as a corrupt resource.
        with tempfile.TemporaryDirectory() as staging:
            fetched_paths: dict[str, Path] = {}
            if mode == "copy":
                for file in files:
                    fetched_paths[file.name] = fetch(
                        file, Path(staging) / file.name.replace("/", "_")
                    )

            # Everything from the workunit row onward must be atomic
            # from the caller's point of view.  The services autocommit
            # per operation, so a failure mid-loop (store ingest, a
            # resource row, the workflow start) is healed by explicit
            # compensation: created rows and store files are removed and
            # the original error propagates — never a half-imported
            # workunit.
            workunit = self._workunits.create(
                principal,
                project_id,
                workunit_name,
                description=description
                or f"import of {len(files)} file(s) from {provider_name}",
                parameters=parameters,
            )
            resources: list[DataResource] = []
            try:
                for file in files:
                    if mode == "copy":
                        fault_point("dataimport.ingest")
                        uri, checksum, size = self._store.ingest(
                            workunit.id, fetched_paths[file.name]
                        )
                        storage = "internal"
                    else:
                        uri = provider.uri_for(file)
                        checksum = ""
                        size = file.size_bytes
                        storage = "linked"
                    resources.append(
                        self._workunits.add_resource(
                            principal,
                            workunit.id,
                            file.name,
                            uri,
                            storage=storage,
                            size_bytes=size,
                            checksum=checksum,
                        )
                    )
                instance = self._workflow.start(
                    principal,
                    IMPORT_WORKFLOW,
                    entity_type="workunit",
                    entity_id=workunit.id,
                    context={"provider": provider_name, "mode": mode,
                             "files": [f.name for f in files]},
                )
            except CrashPoint:
                # A simulated process kill: a real SIGKILL cannot run
                # compensation, so neither may we — the partial state is
                # left for the queue's redelivery path to heal.
                raise
            except Exception as exc:
                self._abort_import(principal, workunit, resources, exc)
                raise

        self._audit.record(
            principal, "create", "import", workunit.id,
            f"imported {len(files)} file(s) from {provider_name} ({mode})",
        )
        self._events.publish(
            "import.awaiting_assignment",
            workunit=workunit,
            principal=principal,
            unassigned=len(resources),
        )
        return workunit, resources, instance

    def _fetcher_for(self, provider: DataProvider):
        """One provider fetch under the retry/timeout/breaker policy.

        Each provider is its own endpoint: repeated failures open that
        provider's breaker without affecting imports from healthy ones.
        """
        policy = self._provider_policy
        if self._breakers is not None:
            policy = policy.with_breaker(
                self._breakers.breaker(f"provider:{provider.name}")
            )

        def fetch_once(file: ProviderFile, destination: Path) -> Path:
            action = fault_point("dataimport.fetch")
            path = provider.fetch(file, destination)
            if action is not None and action.kind == "partial":
                data = path.read_bytes()
                path.write_bytes(data[: max(1, int(len(data) * action.fraction))])
            got = path.stat().st_size
            if file.size_bytes and got != file.size_bytes:
                raise ProviderError(
                    f"partial read of {file.name!r}: got {got} of "
                    f"{file.size_bytes} bytes"
                )
            return path

        return resilient(policy, site="dataimport.fetch", obs=self._obs)(
            fetch_once
        )

    def _abort_import(
        self,
        principal: Principal,
        workunit: Workunit,
        resources: list[DataResource],
        error: BaseException,
    ) -> None:
        """Compensate a failed import: remove everything it created.

        Resources go first (their FK to the workunit is ``restrict``),
        then the workunit row, then any bytes already ingested into the
        managed store.  Best-effort: a failing compensation step is
        logged but never masks the original import error.  Idempotent:
        rows already removed (a redelivered worker compensating the
        same partial import) are skipped, and the store directory is
        cleaned regardless — no step can strand bytes behind a missing
        row.
        """
        try:
            resource_repo = self._registry.repository(DataResource)
            for resource in reversed(resources):
                if resource_repo.get_or_none(resource.id) is not None:
                    resource_repo.delete(resource.id)
            workunit_repo = self._registry.repository(Workunit)
            if workunit_repo.get_or_none(workunit.id) is not None:
                # Another delivery may have added resources we never saw.
                for leftover in resource_repo.find(workunit_id=workunit.id):
                    resource_repo.delete(leftover.id)
                workunit_repo.delete(workunit.id)
            directory = self._store.directory_for(workunit.id)
            if directory.exists():
                shutil.rmtree(directory, ignore_errors=True)
            self._audit.record(
                principal, "delete", "import", workunit.id,
                f"import rolled back: {error}",
            )
            self._events.publish(
                "import.rolled_back",
                workunit=workunit,
                resources=list(resources),
                principal=principal,
                error=str(error),
            )
        except Exception as cleanup_error:  # pragma: no cover - defensive
            if self._obs is not None:
                self._obs.log.log(
                    "dataimport.compensation_failed",
                    workunit=workunit.id,
                    error=str(cleanup_error),
                )

    # -- extract assignment ---------------------------------------------------------------

    def proposals_for(
        self, principal: Principal, workunit_id: int
    ) -> list[AssignmentProposal]:
        """Best-match extract proposals for a workunit's resources."""
        workunit = self._workunits.get(principal, workunit_id)
        resources = self._workunits.resources_of(principal, workunit_id)
        extracts = self._samples.extracts_of_project(
            principal, workunit.project_id
        )
        return propose_assignments(
            {r.id: r.name for r in resources if r.extract_id is None},
            {e.id: e.name for e in extracts},
        )

    def apply_assignments(
        self,
        principal: Principal,
        workunit_id: int,
        assignments: dict[int, int] | None = None,
    ) -> Workunit:
        """Persist assignments and complete the import workflow.

        With ``assignments=None`` the best-match proposals are applied
        as-is — the demo's "just press the save button" path.
        """
        if assignments is None:
            assignments = {
                p.resource_id: p.extract_id
                for p in self.proposals_for(principal, workunit_id)
            }
        valid_extracts = {
            e.id
            for e in self._samples.extracts_of_project(
                principal,
                self._workunits.get(principal, workunit_id).project_id,
            )
        }
        for resource_id, extract_id in assignments.items():
            if extract_id not in valid_extracts:
                raise ValidationError(
                    f"extract {extract_id} does not belong to this project"
                )
            self._workunits.assign_extract(principal, resource_id, extract_id)

        for instance in self._workflow.for_entity("workunit", workunit_id):
            if instance.definition == IMPORT_WORKFLOW and instance.status == "active":
                self._workflow.fire(principal, instance.id, "save")
        workunit = self._workunits.transition(principal, workunit_id, "available")
        self._events.publish(
            "import.extracts_assigned", workunit=workunit, principal=principal
        )
        return workunit
