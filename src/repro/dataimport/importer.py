"""The data-import service: provider registry, imports, extract assignment.

An import (paper Figure 9) runs as a workflow (Figure 10)::

    [fetch files] --fetched(auto)--> [assign extracts] --save--> END

The fetch step executes during :meth:`DataImportService.import_files`;
the workflow then parks in ``assign_extracts`` — the step highlighted
for the user — until :meth:`apply_assignments` fires ``save``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Sequence

from repro.audit.log import AuditLog
from repro.core.entities import DataResource, Extract, Workunit
from repro.core.services.samples import SampleService
from repro.core.services.workunits import WorkunitService
from repro.dataimport.matching import AssignmentProposal, propose_assignments
from repro.dataimport.providers import DataProvider, RelevanceFilter
from repro.dataimport.store import ManagedStore
from repro.errors import ProviderError, ValidationError
from repro.orm import (
    BoolField,
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.workflow.definitions import Action, Step, WorkflowDefinition
from repro.workflow.engine import WorkflowEngine, WorkflowInstance

#: Name of the registered data-import workflow definition.
IMPORT_WORKFLOW = "data_import"

IMPORT_MODES = ("copy", "link")


class ProviderConfig(Model):
    """Persisted provider configuration (admin-visible)."""

    __table__ = "data_provider"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, unique=True)
    kind = TextField(nullable=False)
    config = JsonField(default=dict)
    active = BoolField(default=True)
    created_at = DateTimeField()


def import_workflow_definition() -> WorkflowDefinition:
    """Build the two-step import workflow of Figure 10."""
    return WorkflowDefinition(
        IMPORT_WORKFLOW,
        steps=[
            Step(
                "fetch",
                actions=(
                    Action(
                        "fetched",
                        target="assign_extracts",
                        label="Files fetched",
                        auto=True,
                    ),
                ),
                label="Fetch files",
                description="Copy or link the selected provider files",
            ),
            Step(
                "assign_extracts",
                actions=(
                    Action("save", target="done", label="Save assignments"),
                ),
                label="Assign extracts",
                description="Connect each imported file to its extract",
            ),
            Step("done", actions=(), label="Import complete"),
        ],
        description="Data import: fetch provider files, assign extracts",
    )


class DataImportService:
    """Imports provider files into workunits."""

    def __init__(
        self,
        registry: Registry,
        *,
        workunits: WorkunitService,
        samples: SampleService,
        workflow: WorkflowEngine,
        store: ManagedStore,
        audit: AuditLog,
        events: EventBus,
        clock: Clock | None = None,
    ):
        self._registry = registry
        self._workunits = workunits
        self._samples = samples
        self._workflow = workflow
        self._store = store
        self._audit = audit
        self._events = events
        self._clock = clock or SystemClock()
        self._providers: dict[str, DataProvider] = {}
        self._configs = registry.repository(ProviderConfig)
        if IMPORT_WORKFLOW not in workflow.definition_names():
            workflow.register_definition(import_workflow_definition())

    # -- provider registry -----------------------------------------------------------

    def register_provider(self, provider: DataProvider) -> ProviderConfig:
        """Make a provider available for imports.

        "New data providers can be added to the system easily" — the
        live object goes into the in-memory registry, its configuration
        is persisted for the admin console.
        """
        if provider.name in self._providers:
            raise ValidationError(f"provider {provider.name!r} already registered")
        self._providers[provider.name] = provider
        existing = self._configs.find_one(name=provider.name)
        if existing is not None:
            return existing
        return self._configs.create(
            name=provider.name,
            kind=provider.kind,
            config={
                "patterns": provider.relevance.patterns,
                "extensions": provider.relevance.extensions,
            },
            created_at=self._clock.now(),
        )

    def provider(self, name: str) -> DataProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise ProviderError(f"no provider named {name!r}") from None

    def provider_names(self) -> list[str]:
        return sorted(self._providers)

    def browse(
        self, provider_name: str, extra_filter: RelevanceFilter | None = None
    ):
        """List a provider's relevant files for the picker UI."""
        return self.provider(provider_name).list_files(extra_filter)

    # -- importing --------------------------------------------------------------------

    def import_files(
        self,
        principal: Principal,
        project_id: int,
        provider_name: str,
        file_names: Sequence[str],
        *,
        workunit_name: str,
        mode: str = "copy",
        description: str = "",
    ) -> tuple[Workunit, list[DataResource], WorkflowInstance]:
        """Import files into a new workunit (paper Figure 9).

        ``mode="copy"`` fetches bytes into the managed store and records
        checksums; ``mode="link"`` records the provider URI only.
        Returns the workunit (``pending`` until extract assignment), its
        resources, and the running import workflow instance.
        """
        if mode not in IMPORT_MODES:
            raise ValidationError(f"import mode must be copy|link, got {mode!r}")
        if not file_names:
            raise ValidationError("nothing selected for import")
        provider = self.provider(provider_name)
        files = [provider.find(name) for name in file_names]

        # Copy mode fetches everything *before* any row is created, so a
        # provider failure mid-import leaves no half-imported workunit.
        with tempfile.TemporaryDirectory() as staging:
            fetched_paths: dict[str, Path] = {}
            if mode == "copy":
                for file in files:
                    fetched_paths[file.name] = provider.fetch(
                        file, Path(staging) / file.name.replace("/", "_")
                    )

            workunit = self._workunits.create(
                principal,
                project_id,
                workunit_name,
                description=description
                or f"import of {len(files)} file(s) from {provider_name}",
                parameters={"provider": provider_name, "mode": mode},
            )
            resources: list[DataResource] = []
            for file in files:
                if mode == "copy":
                    uri, checksum, size = self._store.ingest(
                        workunit.id, fetched_paths[file.name]
                    )
                    storage = "internal"
                else:
                    uri = provider.uri_for(file)
                    checksum = ""
                    size = file.size_bytes
                    storage = "linked"
                resources.append(
                    self._workunits.add_resource(
                        principal,
                        workunit.id,
                        file.name,
                        uri,
                        storage=storage,
                        size_bytes=size,
                        checksum=checksum,
                    )
                )

        instance = self._workflow.start(
            principal,
            IMPORT_WORKFLOW,
            entity_type="workunit",
            entity_id=workunit.id,
            context={"provider": provider_name, "mode": mode,
                     "files": [f.name for f in files]},
        )
        self._audit.record(
            principal, "create", "import", workunit.id,
            f"imported {len(files)} file(s) from {provider_name} ({mode})",
        )
        self._events.publish(
            "import.awaiting_assignment",
            workunit=workunit,
            principal=principal,
            unassigned=len(resources),
        )
        return workunit, resources, instance

    # -- extract assignment ---------------------------------------------------------------

    def proposals_for(
        self, principal: Principal, workunit_id: int
    ) -> list[AssignmentProposal]:
        """Best-match extract proposals for a workunit's resources."""
        workunit = self._workunits.get(principal, workunit_id)
        resources = self._workunits.resources_of(principal, workunit_id)
        extracts = self._samples.extracts_of_project(
            principal, workunit.project_id
        )
        return propose_assignments(
            {r.id: r.name for r in resources if r.extract_id is None},
            {e.id: e.name for e in extracts},
        )

    def apply_assignments(
        self,
        principal: Principal,
        workunit_id: int,
        assignments: dict[int, int] | None = None,
    ) -> Workunit:
        """Persist assignments and complete the import workflow.

        With ``assignments=None`` the best-match proposals are applied
        as-is — the demo's "just press the save button" path.
        """
        if assignments is None:
            assignments = {
                p.resource_id: p.extract_id
                for p in self.proposals_for(principal, workunit_id)
            }
        valid_extracts = {
            e.id
            for e in self._samples.extracts_of_project(
                principal,
                self._workunits.get(principal, workunit_id).project_id,
            )
        }
        for resource_id, extract_id in assignments.items():
            if extract_id not in valid_extracts:
                raise ValidationError(
                    f"extract {extract_id} does not belong to this project"
                )
            self._workunits.assign_extract(principal, resource_id, extract_id)

        for instance in self._workflow.for_entity("workunit", workunit_id):
            if instance.definition == IMPORT_WORKFLOW and instance.status == "active":
                self._workflow.fire(principal, instance.id, "save")
        workunit = self._workunits.transition(principal, workunit_id, "available")
        self._events.publish(
            "import.extracts_assigned", workunit=workunit, principal=principal
        )
        return workunit
