"""Simulated instrument data stores.

The FGCZ deployment imports from real instruments (the demo shows the
Affymetrix GeneChip scanner); we have no scanner, so these providers
*simulate* instrument stores: they synthesize deterministic file
listings and deterministic file contents from a seed.  The provider SPI
— listing, relevance filtering, copy/link fetch — is exercised exactly
as with real hardware; only the bytes are synthetic (see DESIGN.md,
substitutions).

Determinism matters: the same seed always produces the same listing and
the same bytes, so checksums are reproducible across test runs.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import random
from pathlib import Path

from repro.dataimport.providers import DataProvider, ProviderFile, RelevanceFilter


def _content_for(path: str, size: int) -> bytes:
    """Deterministic pseudo-random bytes for a simulated file."""
    seed_digest = hashlib.sha256(path.encode("utf-8")).digest()
    rng = random.Random(seed_digest)
    return bytes(rng.getrandbits(8) for _ in range(size))


class SimulatedInstrumentProvider(DataProvider):
    """Base for instruments: synthesizes a run-structured listing."""

    kind = "instrument"
    #: Per-run file templates: (suffix, size) — subclasses override.
    file_templates: tuple[tuple[str, int], ...] = ((".dat", 2048),)
    run_prefix = "run"

    def __init__(
        self,
        name: str,
        *,
        runs: int = 4,
        samples_per_run: tuple[str, ...] = ("a", "b"),
        start: _dt.datetime | None = None,
        relevance: RelevanceFilter | None = None,
    ):
        super().__init__(name, relevance=relevance)
        self.runs = runs
        self.samples_per_run = samples_per_run
        self.start = start or _dt.datetime(2010, 1, 4, 8, 0)
        self._files = self._synthesize()

    def _synthesize(self) -> list[ProviderFile]:
        files: list[ProviderFile] = []
        moment = self.start
        for run in range(1, self.runs + 1):
            for sample in self.samples_per_run:
                for suffix, size in self.file_templates:
                    stem = f"{self.run_prefix}{run:02d}_{sample}"
                    name = f"{stem}{suffix}"
                    files.append(
                        ProviderFile(
                            name=name,
                            path=f"{self.run_prefix}{run:02d}/{name}",
                            size_bytes=size,
                            modified=moment,
                            kind=suffix.lstrip("."),
                        )
                    )
                moment += _dt.timedelta(hours=3)
        return files

    def _list_all(self) -> list[ProviderFile]:
        return list(self._files)

    def fetch(self, file: ProviderFile, destination: Path) -> Path:
        destination.mkdir(parents=True, exist_ok=True)
        target = destination / file.name
        target.write_bytes(_content_for(file.path, file.size_bytes))
        return target


class AffymetrixGeneChipProvider(SimulatedInstrumentProvider):
    """The GeneChip scanner of paper Figure 9: array scans produce
    ``.cel`` intensity files plus a small ``.chp`` analysis file."""

    kind = "genechip"
    file_templates = ((".cel", 8192), (".chp", 1024))
    run_prefix = "scan"


class MassSpectrometerProvider(SimulatedInstrumentProvider):
    """An LTQ-FT-style mass spectrometer producing ``.raw`` spectra."""

    kind = "massspec"
    file_templates = ((".raw", 16384),)
    run_prefix = "ms"
