"""Intelligent extract assignment (paper Figure 11).

"When the scientist goes to the assign extracts screen, he gets already
the best matches between data resources and extract names.  Typically he
just needs to press the save button and continue."

The proposal is a stable matching by descending similarity: each
resource gets at most one extract and each extract at most one resource
(greedy on the globally best remaining pair — with file names like
``wt_light_1.cel`` against extracts named ``wt light 1`` this is exact).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.text import combined_similarity, filename_stem


@dataclass(frozen=True)
class AssignmentProposal:
    """One proposed resource → extract assignment."""

    resource_id: int
    extract_id: int
    score: float


def _comparable(text: str) -> str:
    return re.sub(r"[_\-.]+", " ", text)


def propose_assignments(
    resources: dict[int, str],
    extracts: dict[int, str],
    *,
    minimum: float = 0.3,
) -> list[AssignmentProposal]:
    """Best one-to-one matches between resource and extract names.

    :param resources: resource id → file name.
    :param extracts: extract id → extract name.
    :param minimum: pairs scoring below this are not proposed at all.
    :returns: proposals sorted by resource id; unmatched resources are
        simply absent (the form leaves their drop-down empty).
    """
    pairs: list[tuple[float, int, int]] = []
    resource_texts = {
        rid: _comparable(filename_stem(name)) for rid, name in resources.items()
    }
    extract_texts = {eid: _comparable(name) for eid, name in extracts.items()}
    for rid, rtext in resource_texts.items():
        for eid, etext in extract_texts.items():
            score = combined_similarity(rtext, etext)
            if score >= minimum:
                pairs.append((score, rid, eid))
    # Greedy on globally best remaining pair; ties break deterministically
    # by (resource id, extract id).
    pairs.sort(key=lambda p: (-p[0], p[1], p[2]))
    taken_resources: set[int] = set()
    taken_extracts: set[int] = set()
    proposals: list[AssignmentProposal] = []
    for score, rid, eid in pairs:
        if rid in taken_resources or eid in taken_extracts:
            continue
        taken_resources.add(rid)
        taken_extracts.add(eid)
        proposals.append(AssignmentProposal(rid, eid, round(score, 4)))
    proposals.sort(key=lambda p: p.resource_id)
    return proposals
