"""Data-provider SPI and relevance filtering."""

from __future__ import annotations

import fnmatch
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
import datetime as _dt
from pathlib import Path
from typing import Iterable


@dataclass(frozen=True)
class ProviderFile:
    """One file visible in a provider's data store."""

    name: str
    path: str
    size_bytes: int
    modified: _dt.datetime
    kind: str = ""  # e.g. "cel", "raw", "wiff"


@dataclass
class RelevanceFilter:
    """Restricts provider listings to potentially relevant files.

    All criteria are conjunctive; empty criteria match everything.
    """

    patterns: list[str] = field(default_factory=list)  # fnmatch globs
    extensions: list[str] = field(default_factory=list)  # without dot
    modified_after: _dt.datetime | None = None
    max_files: int | None = None

    def matches(self, file: ProviderFile) -> bool:
        if self.patterns and not any(
            fnmatch.fnmatch(file.name, pattern) for pattern in self.patterns
        ):
            return False
        if self.extensions:
            suffix = file.name.rsplit(".", 1)[-1].lower() if "." in file.name else ""
            if suffix not in [e.lower().lstrip(".") for e in self.extensions]:
                return False
        if self.modified_after is not None and file.modified < self.modified_after:
            return False
        return True

    def apply(self, files: Iterable[ProviderFile]) -> list[ProviderFile]:
        selected = [f for f in files if self.matches(f)]
        selected.sort(key=lambda f: (f.modified, f.name), reverse=True)
        if self.max_files is not None:
            selected = selected[: self.max_files]
        return selected


class DataProvider(ABC):
    """A configured source of importable files.

    Implementations must be cheap to ``list_files`` (it backs a picker
    UI) and deliver bytes through ``fetch``.
    """

    #: Provider kind identifier, e.g. "filesystem", "genechip".
    kind: str = "abstract"

    def __init__(self, name: str, *, relevance: RelevanceFilter | None = None):
        self.name = name
        self.relevance = relevance or RelevanceFilter()

    @abstractmethod
    def _list_all(self) -> list[ProviderFile]:
        """Unfiltered listing of the underlying store."""

    @abstractmethod
    def fetch(self, file: ProviderFile, destination: Path) -> Path:
        """Copy *file*'s bytes under *destination*; return the local path."""

    def uri_for(self, file: ProviderFile) -> str:
        """Stable URI for link-mode imports."""
        return f"{self.kind}://{self.name}/{file.path.lstrip('/')}"

    def list_files(
        self, extra_filter: RelevanceFilter | None = None
    ) -> list[ProviderFile]:
        """Relevant files, newest first."""
        files = self.relevance.apply(self._list_all())
        if extra_filter is not None:
            files = extra_filter.apply(files)
        return files

    def find(self, name: str) -> ProviderFile:
        """Look up one relevant file by name."""
        for file in self.list_files():
            if file.name == name:
                return file
        from repro.errors import ProviderError

        raise ProviderError(
            f"provider {self.name!r} has no relevant file named {name!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
