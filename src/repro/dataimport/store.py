"""The managed internal store for copy-mode imports.

Copied files land under ``<root>/<workunit_id>/<file name>`` and are
checksummed (SHA-256) on the way in, so later integrity verification can
detect bit rot or tampering.
"""

from __future__ import annotations

import hashlib
from pathlib import Path


def sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ManagedStore:
    """B-Fabric's internal storage area."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def directory_for(self, workunit_id: int) -> Path:
        return self.root / f"workunit_{workunit_id:08d}"

    def uri_for(self, workunit_id: int, name: str) -> str:
        return f"store://{self.directory_for(workunit_id).name}/{name}"

    def path_for(self, uri: str) -> Path:
        """Resolve a ``store://`` URI back to a filesystem path."""
        if not uri.startswith("store://"):
            raise ValueError(f"not a managed-store uri: {uri!r}")
        relative = uri[len("store://"):]
        return self.root / relative

    def ingest(self, workunit_id: int, source: Path) -> tuple[str, str, int]:
        """Move a fetched file into the store.

        Returns ``(uri, sha256, size_bytes)``.
        """
        directory = self.directory_for(workunit_id)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / source.name
        if source != target:
            target.write_bytes(source.read_bytes())
        return (
            self.uri_for(workunit_id, source.name),
            sha256_of(target),
            target.stat().st_size,
        )

    def verify(self, uri: str, expected_checksum: str) -> bool:
        """Re-hash a stored file against its recorded checksum."""
        path = self.path_for(uri)
        if not path.is_file():
            return False
        return sha256_of(path) == expected_checksum

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.rglob("*") if p.is_file())
