"""Exception hierarchy for the B-Fabric reproduction.

All exceptions raised by the library derive from :class:`BFabricError` so
that callers can catch library failures with a single ``except`` clause.
Subsystems add their own subclasses; the ones defined here are shared
across packages.
"""

from __future__ import annotations


class BFabricError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Storage-layer errors
# ---------------------------------------------------------------------------


class StorageError(BFabricError):
    """Base class for errors raised by the embedded storage engine."""


class SchemaError(StorageError):
    """A table or column definition is invalid or used inconsistently."""


class ConstraintViolation(StorageError):
    """A write violated a declared constraint (PK, unique, FK, NOT NULL)."""

    def __init__(self, message: str, *, table: str = "", constraint: str = ""):
        super().__init__(message)
        self.table = table
        self.constraint = constraint


class PrimaryKeyViolation(ConstraintViolation):
    """Insert reused an existing primary key."""


class UniqueViolation(ConstraintViolation):
    """A unique index rejected a duplicate value."""


class ForeignKeyViolation(ConstraintViolation):
    """A referenced row does not exist, or a referencing row blocks delete."""


class NotNullViolation(ConstraintViolation):
    """A required column received ``None``."""


class CheckViolation(ConstraintViolation):
    """A row failed a declared CHECK predicate."""


class RowNotFound(StorageError):
    """Lookup by primary key found no row."""

    def __init__(self, table: str, key: object):
        super().__init__(f"no row with key {key!r} in table {table!r}")
        self.table = table
        self.key = key


class TransactionError(StorageError):
    """A transaction was used outside its legal lifecycle."""


class WalCorruption(StorageError):
    """The write-ahead log failed its integrity checks during recovery."""


class WalWriteError(StorageError):
    """Appending a commit record to the write-ahead log failed.

    Raised by the database while the writer lock is still held so the
    transaction can undo its in-memory changes; ``__cause__`` carries
    the underlying I/O or encoding error.
    """


# ---------------------------------------------------------------------------
# Domain errors
# ---------------------------------------------------------------------------


class DomainError(BFabricError):
    """Base class for domain/service-layer errors."""


class ValidationError(DomainError):
    """User input failed validation.

    ``field_errors`` maps field names to human-readable problems so that
    form layers can attach messages to the offending widgets.
    """

    def __init__(self, message: str, field_errors: dict[str, str] | None = None):
        super().__init__(message)
        self.field_errors = dict(field_errors or {})


class EntityNotFound(DomainError):
    """A service was asked to operate on a nonexistent entity."""

    def __init__(self, entity_type: str, entity_id: object):
        super().__init__(f"{entity_type} {entity_id!r} does not exist")
        self.entity_type = entity_type
        self.entity_id = entity_id


class StateError(DomainError):
    """An operation is not allowed in the entity's current state."""


class AccessDenied(BFabricError):
    """The acting principal lacks the permission for the operation."""

    def __init__(self, message: str, *, principal: str = "", permission: str = ""):
        super().__init__(message)
        self.principal = principal
        self.permission = permission


class AuthenticationError(BFabricError):
    """Login failed or the session is invalid/expired."""


# ---------------------------------------------------------------------------
# Resilience errors
# ---------------------------------------------------------------------------


class ResilienceError(BFabricError):
    """Base class for the fault-tolerance layer's own failures."""


class TimeoutExceeded(ResilienceError):
    """A guarded call ran longer than its :class:`Timeout` allows."""

    def __init__(self, message: str, *, site: str = "", seconds: float = 0.0):
        super().__init__(message)
        self.site = site
        self.seconds = seconds


class CircuitOpenError(ResilienceError):
    """A circuit breaker rejected the call without attempting it.

    Raised while the breaker is *open* (the endpoint failed repeatedly
    and its cooldown has not elapsed) so callers fail fast instead of
    piling onto a broken dependency.
    """

    def __init__(self, message: str, *, endpoint: str = ""):
        super().__init__(message)
        self.endpoint = endpoint


class RetryExhausted(ResilienceError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    ``attempts`` carries one message per attempt (the error chain);
    ``__cause__`` is the final attempt's exception.
    """

    def __init__(self, message: str, *, attempts: "list[str] | None" = None):
        super().__init__(message)
        self.attempts = list(attempts or [])


class QueueError(ResilienceError):
    """Base class for durable job-queue failures."""


class QueueSaturated(QueueError):
    """Enqueue rejected: the runnable backlog reached ``max_depth``.

    Backpressure, not an outage — producers should retry later or shed
    their own load.  ``depth`` carries the backlog size at rejection.
    """

    def __init__(self, message: str, *, depth: int = 0):
        super().__init__(message)
        self.depth = depth


class LeaseLost(QueueError):
    """A worker acted on a job whose lease it no longer holds.

    Raised by ack/nack/heartbeat when the visibility timeout expired and
    the job was redelivered (or completed) elsewhere.  The losing worker
    must discard its side effects, not report success.
    """

    def __init__(self, message: str, *, job_id: int = 0):
        super().__init__(message)
        self.job_id = job_id


class FaultInjected(BFabricError):
    """An error deliberately raised by the fault-injection harness."""


class CrashPoint(FaultInjected):
    """A simulated process kill at a registered crash site.

    The torture driver treats everything after this exception as
    unreachable: the 'crashed' database object is abandoned and recovery
    is exercised on a fresh one.
    """


# ---------------------------------------------------------------------------
# Replication errors
# ---------------------------------------------------------------------------


class ReplicationError(BFabricError):
    """Base class for WAL-shipping replication failures."""


class ReplicationProtocolError(ReplicationError):
    """A wire frame failed its length/CRC/handshake checks.

    Raised by the framing layer on a corrupt or out-of-sequence frame;
    the stream loop treats it as a connection loss and resynchronises
    from the handshake.
    """


class ReplicaLagExceeded(ReplicationError):
    """A replica's staleness bound was violated.

    Raised by ``Replica.wait_for`` on timeout and used by the routing
    facade to divert reads back to the primary.
    """

    def __init__(self, message: str, *, lag_seqs: int = 0):
        super().__init__(message)
        self.lag_seqs = lag_seqs


class NotPromoted(ReplicationError):
    """A write path was exercised on a replica that is still read-only."""


# ---------------------------------------------------------------------------
# Workflow errors
# ---------------------------------------------------------------------------


class WorkflowError(BFabricError):
    """Base class for workflow-engine errors."""


class WorkflowDefinitionError(WorkflowError):
    """A workflow definition is structurally invalid."""


class InvalidActionError(WorkflowError):
    """The requested action is not available in the current step."""

    def __init__(self, action: str, step: str, available: list[str] | None = None):
        avail = ", ".join(available or []) or "none"
        super().__init__(
            f"action {action!r} is not available in step {step!r} (available: {avail})"
        )
        self.action = action
        self.step = step
        self.available = list(available or [])


class WorkflowConditionFailed(WorkflowError):
    """An action's guard condition rejected the transition."""


class WorkflowTransitionFailed(WorkflowError):
    """A transition's functions kept failing after bounded retries.

    The instance has been moved to the terminal ``failed`` state; its
    context carries the full per-attempt error chain under
    ``error_chain``.  ``attempts`` repeats that chain here for callers
    that never look at the instance.
    """

    def __init__(self, message: str, *, attempts: "list[str] | None" = None):
        super().__init__(message)
        self.attempts = list(attempts or [])


# ---------------------------------------------------------------------------
# Integration errors
# ---------------------------------------------------------------------------


class ImportError_(BFabricError):
    """A data import failed (provider unreachable, checksum mismatch, ...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`ImportError`.
    """


class ProviderError(ImportError_):
    """A data provider could not list or deliver files."""


class ConnectorError(BFabricError):
    """An application connector failed to stage, launch, or collect."""


class ApplicationError(BFabricError):
    """A registered application rejected its input or crashed."""


class SearchError(BFabricError):
    """The search engine rejected a query or failed to index a document."""


class QuerySyntaxError(SearchError):
    """The advanced-search query string could not be parsed."""
