"""The all-in-one entry point: :class:`BFabric`.

Wires every subsystem — storage, ORM, security, audit, annotations,
tasks, workflows, data import, applications, search, browsing, admin —
into one object, the way the FGCZ deployment runs them together.

::

    from repro import BFabric

    system = BFabric()                      # in-memory
    admin = system.bootstrap()              # first admin principal
    scientist = system.add_user(admin, login="turker", full_name="Can T.")
    project = system.projects.create(scientist, "Arabidopsis light response")

Durable deployments pass a directory::

    system = BFabric("/var/lib/bfabric")    # WAL + managed file store
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.admin.errors import ErrorRecord, ErrorRegistry
from repro.admin.maintenance import MaintenanceService
from repro.annotations.schema import annotation_models
from repro.annotations.service import AnnotationService
from repro.apps.connectors import LocalPythonConnector
from repro.apps.experiments import ExperimentService
from repro.apps.registry import ApplicationRegistry
from repro.apps.results import ResultPackager
from repro.apps.rserve import RserveConnector, two_group_analysis
from repro.audit.log import AuditLog
from repro.audit.monitor import SystemMonitor
from repro.core.entities import ALL_MODELS, User
from repro.core.services.directory import DirectoryService
from repro.core.services.projects import ProjectService
from repro.core.services.samples import SampleService
from repro.core.services.workunits import WorkunitService
from repro.dataimport.importer import DataImportService, ProviderConfig
from repro.dataimport.store import ManagedStore
from repro.graphview.links import LinkGraph
from repro.graphview.provenance import ProvenanceTracer
from repro.admin.reports import UsageReports
from repro.obs import Observability
from repro.orm import Registry
from repro.resilience.dlq import DeadLetter, DeadLetterQueue
from repro.resilience.policies import BreakerRegistry
from repro.search.engine import SearchEngine
from repro.search.history import SavedQuery, SavedQueryStore
from repro.security.acl import AccessControl
from repro.security.auth import Authenticator, hash_password
from repro.security.principals import Principal, Role, SYSTEM
from repro.storage.database import Database
from repro.storage.sharding import ShardedDatabase, ShardRouter
from repro.tasks.queue import JobQueue, queue_models
from repro.tasks.rules import install_standard_rules
from repro.tasks.service import Task, TaskService
from repro.tasks.workers import WorkerPool
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.workflow.engine import WorkflowEngine, workflow_models

#: Reference tables replicated to every shard of a sharded deployment.
#: These are the FK targets of project-scoped data (users, institutes,
#: applications, annotation vocabulary) — keeping a copy on each shard
#: makes per-shard foreign-key checks complete, at the cost of one
#: cross-shard 2PC per (rare) reference-data write.
GLOBAL_TABLES = frozenset(
    {
        "organization",
        "institute",
        "user",
        "application",
        "attribute_def",
        "annotation",
        "data_provider",
    }
)


class BFabric:
    """The integrated system."""

    def __init__(
        self,
        path: "str | Path | None" = None,
        *,
        clock: Clock | None = None,
        durable: bool = True,
        durability: "str | None" = None,
        shards: "int | None" = None,
        index_on_events: bool = True,
        span_sample_rate: float = 1.0,
        queue_max_depth: "int | None" = None,
    ):
        """*shards* partitions the write path across N independent
        single-writer databases behind a :class:`ShardedDatabase`
        coordinator (see ``repro init --shards``).  ``None`` keeps the
        classic single database — unless the data directory was
        initialised sharded, in which case the persisted shard map wins
        and the deployment reopens with its original shard count."""
        self.clock = clock or SystemClock()
        self.path = Path(path) if path is not None else None

        # One observability hub shared by every subsystem, so a portal
        # request traces through search, storage, and the WAL, and all
        # layers report into the same metrics registry.
        # *span_sample_rate* tames span-log volume on busy deployments:
        # error and over-budget spans always land, OK spans are sampled.
        self.obs = Observability(
            clock=self.clock, span_sample_rate=span_sample_rate
        )
        db_dir = self.path / "db" if self.path else None
        if shards is None and db_dir is not None:
            shards = ShardedDatabase.stored_shard_count(db_dir)
        if shards is None:
            self.db = Database(
                db_dir, durable=durable, durability=durability, obs=self.obs
            )
        else:
            self.db = ShardedDatabase(
                db_dir,
                shards=shards,
                durable=durable,
                durability=durability,
                obs=self.obs,
                router=ShardRouter(global_tables=GLOBAL_TABLES),
            )
        self.registry = Registry(self.db)
        self.events = EventBus(obs=self.obs)
        self.monitor = SystemMonitor(self.db)
        self.audit = AuditLog(self.db, clock=self.clock)

        # Schema: core entities first (FK targets), then subsystem models.
        self.registry.register_all(ALL_MODELS)
        self.registry.register_all(annotation_models())
        self.registry.register(Task)
        self.registry.register_all(workflow_models())
        self.registry.register(ProviderConfig)
        self.registry.register(SavedQuery)
        self.registry.register(ErrorRecord)
        self.registry.register(DeadLetter)
        self.registry.register_all(queue_models())

        # Resilience: failed event deliveries persist as dead letters,
        # and one breaker registry is shared by the importer and the
        # application layer so the same endpoint always means the same
        # breaker (states surface on /admin/metrics).
        self.dlq = DeadLetterQueue(self.registry, clock=self.clock, obs=self.obs)
        self.events.attach_dlq(self.dlq)
        self.breakers = BreakerRegistry(clock=self.clock, obs=self.obs)

        # The durable job queue lives in the same database as the domain
        # rows, so background work inherits WAL durability, MVCC
        # introspection, sharding and replication.  Exhausted jobs
        # dead-letter with their durable job id, which is what makes
        # `repro dlq retry` work from a fresh process.  *queue_max_depth*
        # bounds the runnable backlog: enqueues past it shed with
        # QueueSaturated instead of queueing silently.
        self.queue = JobQueue(
            self.registry,
            clock=self.clock,
            obs=self.obs,
            dlq=self.dlq,
            max_depth=queue_max_depth,
        )
        self.dlq.attach_queue(self.queue)
        self._pools: list[WorkerPool] = []

        self.acl = AccessControl(self.db)
        self.auth = Authenticator(self.db, clock=self.clock)
        self.directory = DirectoryService(
            self.registry, audit=self.audit, clock=self.clock
        )
        self.projects = ProjectService(
            self.registry, audit=self.audit, acl=self.acl, events=self.events,
            clock=self.clock,
        )
        self.annotations = AnnotationService(
            self.registry, audit=self.audit, events=self.events, clock=self.clock
        )
        self.samples = SampleService(
            self.registry, audit=self.audit, acl=self.acl,
            annotations=self.annotations, events=self.events, clock=self.clock,
        )
        self.workunits = WorkunitService(
            self.registry, audit=self.audit, acl=self.acl, events=self.events,
            clock=self.clock,
        )
        self.tasks = TaskService(self.registry, audit=self.audit, clock=self.clock)
        self.workflow = WorkflowEngine(
            self.registry, audit=self.audit, events=self.events,
            clock=self.clock, obs=self.obs,
        )
        if self.path:
            store_dir = self.path / "store"
            self._store_tmp = None
        else:
            # In-memory systems get a throwaway store that vanishes with
            # the instance instead of littering the working directory.
            import tempfile

            self._store_tmp = tempfile.TemporaryDirectory(
                prefix="bfabric-store-"
            )
            store_dir = Path(self._store_tmp.name)
        self.store = ManagedStore(store_dir)
        self.imports = DataImportService(
            self.registry,
            workunits=self.workunits,
            samples=self.samples,
            workflow=self.workflow,
            store=self.store,
            audit=self.audit,
            events=self.events,
            clock=self.clock,
            obs=self.obs,
            breakers=self.breakers,
            queue=self.queue,
        )
        from repro.dataimport.access import ResourceAccessor

        self.access = ResourceAccessor(self.store, self.imports)
        self.applications = ApplicationRegistry(
            self.registry, audit=self.audit, events=self.events, clock=self.clock,
            obs=self.obs, breakers=self.breakers,
        )
        self.experiments = ExperimentService(
            self.registry,
            applications=self.applications,
            workunits=self.workunits,
            samples=self.samples,
            workflow=self.workflow,
            store=self.store,
            audit=self.audit,
            acl=self.acl,
            events=self.events,
            clock=self.clock,
            access=self.access,
            queue=self.queue,
        )
        self.results = ResultPackager(self.workunits, self.store)
        self.search = SearchEngine(acl=self.acl, obs=self.obs)
        self.saved_queries = SavedQueryStore(self.registry, clock=self.clock)
        self.links = LinkGraph(self.db)
        self.provenance = ProvenanceTracer(self.db)
        self.reports = UsageReports(self.db)
        self.errors = ErrorRegistry(self.registry, clock=self.clock)
        self.maintenance = MaintenanceService(
            self.db, audit=self.audit, search=self.search, workflow=self.workflow
        )

        install_standard_rules(self.events, self.tasks)
        if index_on_events:
            self._install_index_hooks()
        self._install_default_connectors()

    # -- bootstrap --------------------------------------------------------------------

    def bootstrap(
        self,
        *,
        login: str = "admin",
        full_name: str = "System Administrator",
        password: str = "admin",
    ) -> Principal:
        """Create (or fetch) the first admin user and return the principal."""
        existing = self.directory.user_by_login(login)
        if existing is not None:
            return self.directory.principal_for(existing)
        row = self.db.insert(
            User.__table__,
            {
                "login": login,
                "full_name": full_name,
                "role": "admin",
                "password_hash": hash_password(password),
                "email": "",
                "active": True,
                "created_at": self.clock.now(),
                "institute_id": None,
            },
        )
        self.audit.record(SYSTEM, "create", "user", row["id"], f"bootstrap {login}")
        return Principal(user_id=row["id"], login=login, role=Role.ADMIN)

    def add_user(
        self,
        actor: Principal,
        *,
        login: str,
        full_name: str,
        role: str = "scientist",
        password: str = "",
        email: str = "",
        institute_id: int | None = None,
    ) -> Principal:
        """Create a user and return their acting principal."""
        user = self.directory.create_user(
            actor,
            login=login,
            full_name=full_name,
            role=role,
            password=password,
            email=email,
            institute_id=institute_id,
        )
        return self.directory.principal_for(user)

    def recover(self) -> dict[str, int]:
        """Load snapshot + WAL of a durable deployment.

        Also restores the persisted metric state, so counters and
        latency histograms accumulate across process restarts.
        """
        stats = self.db.recover()
        if self.path is not None:
            self.obs.load(self.path / "obs")
        return stats

    def snapshot(self):
        """Open a lock-free MVCC read view over the whole deployment.

        Shorthand for :meth:`Database.snapshot`; use as a context
        manager so pruning can reclaim old row versions promptly::

            with system.snapshot() as snap:
                projects = snap.query("project").all()
                hits = system.search.search(principal, "heart", snapshot=snap)
        """
        return self.db.snapshot()

    def start_workers(
        self,
        *,
        workers: int = 2,
        lease_seconds: float = 30.0,
        name: str = "pool",
        **pool_options: Any,
    ) -> WorkerPool:
        """Start a worker pool draining the job queue.

        Once workers run, ``import_files`` and non-deferred experiment
        runs execute as background jobs (enqueue-then-wait), with
        crash-safe redelivery and per-provider concurrency limits.
        Stopped automatically (with a drain) by :meth:`close`.
        """
        pool = WorkerPool(
            self.queue,
            workers=workers,
            lease_seconds=lease_seconds,
            name=name,
            clock=self.clock,
            obs=self.obs,
            **pool_options,
        ).start()
        self._pools.append(pool)
        return pool

    def stop_workers(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop every pool this facade started."""
        for pool in self._pools:
            if pool.is_running():
                pool.stop(drain=drain, timeout=timeout)
        self._pools = []

    def close(self) -> None:
        self.stop_workers()
        if self.path is not None:
            self.obs.save(self.path / "obs")
        self.db.close()
        if self._store_tmp is not None:
            self._store_tmp.cleanup()
            self._store_tmp = None

    def __enter__(self) -> "BFabric":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- deployment statistics (the Final-Remark table) ----------------------------------

    def deployment_statistics(self) -> dict[str, int]:
        """Object counts in the paper's Final-Remark layout."""
        return {
            "Users": self.db.count("user"),
            "Projects": self.db.count("project"),
            "Institutes": self.db.count("institute"),
            "Organizations": self.db.count("organization"),
            "Samples": self.db.count("sample"),
            "Extracts": self.db.count("extract"),
            "Data Resources": self.db.count("data_resource"),
            "Workunits": self.db.count("workunit"),
        }

    # -- search wiring ----------------------------------------------------------------------

    def _install_index_hooks(self) -> None:
        """Keep the full-text index in sync with domain events."""

        def index_project(project, **_):
            self.search.index_document(
                "project", project.id,
                {"name": project.name, "description": project.description},
                project_id=project.id,
            )

        def index_sample(sample, **_):
            self.search.index_document(
                "sample", sample.id,
                {
                    "name": sample.name,
                    "species": sample.species,
                    "description": sample.description,
                    "attributes": " ".join(
                        f"{k} {v}" for k, v in sample.attributes.items()
                    ),
                },
                project_id=sample.project_id,
            )

        def index_extract(extract, **_):
            sample_row = self.db.get_or_none("sample", extract.sample_id) or {}
            self.search.index_document(
                "extract", extract.id,
                {
                    "name": extract.name,
                    "procedure": extract.procedure,
                    "description": extract.description,
                },
                project_id=sample_row.get("project_id"),
            )

        def index_workunit(workunit, **_):
            self.search.index_document(
                "workunit", workunit.id,
                {"name": workunit.name, "description": workunit.description},
                project_id=workunit.project_id,
            )

        def index_resource(resource, workunit, **_):
            fields = {"name": resource.name, "uri": resource.uri}
            content = self._readable_resource_content(resource.uri)
            if content:
                fields["content"] = content
            self.search.index_document(
                "data_resource", resource.id, fields,
                project_id=workunit.project_id,
            )

        def index_annotation(annotation, **_):
            self.search.index_document(
                "annotation", annotation.id,
                {"value": annotation.value},
                label=annotation.value,
            )

        def on_annotation_merged(keep, merged, **_):
            self.search.index_document(
                "annotation", keep.id, {"value": keep.value}, label=keep.value
            )
            self.search.remove_document("annotation", merged.id)

        def index_application(application, **_):
            self.search.index_document(
                "application", application.id,
                {"name": application.name, "description": application.description},
            )

        def on_import_rolled_back(workunit, resources=(), **_):
            # The compensation deleted the rows; drop their index docs
            # (they were indexed by workunit.created / resource.added
            # before the import failed).
            self.search.remove_document("workunit", workunit.id)
            for resource in resources:
                self.search.remove_document("data_resource", resource.id)

        self.events.subscribe("project.created", index_project)
        self.events.subscribe("import.rolled_back", on_import_rolled_back)
        self.events.subscribe("sample.registered", index_sample)
        self.events.subscribe("extract.registered", index_extract)
        self.events.subscribe("workunit.created", index_workunit)
        self.events.subscribe("resource.added", index_resource)
        self.events.subscribe("annotation.created", index_annotation)
        self.events.subscribe("annotation.released", index_annotation)
        self.events.subscribe("annotation.merged", on_annotation_merged)
        self.events.subscribe("application.registered", index_application)

    def reindex_all(self) -> int:
        """Rebuild the full-text index from the database (maintenance)."""
        with self.obs.tracer.span("search.reindex") as span:
            timer = self.obs.timer()
            count = self._reindex_all()
            self.obs.metrics.histogram(
                "search_index_build_seconds",
                "Full-text index rebuild duration",
            ).observe(timer.elapsed())
            span.set(documents=count)
            return count

    def _reindex_all(self) -> int:
        self.search.index.clear()
        count = 0
        for row in self.db.rows("project"):
            self.search.index_document(
                "project", row["id"],
                {"name": row["name"], "description": row["description"]},
                project_id=row["id"],
            )
            count += 1
        for row in self.db.rows("sample"):
            self.search.index_document(
                "sample", row["id"],
                {
                    "name": row["name"],
                    "species": row["species"],
                    "description": row["description"],
                },
                project_id=row["project_id"],
            )
            count += 1
        sample_projects = {
            row["id"]: row["project_id"] for row in self.db.rows("sample")
        }
        for row in self.db.rows("extract"):
            self.search.index_document(
                "extract", row["id"],
                {"name": row["name"], "procedure": row["procedure"]},
                project_id=sample_projects.get(row["sample_id"]),
            )
            count += 1
        workunit_projects = {}
        for row in self.db.rows("workunit"):
            workunit_projects[row["id"]] = row["project_id"]
            self.search.index_document(
                "workunit", row["id"],
                {"name": row["name"], "description": row["description"]},
                project_id=row["project_id"],
            )
            count += 1
        for row in self.db.rows("data_resource"):
            fields = {"name": row["name"], "uri": row["uri"]}
            content = self._readable_resource_content(row["uri"])
            if content:
                fields["content"] = content
            self.search.index_document(
                "data_resource", row["id"], fields,
                project_id=workunit_projects.get(row["workunit_id"]),
            )
            count += 1
        for row in self.db.rows("annotation"):
            if row["status"] in ("pending", "released"):
                self.search.index_document(
                    "annotation", row["id"], {"value": row["value"]},
                    label=row["value"],
                )
                count += 1
        for row in self.db.rows("application"):
            self.search.index_document(
                "application", row["id"],
                {"name": row["name"], "description": row["description"]},
            )
            count += 1
        return count

    #: Extensions whose stored bytes are full-text indexed (paper: "the
    #: content of readable attachments and data resources").
    READABLE_EXTENSIONS = (".txt", ".csv", ".tsv", ".md", ".log")
    #: Cap on indexed content per file; enough for reports, bounded for
    #: accidental large text files.
    _CONTENT_INDEX_LIMIT = 64 * 1024

    def _readable_resource_content(self, uri: str) -> str:
        """Text content of a stored, readable resource ('' otherwise)."""
        if not uri.startswith("store://"):
            return ""
        if not uri.lower().endswith(self.READABLE_EXTENSIONS):
            return ""
        try:
            path = self.store.path_for(uri)
            if not path.is_file():
                return ""
            raw = path.read_bytes()[: self._CONTENT_INDEX_LIMIT]
            return raw.decode("utf-8", errors="ignore")
        except (OSError, ValueError):
            return ""

    # -- default connectors ------------------------------------------------------------------

    def _install_default_connectors(self) -> None:
        """Install the simulated Rserve (with the demo's two-group
        analysis deployed) and a local Python connector."""
        rserve = RserveConnector()
        rserve.register_script("two_group_analysis", two_group_analysis)
        self.applications.register_connector(rserve)
        self.applications.register_connector(LocalPythonConnector())

    # -- convenience -----------------------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Everything the admin dashboard shows."""
        return {
            "deployment": self.deployment_statistics(),
            "storage": self.db.statistics(),
            "search": self.search.statistics(),
            "audit_entries": self.audit.count(),
            "observability": self.obs.statistics(),
        }
