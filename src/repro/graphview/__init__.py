"""Networked browsing of linked objects.

Paper §2 (Miscellaneous Functions): "B-Fabric supports a view on the
main data objects in a networked fashion.  Users can simply browse
bidirectionally through all objects linked together."

:class:`LinkGraph` materializes the object graph from the relational
state (foreign keys + annotation links) into a :mod:`networkx` graph and
answers neighborhood, path and reachability questions.
"""

from repro.graphview.links import LinkGraph, ObjectRef
from repro.graphview.provenance import ProvenanceRecord, ProvenanceTracer

__all__ = ["LinkGraph", "ObjectRef", "ProvenanceRecord", "ProvenanceTracer"]
