"""The object link graph."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.storage.database import Database


@dataclass(frozen=True, order=True)
class ObjectRef:
    """A typed reference to one domain object (a graph node)."""

    entity_type: str
    entity_id: int

    def __str__(self) -> str:
        return f"{self.entity_type}:{self.entity_id}"


#: ``table -> [(fk column, referenced entity type, edge label)]`` —
#: the FK edges worth browsing (bookkeeping FKs like created_by are
#: deliberately excluded to keep the view on *data* objects).
_BROWSE_EDGES: dict[str, list[tuple[str, str, str]]] = {
    "sample": [("project_id", "project", "belongs to")],
    "extract": [("sample_id", "sample", "extracted from")],
    "workunit": [
        ("project_id", "project", "belongs to"),
        ("application_id", "application", "produced by"),
    ],
    "data_resource": [
        ("workunit_id", "workunit", "contained in"),
        ("extract_id", "extract", "measured from"),
    ],
    "experiment": [
        ("project_id", "project", "belongs to"),
        ("application_id", "application", "feeds"),
    ],
    "institute": [("organization_id", "organization", "part of")],
    "user": [("institute_id", "institute", "member of")],
}


class LinkGraph:
    """Builds and queries the browseable object network."""

    def __init__(self, database: Database):
        self._db = database
        self._graph: nx.Graph = nx.Graph()

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    # -- construction --------------------------------------------------------------

    def rebuild(self) -> "LinkGraph":
        """Materialize the graph from the current database state."""
        graph: nx.Graph = nx.Graph()
        for table, edges in _BROWSE_EDGES.items():
            if not self._db.has_table(table):
                continue
            for row in self._db.rows(table):
                node = ObjectRef(table, row["id"])
                graph.add_node(node, label=row.get("name", str(node)))
                for column, target_type, label in edges:
                    target_id = row.get(column)
                    if target_id is None:
                        continue
                    target = ObjectRef(target_type, target_id)
                    if target not in graph:
                        target_row = self._db.get_or_none(target_type, target_id)
                        graph.add_node(
                            target,
                            label=(target_row or {}).get("name", str(target)),
                        )
                    graph.add_edge(node, target, label=label)
        if self._db.has_table("annotation_link"):
            for row in self._db.rows("annotation_link"):
                annotation = ObjectRef("annotation", row["annotation_id"])
                entity = ObjectRef(row["entity_type"], row["entity_id"])
                if annotation not in graph:
                    annotation_row = self._db.get_or_none(
                        "annotation", row["annotation_id"]
                    )
                    graph.add_node(
                        annotation,
                        label=(annotation_row or {}).get("value", str(annotation)),
                    )
                graph.add_node(entity)
                graph.add_edge(annotation, entity, label="annotates")
        self._graph = graph
        return self

    # -- queries ----------------------------------------------------------------------

    def neighbors(self, ref: ObjectRef) -> list[tuple[ObjectRef, str]]:
        """Directly linked objects with the link labels (both directions)."""
        if ref not in self._graph:
            return []
        result = []
        for other in self._graph.neighbors(ref):
            label = self._graph.edges[ref, other].get("label", "linked")
            result.append((other, label))
        return sorted(result)

    def neighborhood(self, ref: ObjectRef, radius: int = 2) -> list[ObjectRef]:
        """Objects within *radius* hops (the browse page's context)."""
        if ref not in self._graph:
            return []
        ego = nx.ego_graph(self._graph, ref, radius=radius)
        return sorted(node for node in ego.nodes if node != ref)

    def path(self, start: ObjectRef, end: ObjectRef) -> list[ObjectRef]:
        """Shortest link path between two objects ([] when unconnected)."""
        try:
            return list(nx.shortest_path(self._graph, start, end))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []

    def connected(self, start: ObjectRef, end: ObjectRef) -> bool:
        return bool(self.path(start, end))

    def component_of(self, ref: ObjectRef) -> set[ObjectRef]:
        """Everything transitively linked to *ref*."""
        if ref not in self._graph:
            return set()
        return set(nx.node_connected_component(self._graph, ref))

    def statistics(self) -> dict[str, int]:
        return {
            "nodes": self._graph.number_of_nodes(),
            "edges": self._graph.number_of_edges(),
            "components": nx.number_connected_components(self._graph)
            if self._graph.number_of_nodes()
            else 0,
        }

    def nodes_of_type(self, entity_type: str) -> Iterable[ObjectRef]:
        return (n for n in self._graph.nodes if n.entity_type == entity_type)
