"""Provenance: how a result came to be.

Paper §1: "Since experimental data is captured together with annotations
like instrument and processing parameters, experiments become
reproducible for third parties."  The tracer assembles exactly that
record for a workunit: the application and its run parameters, every
input resource with checksum and origin, the extracts/samples/project
behind the inputs, and the annotations attached along the way — enough
for a third party to re-run the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import EntityNotFound
from repro.storage.database import Database


@dataclass
class ProvenanceRecord:
    """The full derivation record of one workunit."""

    workunit: dict[str, Any]
    project: dict[str, Any]
    application: dict[str, Any] | None
    parameters: dict[str, Any]
    inputs: list[dict[str, Any]] = field(default_factory=list)
    outputs: list[dict[str, Any]] = field(default_factory=list)
    extracts: list[dict[str, Any]] = field(default_factory=list)
    samples: list[dict[str, Any]] = field(default_factory=list)
    annotations: list[dict[str, Any]] = field(default_factory=list)
    #: Workunits whose outputs fed this one (transitive re-analysis).
    upstream_workunits: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "workunit": self.workunit,
            "project": self.project,
            "application": self.application,
            "parameters": self.parameters,
            "inputs": self.inputs,
            "outputs": self.outputs,
            "extracts": self.extracts,
            "samples": self.samples,
            "annotations": self.annotations,
            "upstream_workunits": self.upstream_workunits,
        }

    def render_text(self) -> str:
        """A readable derivation summary (the portal's provenance box)."""
        lines = [
            f"Workunit #{self.workunit['id']}: {self.workunit['name']} "
            f"[{self.workunit['status']}]",
            f"  project: {self.project['name']}",
        ]
        if self.application:
            lines.append(
                f"  application: {self.application['name']} "
                f"(connector {self.application['connector']})"
            )
            lines.append(f"  parameters: {self.parameters}")
        if self.inputs:
            lines.append(f"  inputs ({len(self.inputs)}):")
            for resource in self.inputs:
                checksum = resource["checksum"][:12] or "-"
                lines.append(
                    f"    {resource['name']}  sha256:{checksum}  "
                    f"({resource['uri']})"
                )
        if self.samples:
            sample_names = ", ".join(s["name"] for s in self.samples)
            lines.append(f"  biological sources: {sample_names}")
        if self.annotations:
            values = ", ".join(a["value"] for a in self.annotations)
            lines.append(f"  annotations: {values}")
        if self.upstream_workunits:
            lines.append(
                "  derived from workunit(s): "
                + ", ".join(map(str, self.upstream_workunits))
            )
        return "\n".join(lines)


class ProvenanceTracer:
    """Builds :class:`ProvenanceRecord` objects from the database."""

    def __init__(self, database: Database):
        self._db = database

    def trace(self, workunit_id: int) -> ProvenanceRecord:
        workunit = self._db.get_or_none("workunit", workunit_id)
        if workunit is None:
            raise EntityNotFound("Workunit", workunit_id)
        project = self._db.get("project", workunit["project_id"])
        application = (
            self._db.get_or_none("application", workunit["application_id"])
            if workunit.get("application_id")
            else None
        )

        resources = (
            self._db.query("data_resource")
            .where("workunit_id", "=", workunit_id)
            .order_by("id")
            .all()
        )
        inputs = [r for r in resources if r["is_input"]]
        outputs = [r for r in resources if not r["is_input"]]

        extract_ids = sorted(
            {r["extract_id"] for r in inputs if r["extract_id"] is not None}
        )
        extracts = [self._db.get("extract", eid) for eid in extract_ids]
        sample_ids = sorted({e["sample_id"] for e in extracts})
        samples = [self._db.get("sample", sid) for sid in sample_ids]

        annotations: list[dict[str, Any]] = []
        if self._db.has_table("annotation_link"):
            seen: set[int] = set()
            for entity_type, ids in (
                ("sample", sample_ids), ("extract", extract_ids),
            ):
                for entity_id in ids:
                    links = (
                        self._db.query("annotation_link")
                        .where("entity_type", "=", entity_type)
                        .where("entity_id", "=", entity_id)
                        .all()
                    )
                    for link in links:
                        if link["annotation_id"] in seen:
                            continue
                        seen.add(link["annotation_id"])
                        annotations.append(
                            self._db.get("annotation", link["annotation_id"])
                        )

        # An input whose URI points into another workunit's store area
        # makes that workunit upstream (re-analysis chains).
        upstream: set[int] = set()
        for resource in inputs:
            uri = resource["uri"]
            if uri.startswith("store://workunit_"):
                try:
                    upstream_id = int(
                        uri[len("store://workunit_"):].split("/", 1)[0]
                    )
                except ValueError:
                    continue
                if upstream_id != workunit_id:
                    upstream.add(upstream_id)

        return ProvenanceRecord(
            workunit=workunit,
            project=project,
            application=application,
            parameters=dict(workunit.get("parameters", {})),
            inputs=inputs,
            outputs=outputs,
            extracts=extracts,
            samples=samples,
            annotations=annotations,
            upstream_workunits=sorted(upstream),
        )

    def trace_chain(self, workunit_id: int, *, max_depth: int = 10) -> list[ProvenanceRecord]:
        """The workunit's record plus its transitive upstream records."""
        records: list[ProvenanceRecord] = []
        seen: set[int] = set()
        frontier = [workunit_id]
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: list[int] = []
            for wid in frontier:
                if wid in seen:
                    continue
                seen.add(wid)
                record = self.trace(wid)
                records.append(record)
                next_frontier.extend(record.upstream_workunits)
            frontier = next_frontier
            depth += 1
        return records
