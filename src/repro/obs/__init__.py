"""Observability: metrics, tracing, structured logs.

The operational introspection layer the paper's admin screens imply
(Figures 13–16) and every future performance PR measures against.  See
:mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`, :mod:`repro.obs.logs`
for the three parts and :class:`repro.obs.hub.Observability` for the
bundle the facade wires through every subsystem.
"""

from repro.obs.hub import Observability
from repro.obs.logs import StructuredLog, file_sink
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Observability",
    "StructuredLog",
    "file_sink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
]
