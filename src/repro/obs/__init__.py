"""Observability: metrics, tracing, structured logs, diagnostics.

The operational introspection layer the paper's admin screens imply
(Figures 13–16) and every future performance PR measures against.  See
:mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`, :mod:`repro.obs.logs`
for the three raw streams, :mod:`repro.obs.slowlog` /
:mod:`repro.obs.history` / :mod:`repro.obs.bundle` for the diagnostics
layered on top, and :class:`repro.obs.hub.Observability` for the bundle
the facade wires through every subsystem.
"""

from repro.obs.bundle import (
    BUNDLE_SCHEMA,
    collect_debug_bundle,
    validate_debug_bundle,
    write_debug_bundle,
)
from repro.obs.history import MetricsHistory
from repro.obs.hub import Observability
from repro.obs.logs import StructuredLog, file_sink
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowOpLog
from repro.obs.tracing import Span, TraceContext, Tracer

__all__ = [
    "Observability",
    "StructuredLog",
    "file_sink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "TraceContext",
    "Tracer",
    "SlowOpLog",
    "MetricsHistory",
    "BUNDLE_SCHEMA",
    "collect_debug_bundle",
    "validate_debug_bundle",
    "write_debug_bundle",
]
