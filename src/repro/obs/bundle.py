"""Flight recorder: one JSON bundle for postmortems.

``repro debug-bundle`` (and the replication torture driver, on invariant
failure) collects everything an operator needs to reconstruct "what just
happened" into a single timestamped JSON file: recent traces grouped by
trace id, the slow-op log, the metrics history ring, a current metrics
snapshot, the structured-log tail, and the storage/replication state
that places all of it on the commit timeline (committed seq, WAL
generation and tail offset, history id, open MVCC snapshots, per-replica
lag).

The bundle is self-describing (``schema: repro-debug/v1``);
:func:`validate_debug_bundle` is the shape check CI runs against the CLI
output, so the format cannot silently drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.hub import Observability

#: Self-describing schema tag carried by every bundle.
BUNDLE_SCHEMA = "repro-debug/v1"

#: Bounds keeping a bundle readable (and its file small) even when the
#: rings are full.
MAX_TRACES = 100
MAX_LOG_TAIL = 200


def collect_debug_bundle(
    system: Any = None,
    *,
    obs: "Observability | None" = None,
    db: Any = None,
    publisher: Any = None,
    replicas: "list | tuple" = (),
    note: str = "",
) -> dict[str, Any]:
    """Gather one diagnostic bundle from whatever parts are present.

    *system* is a :class:`~repro.facade.BFabric` facade (supplies
    ``obs`` and ``db`` unless overridden); *publisher* / *replicas* are
    the replication endpoints to interrogate, when the deployment has
    them.  Every section degrades to an empty value rather than failing
    — a flight recorder that crashes during the crash is worthless.
    """
    if obs is None and system is not None:
        obs = getattr(system, "obs", None)
    if db is None and system is not None:
        db = getattr(system, "db", None)

    bundle: dict[str, Any] = {
        "schema": BUNDLE_SCHEMA,
        "generated_at": obs.clock.isoformat() if obs is not None else "",
        "note": note,
        "observability": {},
        "traces": {},
        "slow_ops": [],
        "metrics": {},
        "metrics_history": [],
        "log_tail": [],
        "storage": {},
        "replication": {"publisher": None, "replicas": []},
    }

    if obs is not None:
        try:
            bundle["observability"] = obs.statistics()
            trace_ids = obs.tracer.trace_ids()[-MAX_TRACES:]
            bundle["traces"] = {
                trace_id: [
                    span.to_record() for span in obs.tracer.trace(trace_id)
                ]
                for trace_id in trace_ids
            }
            bundle["slow_ops"] = obs.slowlog.entries()
            bundle["metrics"] = obs.metrics.snapshot()
            bundle["metrics_history"] = obs.history.samples()
            bundle["log_tail"] = obs.log.records(limit=MAX_LOG_TAIL)
        except Exception as exc:  # pragma: no cover - defensive
            bundle["observability"] = {"error": repr(exc)}

    if db is not None:
        try:
            stats = db.statistics()
            wal = getattr(db, "wal", None)
            bundle["storage"] = {
                "history_id": getattr(db, "history_id", ""),
                "durability": stats.get("durability", ""),
                "tables": stats.get("tables", {}),
                "total_rows": stats.get("total_rows", 0),
                "transactions": stats.get("transactions", 0),
                "wal_bytes": stats.get("wal_bytes", 0),
                "wal_generation": wal.generation() if wal is not None else 0,
                "wal_tail_offset": wal.tail_offset() if wal is not None else 0,
                "mvcc": stats.get("mvcc", {}),
                "query_cache": stats.get("query_cache", {}),
            }
        except Exception as exc:
            bundle["storage"] = {"error": repr(exc)}

    if publisher is not None:
        try:
            bundle["replication"]["publisher"] = publisher.status()
        except Exception as exc:
            bundle["replication"]["publisher"] = {"error": repr(exc)}
    for replica in replicas:
        try:
            bundle["replication"]["replicas"].append(replica.status())
        except Exception as exc:
            bundle["replication"]["replicas"].append({"error": repr(exc)})

    return bundle


#: Required top-level sections and their types — the schema check.
_SECTIONS: tuple[tuple[str, type], ...] = (
    ("schema", str),
    ("generated_at", str),
    ("note", str),
    ("observability", dict),
    ("traces", dict),
    ("slow_ops", list),
    ("metrics", dict),
    ("metrics_history", list),
    ("log_tail", list),
    ("storage", dict),
    ("replication", dict),
)

_SPAN_KEYS = ("span", "span_id", "trace_id", "duration", "status")
_SLOW_KEYS = ("name", "duration", "threshold")


def validate_debug_bundle(bundle: Any) -> list[str]:
    """Shape-check a bundle; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(bundle, dict):
        return ["bundle is not a JSON object"]
    for key, expected in _SECTIONS:
        if key not in bundle:
            problems.append(f"missing section {key!r}")
        elif not isinstance(bundle[key], expected):
            problems.append(
                f"section {key!r} should be {expected.__name__}, "
                f"got {type(bundle[key]).__name__}"
            )
    if problems:
        return problems
    if bundle["schema"] != BUNDLE_SCHEMA:
        problems.append(
            f"schema is {bundle['schema']!r}, expected {BUNDLE_SCHEMA!r}"
        )
    for trace_id, spans in bundle["traces"].items():
        if not isinstance(spans, list) or not spans:
            problems.append(f"trace {trace_id!r} has no spans")
            continue
        for span in spans:
            if not isinstance(span, dict) or any(
                key not in span for key in _SPAN_KEYS
            ):
                problems.append(f"trace {trace_id!r} has a malformed span")
                break
            if span["trace_id"] != trace_id:
                problems.append(
                    f"trace {trace_id!r} contains a span of "
                    f"{span['trace_id']!r}"
                )
                break
    for index, entry in enumerate(bundle["slow_ops"]):
        if not isinstance(entry, dict) or any(
            key not in entry for key in _SLOW_KEYS
        ):
            problems.append(f"slow_ops[{index}] is malformed")
            break
    for index, sample in enumerate(bundle["metrics_history"]):
        if not isinstance(sample, dict) or not isinstance(
            sample.get("values"), dict
        ):
            problems.append(f"metrics_history[{index}] is malformed")
            break
    replication = bundle["replication"]
    if "publisher" not in replication or "replicas" not in replication:
        problems.append("replication section missing publisher/replicas")
    elif not isinstance(replication["replicas"], list):
        problems.append("replication.replicas should be a list")
    try:
        json.dumps(bundle)
    except (TypeError, ValueError) as exc:
        problems.append(f"bundle is not JSON-serializable: {exc}")
    return problems


def write_debug_bundle(
    bundle: dict[str, Any],
    directory: "str | Path",
    *,
    prefix: str = "debug-bundle",
) -> Path:
    """Write *bundle* as a timestamped JSON file; returns its path."""
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    stamp = str(bundle.get("generated_at") or "").replace(":", "-") or "unknown"
    target = target_dir / f"{prefix}-{stamp}.json"
    # Same-second bundles must not clobber each other (a torture run can
    # fail several cases inside one second).
    counter = 1
    while target.exists():
        counter += 1
        target = target_dir / f"{prefix}-{stamp}.{counter}.json"
    target.write_text(
        json.dumps(bundle, indent=2, sort_keys=True, default=str),
        encoding="utf-8",
    )
    return target
