"""Metrics history: a ring of periodic registry snapshots.

A live registry only knows *totals* — ``storage_commits_total`` says how
many commits ever happened, not whether the system is committing right
now.  :class:`MetricsHistory` captures a compact scalar sample of every
family on demand (or from a background sampler thread) into a bounded
ring, which turns totals into *windowed* readings: commits/s over the
last minute, the replication-lag trend, the cache hit-rate as it moved.

Samples are keyed by ``name`` or ``name{label=value,…}``; counters and
gauges record their value, histograms their ``count`` and ``sum`` (as
``name.count`` / ``name.sum``), which is enough to derive rates and
windowed means without retaining reservoirs.

Each sample carries the clock's monotonic reading, so rate math is
deterministic under :class:`~repro.util.clock.ManualClock` and immune
to wall-clock steps.  The ring round-trips through
:meth:`state`/:meth:`restore` so the CLI can compute windowed rates
over a portal session that has since exited.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.util.clock import Clock, SystemClock


def sample_key(name: str, labels: dict[str, str] | None = None) -> str:
    """The flat key one metric child gets inside a sample."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsHistory:
    """Bounded ring of timestamped scalar snapshots of one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        clock: Clock | None = None,
        capacity: int = 512,
    ):
        self._registry = registry
        self._clock = clock or SystemClock()
        self._capacity = capacity
        self._lock = threading.Lock()
        self._samples: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._sampler: threading.Thread | None = None
        self._stop = threading.Event()

    # -- capturing -----------------------------------------------------------

    def capture(self) -> dict[str, Any]:
        """Take one sample now; returns it (also appended to the ring)."""
        values: dict[str, float] = {}
        for family in self._registry.families():
            for labels, child in family.samples():
                key = sample_key(family.name, labels)
                if family.kind == "histogram":
                    summary = child.summary()
                    values[f"{key}.count"] = float(summary["count"])
                    values[f"{key}.sum"] = float(summary["sum"])
                else:
                    values[key] = float(child.value)
        sample = {
            "ts": self._clock.isoformat(),
            "at": float(self._clock.monotonic()),
            "values": values,
        }
        with self._lock:
            self._samples.append(sample)
        return sample

    def start(self, interval: float = 5.0) -> None:
        """Capture every *interval* seconds on a daemon thread."""
        if interval <= 0:
            raise ValueError("sampler interval must be > 0")
        if self._sampler is not None and self._sampler.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.capture()

        self._sampler = threading.Thread(
            target=loop, name="metrics-history", daemon=True
        )
        self._sampler.start()

    def stop(self) -> None:
        self._stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=2.0)
            self._sampler = None

    # -- reading -------------------------------------------------------------

    def samples(self, window: float | None = None) -> list[dict[str, Any]]:
        """Samples oldest first; *window* keeps only the trailing seconds."""
        with self._lock:
            found = list(self._samples)
        if window is not None and found:
            cutoff = found[-1]["at"] - window
            found = [s for s in found if s["at"] >= cutoff]
        return found

    def series(
        self, key: str, *, window: float | None = None
    ) -> list[tuple[str, float]]:
        """``(ts, value)`` readings of one sample key, oldest first."""
        return [
            (s["ts"], s["values"][key])
            for s in self.samples(window)
            if key in s["values"]
        ]

    def rate(self, key: str, *, window: float | None = None) -> float | None:
        """Per-second increase of a cumulative *key* over the window.

        ``None`` when fewer than two samples carry the key or no time
        passed between them.  Negative deltas (a counter restored from
        an older state file) clamp to 0 — rates never run backwards.
        """
        points = [
            (s["at"], s["values"][key])
            for s in self.samples(window)
            if key in s["values"]
        ]
        if len(points) < 2:
            return None
        (t0, v0), (t1, v1) = points[0], points[-1]
        if t1 <= t0:
            return None
        return max(0.0, v1 - v0) / (t1 - t0)

    def window_summary(self, window: float | None = None) -> dict[str, Any]:
        """Every key's windowed reading: rate for cumulative keys
        (counters, histogram ``.count``/``.sum``), first/last/min/max
        for gauges — the raw material for dashboards and the CLI."""
        samples = self.samples(window)
        if len(samples) < 2:
            return {"samples": len(samples), "span_seconds": 0.0, "keys": {}}
        span = samples[-1]["at"] - samples[0]["at"]
        kinds = {
            family.name: family.kind for family in self._registry.families()
        }
        keys: dict[str, Any] = {}
        names = set()
        for sample in samples:
            names.update(sample["values"])
        for key in sorted(names):
            base = key.split("{", 1)[0]
            cumulative = key.endswith((".count", ".sum"))
            if not cumulative:
                cumulative = kinds.get(base) == "counter"
            points = [
                (s["at"], s["values"][key])
                for s in samples
                if key in s["values"]
            ]
            if cumulative:
                rate = None
                if len(points) >= 2 and points[-1][0] > points[0][0]:
                    delta = max(0.0, points[-1][1] - points[0][1])
                    rate = delta / (points[-1][0] - points[0][0])
                keys[key] = {"rate": rate, "last": points[-1][1]}
            else:
                values = [v for _, v in points]
                keys[key] = {
                    "first": values[0],
                    "last": values[-1],
                    "min": min(values),
                    "max": max(values),
                }
        return {
            "samples": len(samples),
            "span_seconds": span,
            "keys": keys,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    # -- persistence ---------------------------------------------------------

    def state(self) -> dict[str, Any]:
        with self._lock:
            return {"samples": list(self._samples)}

    def restore(self, state: dict[str, Any]) -> None:
        samples = state.get("samples")
        if not isinstance(samples, list):
            return
        with self._lock:
            self._samples.clear()
            for sample in samples[-self._capacity:]:
                if (
                    isinstance(sample, dict)
                    and isinstance(sample.get("values"), dict)
                    and "at" in sample
                ):
                    self._samples.append(sample)
