"""The observability hub: one object bundling metrics + tracing + logs.

Every instrumented subsystem takes an optional ``obs`` argument; when the
caller (normally :class:`repro.facade.BFabric`) does not supply one, the
subsystem creates a private hub so instrumentation code never branches.
The facade shares a single hub across all layers, which is what makes a
portal request show up as one trace spanning search, storage and the WAL.

The hub also owns the diagnostic rings layered on top of the raw
streams: the slow-op log (spans over their per-name budget, promoted by
the span sink) and the metrics history (periodic registry snapshots for
windowed rates).  The span sink applies the *sampling knob*: error and
slow spans always become log records, OK spans are sampled at
``span_sample_rate`` so a bench-QPS commit stream cannot flood the
structured log — the tracer's ring and the slow log always see every
span regardless.

Durable deployments persist the metric state, slow log, and metrics
history next to the database (:meth:`Observability.save` /
:meth:`Observability.load`), so counters accumulate across process
restarts and the CLI can report on sessions served by the portal.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.obs.history import MetricsHistory
from repro.obs.logs import StructuredLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowOpLog
from repro.obs.tracing import Span, Tracer
from repro.util.clock import Clock, SystemClock

#: File (inside the deployment's ``obs`` directory) carrying metric state.
METRICS_STATE_NAME = "metrics.json"
#: Slow-op log entries, same directory.
SLOWLOG_STATE_NAME = "slowlog.json"
#: Metrics-history samples, same directory.
HISTORY_STATE_NAME = "history.json"


class Observability:
    """Shared metrics registry, tracer, structured log, and diagnostics."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        namespace: str = "bfabric",
        span_sample_rate: float = 1.0,
        slow_thresholds: "dict[str, float] | None" = None,
    ):
        if not 0.0 <= span_sample_rate <= 1.0:
            raise ValueError("span_sample_rate must be within [0, 1]")
        self.clock = clock or SystemClock()
        self.metrics = MetricsRegistry(namespace=namespace)
        self.log = StructuredLog(clock=self.clock)
        self.slowlog = SlowOpLog(clock=self.clock, thresholds=slow_thresholds)
        self.history = MetricsHistory(self.metrics, clock=self.clock)
        self.tracer = Tracer(clock=self.clock, sink=self._record_span)
        self._sample_rate = span_sample_rate
        # Deterministic rate control: an accumulator crossing 1.0 keeps
        # a span, so a rate of 0.25 logs exactly every 4th OK span — no
        # RNG, so tests and replays see the same decisions.
        self._sample_lock = threading.Lock()
        self._sample_acc = 0.0
        self._spans_sampled_out = 0

    @property
    def span_sample_rate(self) -> float:
        return self._sample_rate

    def set_span_sampling(self, rate: float) -> None:
        """Adjust the OK-span log sampling rate (1.0 = log every span)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("span_sample_rate must be within [0, 1]")
        with self._sample_lock:
            self._sample_rate = rate
            self._sample_acc = 0.0

    def _sample_ok_span(self) -> bool:
        with self._sample_lock:
            if self._sample_rate >= 1.0:
                return True
            self._sample_acc += self._sample_rate
            if self._sample_acc >= 1.0:
                self._sample_acc -= 1.0
                return True
            self._spans_sampled_out += 1
            return False

    def _record_span(self, span: Span) -> None:
        # The slow check sees every span (promotion must not depend on
        # sampling); only the structured-log line is rate-limited.
        slow = self.slowlog.consider(span)
        if span.status == "ok" and not slow and not self._sample_ok_span():
            return
        self.log.log("span", **{
            k: v for k, v in span.to_record().items() if k != "span"
        }, name=span.name)

    # -- conveniences --------------------------------------------------------

    def timer(self):
        """Start a monotonic timer on the shared clock."""
        return self.clock.timer()

    def render_metrics(self) -> str:
        return self.metrics.render_text()

    def statistics(self) -> dict:
        """Admin-dashboard summary of the layer itself."""
        with self._sample_lock:
            sampled_out = self._spans_sampled_out
        return {
            "metric_families": len(self.metrics.families()),
            "finished_spans": len(self.tracer.finished()),
            "log_records": self.log.emitted,
            "slow_ops": self.slowlog.promoted,
            "history_samples": len(self.history),
            "span_sample_rate": self._sample_rate,
            "spans_sampled_out": sampled_out,
        }

    # -- persistence ---------------------------------------------------------

    def save(self, directory: "str | Path") -> Path:
        """Write metric/slowlog/history state under *directory*.

        Returns the metric-state path (the load sentinel).  Each file is
        written atomically so a crash mid-save leaves the previous
        generation intact.
        """
        target_dir = Path(directory)
        target_dir.mkdir(parents=True, exist_ok=True)
        states = (
            (METRICS_STATE_NAME, self.metrics.state()),
            (SLOWLOG_STATE_NAME, self.slowlog.state()),
            (HISTORY_STATE_NAME, self.history.state()),
        )
        for name, state in states:
            target = target_dir / name
            tmp = target.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(state, separators=(",", ":"), default=str),
                encoding="utf-8",
            )
            tmp.replace(target)
        return target_dir / METRICS_STATE_NAME

    def load(self, directory: "str | Path") -> bool:
        """Restore state saved by :meth:`save`; False if metrics absent.

        The slow log and history are best-effort extras: a missing or
        torn file for either never blocks startup (nor the metrics).
        """
        source_dir = Path(directory)
        source = source_dir / METRICS_STATE_NAME
        if not source.exists():
            return False
        try:
            state = json.loads(source.read_text(encoding="utf-8"))
        except ValueError:
            return False  # a torn write must not block startup
        self.metrics.restore(state)
        for name, target in (
            (SLOWLOG_STATE_NAME, self.slowlog),
            (HISTORY_STATE_NAME, self.history),
        ):
            path = source_dir / name
            if not path.exists():
                continue
            try:
                target.restore(json.loads(path.read_text(encoding="utf-8")))
            except ValueError:
                continue
        return True
