"""The observability hub: one object bundling metrics + tracing + logs.

Every instrumented subsystem takes an optional ``obs`` argument; when the
caller (normally :class:`repro.facade.BFabric`) does not supply one, the
subsystem creates a private hub so instrumentation code never branches.
The facade shares a single hub across all layers, which is what makes a
portal request show up as one trace spanning search, storage and the WAL.

Durable deployments persist the metric state next to the database
(:meth:`Observability.save` / :meth:`Observability.load`), so counters
and latency histograms accumulate across process restarts and the CLI
can report on sessions served by the portal.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.logs import StructuredLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer
from repro.util.clock import Clock, SystemClock

#: File (inside the deployment's ``obs`` directory) carrying metric state.
METRICS_STATE_NAME = "metrics.json"


class Observability:
    """Shared metrics registry, tracer, and structured log."""

    def __init__(self, *, clock: Clock | None = None, namespace: str = "bfabric"):
        self.clock = clock or SystemClock()
        self.metrics = MetricsRegistry(namespace=namespace)
        self.log = StructuredLog(clock=self.clock)
        self.tracer = Tracer(clock=self.clock, sink=self._record_span)

    def _record_span(self, span: Span) -> None:
        self.log.log("span", **{
            k: v for k, v in span.to_record().items() if k != "span"
        }, name=span.name)

    # -- conveniences --------------------------------------------------------

    def timer(self):
        """Start a monotonic timer on the shared clock."""
        return self.clock.timer()

    def render_metrics(self) -> str:
        return self.metrics.render_text()

    def statistics(self) -> dict:
        """Admin-dashboard summary of the layer itself."""
        return {
            "metric_families": len(self.metrics.families()),
            "finished_spans": len(self.tracer.finished()),
            "log_records": self.log.emitted,
        }

    # -- persistence ---------------------------------------------------------

    def save(self, directory: "str | Path") -> Path:
        """Write the metric state under *directory*; returns the file path."""
        target_dir = Path(directory)
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / METRICS_STATE_NAME
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.metrics.state(), separators=(",", ":")),
            encoding="utf-8",
        )
        tmp.replace(target)
        return target

    def load(self, directory: "str | Path") -> bool:
        """Restore metric state saved by :meth:`save`; False if absent."""
        source = Path(directory) / METRICS_STATE_NAME
        if not source.exists():
            return False
        try:
            state = json.loads(source.read_text(encoding="utf-8"))
        except ValueError:
            return False  # a torn write must not block startup
        self.metrics.restore(state)
        return True
