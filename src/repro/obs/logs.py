"""Structured logging: one JSON line per operational event.

Instrumented subsystems emit one record per span, commit, and request.
Records are plain dicts with a timestamp and an ``event`` discriminator;
the log keeps a bounded in-memory ring (for the admin screens and tests)
and forwards every record to an optional *sink* — a callable, so a
deployment can tee records to a file, a socket, or a collector without
the instrumented code knowing.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, IO

Sink = Callable[[dict[str, Any]], None]


def file_sink(path: "str | Path") -> Sink:
    """A sink appending JSON lines to *path* (line-buffered)."""
    handle: IO[str] = open(Path(path), "a", encoding="utf-8", buffering=1)

    def write(record: dict[str, Any]) -> None:
        handle.write(json.dumps(record, default=str, sort_keys=True) + "\n")

    return write


class StructuredLog:
    """Bounded in-memory record ring with pluggable fan-out."""

    def __init__(self, *, clock=None, capacity: int = 2048):
        from repro.util.clock import SystemClock

        self._clock = clock or SystemClock()
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._sinks: list[Sink] = []
        self._lock = threading.Lock()
        self._emitted = 0

    def add_sink(self, sink: Sink) -> None:
        """Forward every future record to *sink* as well."""
        self._sinks.append(sink)

    def log(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the record that was stored."""
        record = {"ts": self._clock.isoformat(), "event": event, **fields}
        with self._lock:
            self._records.append(record)
            self._emitted += 1
        for sink in self._sinks:
            sink(record)
        return record

    # -- reading -------------------------------------------------------------

    def records(self, event: str | None = None, *, limit: int | None = None) -> list[dict[str, Any]]:
        """Stored records oldest-first, optionally filtered/limited."""
        with self._lock:
            records = list(self._records)
        if event is not None:
            records = [r for r in records if r.get("event") == event]
        if limit is not None:
            records = records[-limit:]
        return records

    @property
    def emitted(self) -> int:
        """Total records ever logged (the ring may have dropped some)."""
        return self._emitted

    def jsonl(self, *, limit: int | None = None) -> str:
        """The stored records as JSON lines (newest last)."""
        return "\n".join(
            json.dumps(record, default=str, sort_keys=True)
            for record in self.records(limit=limit)
        )
