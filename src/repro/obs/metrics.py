"""The metrics registry: counters, gauges, histograms, exposition.

Dependency-free (stdlib only).  Every instrument belongs to a *family*
(one name + help text + fixed label names); a family with labels has one
*child* per distinct label combination, obtained via :meth:`_Family.labels`.
Instrumented code caches children on hot paths so recording is a couple
of dict-free operations under one registry lock.

Histograms keep three complementary views of the same stream:

* exact ``count`` / ``sum`` / ``min`` / ``max``,
* fixed cumulative buckets (Prometheus ``_bucket{le=...}`` exposition),
* a bounded reservoir sample for streaming percentiles (p50/p95/p99).

The reservoir uses Vitter's Algorithm R with a per-histogram seeded RNG,
so a given observation sequence always produces the same percentile
estimates — property tests stay deterministic.  While the stream is
shorter than the reservoir capacity the percentiles are exact.

The registry serialises to a plain dict (:meth:`MetricsRegistry.state`)
and restores from one (:meth:`MetricsRegistry.restore`), which is how a
durable deployment carries its metrics across process restarts.
"""

from __future__ import annotations

import random
import threading
from bisect import bisect_left, insort
from typing import Any, Iterator

#: Default histogram boundaries, tuned for operation latencies in seconds
#: (100µs .. 10s).  ``+Inf`` is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Reservoir capacity per histogram child; percentiles are exact up to
#: this many observations and a uniform sample beyond.
RESERVOIR_SIZE = 512

_PERCENTILES = (50.0, 95.0, 99.0)


class MetricsError(ValueError):
    """Misuse of the registry (name/kind/label mismatches)."""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    # -- persistence ---------------------------------------------------------

    def _state(self) -> Any:
        return self._value

    def _restore(self, state: Any) -> None:
        self._value = float(state)


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _state(self) -> Any:
        return self._value

    def _restore(self, state: Any) -> None:
        self._value = float(state)


class Histogram:
    """A distribution of observations with streaming percentiles."""

    __slots__ = (
        "_lock", "_buckets", "_bucket_counts", "count", "sum",
        "min", "max", "_reservoir", "_rng",
    )

    def __init__(
        self,
        lock: threading.RLock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self._lock = lock
        self._buckets = tuple(sorted(buckets))
        self._bucket_counts = [0] * len(self._buckets)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        # Sorted reservoir sample; Algorithm R keeps it uniform.
        self._reservoir: list[float] = []
        self._rng = random.Random(0x0B5E)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            index = bisect_left(self._buckets, value)
            if index < len(self._bucket_counts):
                self._bucket_counts[index] += 1
            if len(self._reservoir) < RESERVOIR_SIZE:
                insort(self._reservoir, value)
            else:
                # random() is a single C call, much cheaper than
                # randrange's rejection sampling; the float has 53 bits
                # of entropy, plenty for uniformity at these sizes.
                slot = int(self._rng.random() * self.count)
                if slot < RESERVOIR_SIZE:
                    victim = int(self._rng.random() * RESERVOIR_SIZE)
                    del self._reservoir[victim]
                    insort(self._reservoir, value)

    # -- reading -------------------------------------------------------------

    def percentile(self, q: float) -> float | None:
        """The q-th percentile (0..100), linearly interpolated.

        Exact while fewer than :data:`RESERVOIR_SIZE` observations have
        been made; a uniform-sample estimate afterwards.  ``None`` when
        empty.
        """
        with self._lock:
            sample = self._reservoir
            if not sample:
                return None
            if len(sample) == 1:
                return sample[0]
            rank = (q / 100.0) * (len(sample) - 1)
            low = int(rank)
            high = min(low + 1, len(sample) - 1)
            fraction = rank - low
            # a + f*(b-a) rather than (1-f)*a + f*b: the latter can
            # underflow to 0 on subnormal observations.
            return sample[low] + fraction * (sample[high] - sample[low])

    @property
    def mean(self) -> float | None:
        return (self.sum / self.count) if self.count else None

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            pairs = []
            running = 0
            for bound, in_bucket in zip(self._buckets, self._bucket_counts):
                running += in_bucket
                pairs.append((bound, running))
            pairs.append((float("inf"), self.count))
            return pairs

    def summary(self) -> dict[str, Any]:
        """count/sum/min/max/mean plus the standard percentiles."""
        with self._lock:
            report: dict[str, Any] = {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
            }
            for q in _PERCENTILES:
                report[f"p{q:g}"] = self.percentile(q)
            return report

    # -- persistence ---------------------------------------------------------

    def _state(self) -> Any:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self._buckets),
            "bucket_counts": list(self._bucket_counts),
            "reservoir": list(self._reservoir),
        }

    def _restore(self, state: Any) -> None:
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = state["min"]
        self.max = state["max"]
        stored = tuple(state["buckets"])
        if stored == self._buckets:
            self._bucket_counts = [int(n) for n in state["bucket_counts"]]
        # A boundary change across versions drops bucket detail but keeps
        # count/sum/percentiles — acceptable for a restart carry-over.
        self._reservoir = sorted(float(v) for v in state["reservoir"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All children of one metric name."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        lock: threading.RLock,
        buckets: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._buckets = buckets
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labels: Any) -> Any:
        """The child for this label combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> Any:
        if self.kind == "histogram":
            return Histogram(self._lock, self._buckets or DEFAULT_BUCKETS)
        return _KINDS[self.kind](self._lock)

    # Unlabelled families proxy the single child's interface.

    def _solo(self) -> Any:
        if self.labelnames:
            raise MetricsError(
                f"metric {self.name!r} is labelled by {self.labelnames!r}; "
                "use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def percentile(self, q: float) -> float | None:
        return self._solo().percentile(q)

    def summary(self) -> dict[str, Any]:
        return self._solo().summary()

    @property
    def count(self) -> int:
        return self._solo().count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        return self._solo().cumulative_buckets()

    def samples(self) -> Iterator[tuple[dict[str, str], Any]]:
        """``(labels_dict, child)`` for every child, insertion order."""
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            yield dict(zip(self.labelnames, key)), child


class MetricsRegistry:
    """Owns every metric family; renders and persists them."""

    def __init__(self, *, namespace: str = "bfabric"):
        self.namespace = namespace
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- declaring instruments ----------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name, kind, help_text, labels, self._lock, buckets
                )
                self._families[name] = family
                return family
            if family.kind != kind:
                raise MetricsError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            if family.labelnames != labels:
                raise MetricsError(
                    f"metric {name!r} already registered with labels "
                    f"{family.labelnames!r}"
                )
            return family

    def counter(
        self, name: str, help_text: str = "", *, labels: tuple[str, ...] = ()
    ) -> _Family:
        return self._family(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", *, labels: tuple[str, ...] = ()
    ) -> _Family:
        return self._family(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        return self._family(name, "histogram", help_text, labels, buckets)

    # -- reading -------------------------------------------------------------

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of every metric (for JSON output and tests)."""
        report: dict[str, Any] = {}
        for family in self.families():
            entries = []
            for labels, child in family.samples():
                entry: dict[str, Any] = {"labels": labels}
                if family.kind == "histogram":
                    entry.update(child.summary())
                else:
                    entry["value"] = child.value
                entries.append(entry)
            report[family.name] = {"kind": family.kind, "samples": entries}
        return report

    # -- exposition -----------------------------------------------------------

    def render_text(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every family."""
        lines: list[str] = []
        for family in self.families():
            full = f"{self.namespace}_{family.name}" if self.namespace else family.name
            if family.help:
                lines.append(f"# HELP {full} {family.help}")
            lines.append(f"# TYPE {full} {family.kind}")
            for labels, child in family.samples():
                if family.kind == "histogram":
                    for bound, cumulative in child.cumulative_buckets():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_bound(bound)
                        lines.append(
                            f"{full}_bucket{_render_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{full}_sum{_render_labels(labels)} {_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{full}_count{_render_labels(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{full}{_render_labels(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    # -- persistence -----------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """JSON-safe snapshot of the full registry (for save/restore)."""
        families = []
        for family in self.families():
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "buckets": list(family._buckets) if family._buckets else None,
                    "children": [
                        {"labels": labels, "state": child._state()}
                        for labels, child in family.samples()
                    ],
                }
            )
        return {"namespace": self.namespace, "families": families}

    def restore(self, state: dict[str, Any]) -> None:
        """Recreate families/children from :meth:`state` output.

        Existing children with the same identity are overwritten;
        instruments registered later accumulate on top of the restored
        values (how a restarted deployment continues its history).
        """
        for spec in state.get("families", ()):
            family = self._family(
                spec["name"],
                spec["kind"],
                spec.get("help", ""),
                tuple(spec.get("labelnames", ())),
                tuple(spec["buckets"]) if spec.get("buckets") else None,
            )
            for child_spec in spec.get("children", ()):
                child = family.labels(**child_spec.get("labels", {}))
                child._restore(child_spec["state"])


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"{bound:g}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
