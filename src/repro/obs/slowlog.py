"""The slow-operation log.

Histograms answer "how slow are commits on average?"; the slow log
answers "*which* request was slow last Tuesday, and why?".  Every
finished span is checked against a per-name threshold (the hub's span
sink calls :meth:`SlowOpLog.consider`); spans over budget are promoted
into a bounded ring carrying their full attribute payload — and, for
storage/search spans that attached one, the query's ``explain()`` plan,
evaluated lazily so the planner only runs for operations that were
actually slow.

Hot paths that deliberately skip span creation when no trace is active
(query execution outside a request) still report through
:meth:`SlowOpLog.record`, so the slow log sees slow work even when the
tracer does not.

The ring persists across restarts: :class:`~repro.obs.hub.Observability`
saves it next to the metric state, so ``repro slowlog`` reads entries
captured by a portal process that has since exited.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.util.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import Span

#: Default per-name promotion thresholds, in seconds.  Anything not
#: listed falls back to :data:`DEFAULT_THRESHOLD`.
DEFAULT_THRESHOLDS: dict[str, float] = {
    "http.request": 0.5,
    "storage.commit": 0.25,
    "storage.query": 0.1,
    "search.query": 0.25,
    "wal.group_fsync": 0.25,
    "replication.apply": 0.25,
}

#: Fallback threshold for span names without an explicit entry.
DEFAULT_THRESHOLD = 1.0


class SlowOpLog:
    """Bounded, persistent ring of operations that blew their budget."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        capacity: int = 256,
        thresholds: dict[str, float] | None = None,
        default_threshold: float = DEFAULT_THRESHOLD,
    ):
        self._clock = clock or SystemClock()
        self._capacity = capacity
        self._thresholds = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            self._thresholds.update(thresholds)
        self._default_threshold = default_threshold
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._promoted = 0

    # -- thresholds ----------------------------------------------------------

    def threshold_for(self, name: str) -> float:
        return self._thresholds.get(name, self._default_threshold)

    def set_threshold(self, name: str, seconds: float) -> None:
        """Adjust one operation's budget (0 promotes everything)."""
        if seconds < 0:
            raise ValueError("slow-op threshold must be >= 0")
        self._thresholds[name] = seconds

    def thresholds(self) -> dict[str, float]:
        return dict(self._thresholds)

    # -- recording -----------------------------------------------------------

    def consider(self, span: "Span") -> bool:
        """Promote *span* if over budget; returns whether it was."""
        duration = span.duration
        if duration is None or duration < self.threshold_for(span.name):
            return False
        self.record(
            span.name,
            duration,
            dict(span.attributes),
            status=span.status,
            explain=span.explain,
            trace_id=span.trace_id,
            span_id=span.span_id,
            started_at=span.started_at,
        )
        return True

    def record(
        self,
        name: str,
        duration: float,
        attributes: dict[str, Any] | None = None,
        *,
        status: str = "ok",
        explain: Any = None,
        trace_id: str = "",
        span_id: str = "",
        started_at: str = "",
    ) -> dict[str, Any]:
        """Append one slow operation directly (span-less hot paths)."""
        entry: dict[str, Any] = {
            "ts": started_at or self._clock.isoformat(),
            "name": name,
            "duration": duration,
            "threshold": self.threshold_for(name),
            "status": status,
            "trace_id": trace_id,
            "span_id": span_id,
            "attributes": dict(attributes or {}),
        }
        if explain is not None:
            if callable(explain):
                try:
                    entry["explain"] = explain()
                except Exception as exc:
                    entry["explain"] = {"error": repr(exc)}
            else:
                entry["explain"] = explain
        with self._lock:
            self._entries.append(entry)
            self._promoted += 1
        return entry

    # -- reading -------------------------------------------------------------

    def entries(
        self, name: str | None = None, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Slow operations, oldest first; optionally filtered/limited."""
        with self._lock:
            found = list(self._entries)
        if name is not None:
            found = [entry for entry in found if entry["name"] == name]
        if limit is not None:
            found = found[-limit:]
        return found

    @property
    def promoted(self) -> int:
        """Total promotions ever (the ring may have dropped some)."""
        with self._lock:
            return self._promoted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- persistence ---------------------------------------------------------

    def state(self) -> dict[str, Any]:
        with self._lock:
            return {
                "promoted": self._promoted,
                "entries": list(self._entries),
            }

    def restore(self, state: dict[str, Any]) -> None:
        entries = state.get("entries")
        if not isinstance(entries, list):
            return
        with self._lock:
            self._entries.clear()
            for entry in entries[-self._capacity:]:
                if isinstance(entry, dict) and "name" in entry:
                    self._entries.append(entry)
            promoted = state.get("promoted")
            if isinstance(promoted, int) and promoted >= len(self._entries):
                self._promoted = promoted
            else:
                self._promoted = len(self._entries)
