"""Span-based tracing.

A :class:`Tracer` hands out context-managed *spans*; entering a span
inside another links it to its parent, so one portal request produces a
tree: ``http.request`` → ``search.query`` → ``storage.commit``.  Spans
measure duration on the clock's monotonic source (deterministic under
:class:`~repro.util.clock.ManualClock`) and finished spans land in a
bounded ring buffer plus an optional sink (the structured log, by
default, so every span becomes one JSON line).

Identifiers are sequential (``s1``, ``s2`` …) rather than random: ids
only need to be unique within one tracer, and deterministic ids keep
traces assertable in tests.

Crossing boundaries
-------------------

The parent link normally comes from the thread-local span stack, which
cannot follow an operation onto another thread (a group-commit leader)
or another process (a replica applying a shipped commit).  For those
hops a :class:`TraceContext` — just ``(trace_id, span_id)``, and
serializable to a dict or a header string — is captured where the trace
is live (:meth:`Tracer.context`) and handed to
:meth:`Tracer.span(..., parent=ctx) <Tracer.span>` on the far side, so
the remote span joins the originating trace.  Span ids stay local to
each tracer; a remote ``parent_id`` simply refers to a span another
process holds, which is enough to stitch bundles together offline.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.clock import Clock, SystemClock

#: Sanity bound on ids accepted from the wire (headers, frames).
_MAX_ID_LEN = 64


def _valid_id(value: str) -> bool:
    return (
        0 < len(value) <= _MAX_ID_LEN
        and all(ch.isalnum() or ch in "-_." for ch in value)
    )


@dataclass(frozen=True)
class TraceContext:
    """A serializable parent link: enough to join a trace anywhere.

    ``span_id`` may be empty, meaning "adopt this trace id but start a
    root span" — the form a bare correlation id from an external client
    takes.
    """

    trace_id: str
    span_id: str = ""

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Any) -> "TraceContext | None":
        """Parse a wire dict; ``None`` for anything malformed."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id", "")
        if not isinstance(trace_id, str) or not _valid_id(trace_id):
            return None
        if not isinstance(span_id, str):
            return None
        if span_id and not _valid_id(span_id):
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def to_header(self) -> str:
        """The ``X-Request-Id`` form: ``trace_id`` or ``trace_id:span_id``."""
        if self.span_id:
            return f"{self.trace_id}:{self.span_id}"
        return self.trace_id

    @classmethod
    def from_header(cls, header: str) -> "TraceContext | None":
        """Parse a header value; ``None`` for anything malformed."""
        if not isinstance(header, str):
            return None
        value = header.strip()
        if not value:
            return None
        trace_id, _, span_id = value.partition(":")
        if not _valid_id(trace_id):
            return None
        if span_id and not _valid_id(span_id):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One timed operation, possibly nested inside another."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    started_at: str
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    duration: float | None = None
    #: Optional plan payload (or zero-argument callable producing one)
    #: attached by query execution; evaluated lazily only when the span
    #: is promoted to the slow-op log.  Never serialized with the span.
    explain: Any = None

    def set(self, **attributes: Any) -> None:
        """Attach attributes mid-flight (result counts, row ids …)."""
        self.attributes.update(attributes)

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def context(self) -> TraceContext:
        """This span as a parent link for a thread/process hop."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_record(self) -> dict[str, Any]:
        """The JSON-line payload for the structured log."""
        return {
            "span": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
            **{f"attr.{k}": v for k, v in self.attributes.items()},
        }


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_timer")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._timer = None

    def __enter__(self) -> Span:
        self._timer = self._tracer._clock.timer()
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._timer is not None
        self.span.duration = self._timer.elapsed()
        if exc_type is not None:
            # An explicitly set status (anything but the default) wins:
            # instrumented code that classified its own failure knows
            # more than the bare exception does.
            if self.span.status == "ok":
                self.span.status = "error"
            self.span.attributes.setdefault("error.type", exc_type.__name__)
            self.span.attributes.setdefault("error.message", str(exc))
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Produces nested spans; keeps the most recent finished ones."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        sink: Callable[[Span], None] | None = None,
        capacity: int = 1000,
    ):
        self._clock = clock or SystemClock()
        self._sink = sink
        self._capacity = capacity
        self._finished: deque[Span] = deque()
        # trace_id -> finished spans of that trace, oldest first.  Kept
        # in lock-step with the ring so trace() and children() are a
        # dict lookup, not a full-deque scan.
        self._by_trace: dict[str, list[Span]] = {}
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counter = 0

    # -- span lifecycle ------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        parent: "TraceContext | Span | None" = None,
        **attributes: Any,
    ) -> _SpanContext:
        """Open a span; nests under the thread's current span, if any.

        An explicit *parent* (a :class:`TraceContext` carried across a
        thread or process hop, or a :class:`Span`) overrides the
        thread-local stack, so the new span joins that trace instead::

            with tracer.span("search.query", terms=3) as span:
                ...
                span.set(results=len(hits))
        """
        if parent is None:
            current = self.current()
            parent_ctx = current.context() if current is not None else None
        elif isinstance(parent, Span):
            parent_ctx = parent.context()
        else:
            parent_ctx = parent
        with self._lock:
            self._counter += 1
            span_id = f"s{self._counter}"
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=parent_ctx.trace_id if parent_ctx else span_id,
            parent_id=(parent_ctx.span_id or None) if parent_ctx else None,
            started_at=self._clock.isoformat(),
            attributes=dict(attributes),
        )
        return _SpanContext(self, span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def context(self) -> TraceContext | None:
        """The current span as a serializable parent link, if any."""
        current = self.current()
        return current.context() if current is not None else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            if len(self._finished) >= self._capacity:
                evicted = self._finished.popleft()
                trace = self._by_trace.get(evicted.trace_id)
                if trace is not None:
                    try:
                        trace.remove(evicted)
                    except ValueError:
                        pass
                    if not trace:
                        del self._by_trace[evicted.trace_id]
            self._finished.append(span)
            self._by_trace.setdefault(span.trace_id, []).append(span)
        if self._sink is not None:
            self._sink(span)

    # -- reading -------------------------------------------------------------

    def finished(self, name: str | None = None) -> list[Span]:
        """Finished spans, oldest first; optionally filtered by name."""
        with self._lock:
            spans = list(self._finished)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    def trace(self, trace_id: str) -> list[Span]:
        """Every finished span of one trace, oldest first."""
        with self._lock:
            return list(self._by_trace.get(trace_id, ()))

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently retained, oldest-started first."""
        with self._lock:
            return list(self._by_trace)

    def children(self, span: Span) -> Iterator[Span]:
        # A child shares its parent's trace, so the per-trace index
        # bounds the scan to one trace instead of the whole ring.
        for candidate in self.trace(span.trace_id):
            if candidate.parent_id == span.span_id:
                yield candidate

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._by_trace.clear()
