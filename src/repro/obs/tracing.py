"""Span-based tracing.

A :class:`Tracer` hands out context-managed *spans*; entering a span
inside another links it to its parent, so one portal request produces a
tree: ``http.request`` → ``search.query`` → ``storage.commit``.  Spans
measure duration on the clock's monotonic source (deterministic under
:class:`~repro.util.clock.ManualClock`) and finished spans land in a
bounded ring buffer plus an optional sink (the structured log, by
default, so every span becomes one JSON line).

Identifiers are sequential (``s1``, ``s2`` …) rather than random: the
tracer is in-process only, and deterministic ids keep traces assertable
in tests.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.clock import Clock, SystemClock


@dataclass
class Span:
    """One timed operation, possibly nested inside another."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    started_at: str
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    duration: float | None = None

    def set(self, **attributes: Any) -> None:
        """Attach attributes mid-flight (result counts, row ids …)."""
        self.attributes.update(attributes)

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def to_record(self) -> dict[str, Any]:
        """The JSON-line payload for the structured log."""
        return {
            "span": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
            **{f"attr.{k}": v for k, v in self.attributes.items()},
        }


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_timer")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._timer = None

    def __enter__(self) -> Span:
        self._timer = self._tracer._clock.timer()
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._timer is not None
        self.span.duration = self._timer.elapsed()
        if exc_type is not None:
            self.span.status = "error"
            self.span.attributes.setdefault("error", repr(exc))
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Produces nested spans; keeps the most recent finished ones."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        sink: Callable[[Span], None] | None = None,
        capacity: int = 1000,
    ):
        self._clock = clock or SystemClock()
        self._sink = sink
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counter = 0

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span; nests under the thread's current span, if any.

        ::

            with tracer.span("search.query", terms=3) as span:
                ...
                span.set(results=len(hits))
        """
        parent = self.current()
        with self._lock:
            self._counter += 1
            span_id = f"s{self._counter}"
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=parent.trace_id if parent else span_id,
            parent_id=parent.span_id if parent else None,
            started_at=self._clock.isoformat(),
            attributes=dict(attributes),
        )
        return _SpanContext(self, span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)
        if self._sink is not None:
            self._sink(span)

    # -- reading -------------------------------------------------------------

    def finished(self, name: str | None = None) -> list[Span]:
        """Finished spans, oldest first; optionally filtered by name."""
        with self._lock:
            spans = list(self._finished)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    def trace(self, trace_id: str) -> list[Span]:
        """Every finished span of one trace, oldest first."""
        return [s for s in self.finished() if s.trace_id == trace_id]

    def children(self, span: Span) -> Iterator[Span]:
        for candidate in self.finished():
            if candidate.parent_id == span.span_id:
                yield candidate

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
