"""Declarative object-relational mapping on top of :mod:`repro.storage`.

Models declare fields as class attributes; a :class:`Registry` binds the
models to a database (creating tables in dependency order) and hands out
:class:`Repository` objects for typed CRUD.  A :class:`Session` adds a
unit-of-work with an identity map for multi-entity operations.

::

    from repro.orm import Model, IntField, TextField, Registry

    class Project(Model):
        __table__ = "project"
        id = IntField(primary_key=True)
        name = TextField(nullable=False, unique=True)

    registry = Registry(db)
    registry.register(Project)
    projects = registry.repository(Project)
    p = projects.create(name="Arabidopsis light response")
"""

from repro.orm.fields import (
    Field,
    IntField,
    FloatField,
    TextField,
    BoolField,
    DateTimeField,
    JsonField,
)
from repro.orm.model import Model
from repro.orm.repository import Repository
from repro.orm.registry import Registry
from repro.orm.session import Session

__all__ = [
    "Field",
    "IntField",
    "FloatField",
    "TextField",
    "BoolField",
    "DateTimeField",
    "JsonField",
    "Model",
    "Repository",
    "Registry",
    "Session",
]
