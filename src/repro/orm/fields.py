"""Field descriptors for declarative models.

Each field knows how to render itself as a storage
:class:`~repro.storage.schema.Column`.  Fields are plain descriptors:
model instances keep values in ``__dict__`` so ``vars(instance)`` and
``dataclass``-style reprs stay unsurprising.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.storage.schema import Column, ForeignKey
from repro.storage.types import ColumnType


class Field:
    """Base declarative field.  Subclasses fix the column type."""

    column_type: ColumnType = ColumnType.TEXT

    def __init__(
        self,
        *,
        primary_key: bool = False,
        nullable: bool = True,
        unique: bool = False,
        default: Any = None,
        foreign_key: "str | ForeignKey | None" = None,
        index: bool = False,
        check: Callable[[Any], bool] | None = None,
        doc: str = "",
    ):
        self.primary_key = primary_key
        self.nullable = nullable
        self.unique = unique
        self.default = default
        self.foreign_key = foreign_key
        self.index = index
        self.check = check
        self.doc = doc
        self.name = ""  # filled by __set_name__

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, instance: Any, owner: type | None = None) -> Any:
        if instance is None:
            return self
        try:
            return instance.__dict__[self.name]
        except KeyError:
            raise AttributeError(
                f"{owner.__name__ if owner else '?'}.{self.name} is unset"
            ) from None

    def __set__(self, instance: Any, value: Any) -> None:
        instance.__dict__[self.name] = value

    def to_column(self) -> Column:
        """Render this field as a storage column."""
        return Column(
            name=self.name,
            type=self.column_type,
            primary_key=self.primary_key,
            nullable=self.nullable,
            unique=self.unique,
            default=self.default,
            foreign_key=self.foreign_key,
            check=self.check,
            doc=self.doc,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class IntField(Field):
    column_type = ColumnType.INT


class FloatField(Field):
    column_type = ColumnType.FLOAT


class TextField(Field):
    column_type = ColumnType.TEXT


class BoolField(Field):
    column_type = ColumnType.BOOL


class DateTimeField(Field):
    column_type = ColumnType.DATETIME


class JsonField(Field):
    column_type = ColumnType.JSON
