"""Schema migrations.

A deployment evolves: new attributes on samples, new indexes for new
query patterns.  Migrations are ordered, idempotent-by-bookkeeping
steps; the runner records applied ids in the ``schema_migration`` table
so re-running is safe.

::

    runner = MigrationRunner(db)
    runner.add(Migration(
        "2010_03_add_sample_barcode",
        "barcode column for plate robots",
        lambda db: db.add_column(
            "sample", Column("barcode", ColumnType.TEXT)),
    ))
    applied = runner.run_pending()
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SchemaError
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType

MIGRATION_TABLE = "schema_migration"


def _migration_schema() -> TableSchema:
    return TableSchema(
        MIGRATION_TABLE,
        [
            Column("id", ColumnType.INT, primary_key=True),
            Column("migration_id", ColumnType.TEXT, nullable=False, unique=True),
            Column("description", ColumnType.TEXT, default=""),
            Column("applied_at", ColumnType.DATETIME),
        ],
    )


@dataclass
class Migration:
    """One schema-evolution step."""

    migration_id: str
    description: str
    apply: Callable[[Database], None]


@dataclass
class MigrationRunner:
    """Applies pending migrations in registration order."""

    database: Database
    _migrations: list[Migration] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.database.has_table(MIGRATION_TABLE):
            self.database.create_table(_migration_schema())

    def add(self, migration: Migration) -> "MigrationRunner":
        if any(
            m.migration_id == migration.migration_id for m in self._migrations
        ):
            raise SchemaError(
                f"migration {migration.migration_id!r} registered twice"
            )
        self._migrations.append(migration)
        return self

    def applied_ids(self) -> list[str]:
        return self.database.query(MIGRATION_TABLE).order_by("id").values(
            "migration_id"
        )

    def pending(self) -> list[Migration]:
        done = set(self.applied_ids())
        return [m for m in self._migrations if m.migration_id not in done]

    def run_pending(self) -> list[str]:
        """Apply every pending migration; returns the applied ids.

        A failing migration raises after its own changes are already in
        place (DDL here is not transactional — as in most databases);
        it is *not* recorded as applied, so fixing and re-running is
        the recovery path.
        """
        applied: list[str] = []
        for migration in self.pending():
            migration.apply(self.database)
            self.database.insert(
                MIGRATION_TABLE,
                {
                    "migration_id": migration.migration_id,
                    "description": migration.description,
                    "applied_at": _dt.datetime.utcnow().replace(microsecond=0),
                },
            )
            applied.append(migration.migration_id)
        return applied
