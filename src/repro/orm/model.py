"""Declarative model base class.

A model class collects its :class:`~repro.orm.fields.Field` attributes
(including inherited ones), derives the table name, and can convert
between instances and row dicts.  Extra schema artifacts — composite
indexes, multi-column unique constraints, table checks — are declared
via ``__indexes__``, ``__unique_together__``, and ``__checks__``.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterator

from repro.errors import SchemaError
from repro.orm.fields import Field
from repro.storage.schema import CheckConstraint, TableSchema


class ModelMeta(type):
    """Collects fields at class-creation time."""

    def __new__(mcls, name, bases, namespace, **kwargs):
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        fields: dict[str, Field] = {}
        for base in reversed(cls.__mro__[1:]):
            fields.update(getattr(base, "__fields__", {}))
        for attr, value in namespace.items():
            if isinstance(value, Field):
                fields[attr] = value
        cls.__fields__ = fields
        if "__table__" not in namespace and fields:
            # Default table name: snake_case of the class name.
            table = "".join(
                f"_{ch.lower()}" if ch.isupper() else ch for ch in name
            ).lstrip("_")
            cls.__table__ = table
        return cls


class Model(metaclass=ModelMeta):
    """Base for all persistent entities."""

    __table__: ClassVar[str] = ""
    __fields__: ClassVar[dict[str, Field]] = {}
    __indexes__: ClassVar[list] = []
    __unique_together__: ClassVar[list] = []
    __checks__: ClassVar[list[CheckConstraint]] = []
    __doc_line__: ClassVar[str] = ""

    def __init__(self, **values: Any):
        unknown = set(values) - set(self.__fields__)
        if unknown:
            raise SchemaError(
                f"{type(self).__name__} has no field(s) {sorted(unknown)!r}"
            )
        for name, field in self.__fields__.items():
            if name in values:
                setattr(self, name, values[name])
            elif not field.primary_key:
                setattr(self, name, field.default_value_for_instance())

    # -- class-level schema ----------------------------------------------------

    @classmethod
    def schema(cls) -> TableSchema:
        """Build the storage schema for this model."""
        if not cls.__fields__:
            raise SchemaError(f"model {cls.__name__} declares no fields")
        columns = [field.to_column() for field in cls.__fields__.values()]
        indexes = list(cls.__indexes__)
        indexes.extend(
            field.name
            for field in cls.__fields__.values()
            if field.index and not field.primary_key
        )
        # FK columns are implicitly indexed: referential actions and the
        # common "children of X" query both need the lookup.
        for field in cls.__fields__.values():
            if field.foreign_key is not None and field.name not in indexes:
                indexes.append(field.name)
        doc_lines = (cls.__doc__ or "").strip().splitlines()
        doc = cls.__doc_line__ or (doc_lines[0] if doc_lines else "")
        return TableSchema(
            name=cls.__table__,
            columns=columns,
            indexes=indexes,
            unique_together=list(cls.__unique_together__),
            checks=list(cls.__checks__),
            doc=doc,
        )

    @classmethod
    def primary_key_name(cls) -> str:
        for name, field in cls.__fields__.items():
            if field.primary_key:
                return name
        raise SchemaError(f"model {cls.__name__} has no primary key")

    @classmethod
    def field_names(cls) -> list[str]:
        return list(cls.__fields__)

    @classmethod
    def foreign_key_fields(cls) -> Iterator[Field]:
        for field in cls.__fields__.values():
            if field.foreign_key is not None:
                yield field

    # -- conversion ---------------------------------------------------------------

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Model":
        instance = cls.__new__(cls)
        for name in cls.__fields__:
            if name in row:
                instance.__dict__[name] = row[name]
        return instance

    def to_row(self, *, include_unset: bool = False) -> dict[str, Any]:
        row: dict[str, Any] = {}
        for name in self.__fields__:
            if name in self.__dict__:
                row[name] = self.__dict__[name]
            elif include_unset:
                row[name] = None
        return row

    @property
    def pk(self) -> Any:
        """The value of the primary-key field (or ``None`` before insert)."""
        return self.__dict__.get(self.primary_key_name())

    # -- dunder --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.to_row() == other.to_row()  # type: ignore[union-attr]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={self.__dict__[name]!r}"
            for name in self.__fields__
            if name in self.__dict__
        )
        return f"{type(self).__name__}({parts})"


def _field_default(self: Field) -> Any:
    if callable(self.default):
        return self.default()
    return self.default


# Attach lazily to avoid a Field<->Model import cycle in fields.py.
Field.default_value_for_instance = _field_default  # type: ignore[attr-defined]
