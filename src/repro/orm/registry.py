"""Binding models to a database.

The registry resolves model interdependencies (foreign keys) and creates
tables in a topological order, so callers can register models in any
order via :meth:`Registry.register_all`.
"""

from __future__ import annotations

from graphlib import TopologicalSorter
from typing import Iterable, Type, TypeVar

from repro.errors import SchemaError
from repro.orm.model import Model
from repro.orm.repository import Repository
from repro.storage.database import Database
from repro.storage.schema import ForeignKey

M = TypeVar("M", bound=Model)


class Registry:
    """Knows which models are bound to which tables of one database."""

    def __init__(self, database: Database):
        self.database = database
        self._models: dict[str, Type[Model]] = {}
        self._repositories: dict[str, Repository] = {}

    def register(self, model: Type[Model]) -> Repository:
        """Create *model*'s table (unless present) and return its repository."""
        table = model.__table__
        if table in self._models:
            if self._models[table] is not model:
                raise SchemaError(
                    f"table {table!r} already bound to "
                    f"{self._models[table].__name__}"
                )
            return self._repositories[table]
        if not self.database.has_table(table):
            self.database.create_table(model.schema())
        self._models[table] = model
        repo = Repository(self.database, model)
        self._repositories[table] = repo
        return repo

    def repository_for(self, table: str) -> Repository | None:
        """The repository bound to *table*, or ``None`` if unregistered."""
        return self._repositories.get(table)

    def register_all(self, models: Iterable[Type[Model]]) -> None:
        """Register many models, ordering by foreign-key dependencies."""
        by_table = {m.__table__: m for m in models}
        graph: dict[str, set[str]] = {}
        for table, model in by_table.items():
            deps: set[str] = set()
            for field in model.foreign_key_fields():
                fk = ForeignKey.parse(field.foreign_key)  # type: ignore[arg-type]
                if fk.table != table and fk.table in by_table:
                    deps.add(fk.table)
            graph[table] = deps
        for table in TopologicalSorter(graph).static_order():
            self.register(by_table[table])

    def repository(self, model: Type[M]) -> "Repository[M]":
        try:
            return self._repositories[model.__table__]
        except KeyError:
            raise SchemaError(
                f"model {model.__name__} is not registered"
            ) from None

    def model_for_table(self, table: str) -> Type[Model]:
        try:
            return self._models[table]
        except KeyError:
            raise SchemaError(f"no model bound to table {table!r}") from None

    def models(self) -> list[Type[Model]]:
        return list(self._models.values())
