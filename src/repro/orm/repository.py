"""Typed CRUD over one model.

Repositories return model instances, not raw rows, and expose a typed
variant of the storage query builder.  All writes run in single-statement
transactions unless an explicit transaction is passed.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, Type, TypeVar

from repro.errors import EntityNotFound
from repro.orm.model import Model
from repro.storage.database import Database
from repro.storage.query import Condition, Query
from repro.storage.transaction import Transaction

M = TypeVar("M", bound=Model)


class ModelQuery(Generic[M]):
    """Wraps a storage :class:`Query`, materializing model instances."""

    def __init__(self, model: Type[M], query: Query):
        self._model = model
        self._query = query

    def where(self, column: str, op: str = "=", value: Any = None) -> "ModelQuery[M]":
        self._query.where(column, op, value)
        return self

    def filter(self, *conditions: Condition) -> "ModelQuery[M]":
        self._query.filter(*conditions)
        return self

    def order_by(self, column: str, *, descending: bool = False) -> "ModelQuery[M]":
        self._query.order_by(column, descending=descending)
        return self

    def limit(self, n: int) -> "ModelQuery[M]":
        self._query.limit(n)
        return self

    def offset(self, n: int) -> "ModelQuery[M]":
        self._query.offset(n)
        return self

    def all(self) -> list[M]:
        return [self._model.from_row(row) for row in self._query.all()]

    def first(self) -> M | None:
        row = self._query.first()
        return self._model.from_row(row) if row is not None else None

    def one(self) -> M:
        return self._model.from_row(self._query.one())

    def count(self) -> int:
        return self._query.count()

    def exists(self) -> bool:
        return self._query.exists()

    def pks(self) -> list[Any]:
        return self._query.pks()

    def values(self, column: str) -> list[Any]:
        return self._query.values(column)

    def explain(self) -> dict[str, Any]:
        return self._query.explain()


class Repository(Generic[M]):
    """CRUD + queries for one model bound to one database."""

    def __init__(self, database: Database, model: Type[M]):
        self.database = database
        self.model = model
        self.table = model.__table__
        self._pk = model.primary_key_name()

    # -- reads -------------------------------------------------------------------

    def get(self, pk: Any) -> M:
        row = self.database.get_or_none(self.table, pk)
        if row is None:
            raise EntityNotFound(self.model.__name__, pk)
        return self.model.from_row(row)

    def get_or_none(self, pk: Any) -> M | None:
        row = self.database.get_or_none(self.table, pk)
        return self.model.from_row(row) if row is not None else None

    def exists(self, pk: Any) -> bool:
        return self.database.get_or_none(self.table, pk) is not None

    def query(self, *, snapshot=None) -> ModelQuery[M]:
        """Typed query; pass an MVCC ``snapshot`` for a pinned read view."""
        return ModelQuery(
            self.model, self.database.query(self.table, snapshot=snapshot)
        )

    def all(self) -> list[M]:
        return self.query().all()

    def count(self) -> int:
        return self.database.count(self.table)

    def iter(self) -> Iterator[M]:
        for row in self.database.rows(self.table):
            yield self.model.from_row(row)

    def find(self, **equals: Any) -> list[M]:
        """Shorthand for equality filters: ``repo.find(project_id=3)``."""
        query = self.query()
        for column, value in equals.items():
            query.where(column, "=", value)
        return query.all()

    def find_one(self, **equals: Any) -> M | None:
        query = self.query()
        for column, value in equals.items():
            query.where(column, "=", value)
        return query.first()

    # -- writes -------------------------------------------------------------------

    def create(self, txn: Transaction | None = None, /, **values: Any) -> M:
        """Insert a new entity and return it (with its allocated pk)."""
        instance = self.model(**values)
        row = instance.to_row()
        if txn is not None:
            stored = txn.insert(self.table, row)
        else:
            stored = self.database.insert(self.table, row)
        return self.model.from_row(stored)

    def save(self, instance: M, txn: Transaction | None = None) -> M:
        """Insert (no pk yet) or update (pk set) *instance*."""
        row = instance.to_row()
        pk = row.get(self._pk)
        if pk is None or self.database.get_or_none(self.table, pk) is None:
            if txn is not None:
                stored = txn.insert(self.table, row)
            else:
                stored = self.database.insert(self.table, row)
        else:
            changes = {k: v for k, v in row.items() if k != self._pk}
            if txn is not None:
                stored = txn.update(self.table, pk, changes)
            else:
                stored = self.database.update(self.table, pk, changes)
        refreshed = self.model.from_row(stored)
        instance.__dict__.update(refreshed.__dict__)
        return instance

    def update(
        self, pk: Any, txn: Transaction | None = None, /, **changes: Any
    ) -> M:
        if txn is not None:
            stored = txn.update(self.table, pk, changes)
        else:
            stored = self.database.update(self.table, pk, changes)
        return self.model.from_row(stored)

    def delete(self, pk: Any, txn: Transaction | None = None) -> None:
        if self.database.get_or_none(self.table, pk) is None:
            raise EntityNotFound(self.model.__name__, pk)
        if txn is not None:
            txn.delete(self.table, pk)
        else:
            self.database.delete(self.table, pk)
