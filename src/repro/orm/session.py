"""Unit-of-work session with an identity map.

A :class:`Session` batches reads and writes over many models inside one
storage transaction.  Within a session, loading the same row twice
returns the same Python object (identity map), and all writes commit or
roll back together.

::

    with Session(registry) as session:
        project = session.get(Project, 7)
        sample = session.add(Sample(name="wt light 1", project_id=project.id))
    # committed here; any exception inside the block rolls everything back
"""

from __future__ import annotations

from typing import Any, Type, TypeVar

from repro.errors import EntityNotFound, TransactionError
from repro.orm.model import Model
from repro.orm.registry import Registry
from repro.storage.transaction import Transaction

M = TypeVar("M", bound=Model)


class Session:
    """One unit of work over a registry's database."""

    def __init__(self, registry: Registry):
        self.registry = registry
        self._txn: Transaction | None = None
        self._identity: dict[tuple[str, Any], Model] = {}

    # -- lifecycle ---------------------------------------------------------------

    def begin(self) -> "Session":
        if self._txn is not None:
            raise TransactionError("session already has an open transaction")
        self._txn = self.registry.database.transaction()
        return self

    def commit(self) -> None:
        if self._txn is None:
            raise TransactionError("no open transaction to commit")
        self._txn.commit()
        self._txn = None
        self._identity.clear()

    def rollback(self) -> None:
        if self._txn is None:
            raise TransactionError("no open transaction to roll back")
        self._txn.rollback()
        self._txn = None
        self._identity.clear()

    def __enter__(self) -> "Session":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._txn is None:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    @property
    def transaction(self) -> Transaction:
        if self._txn is None:
            raise TransactionError("session has no open transaction")
        return self._txn

    # -- operations -----------------------------------------------------------------

    def get(self, model: Type[M], pk: Any) -> M:
        """Load an entity; repeated loads return the identical object."""
        key = (model.__table__, pk)
        cached = self._identity.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        row = self.registry.database.get_or_none(model.__table__, pk)
        if row is None:
            raise EntityNotFound(model.__name__, pk)
        instance = model.from_row(row)
        self._identity[key] = instance
        return instance

    def add(self, instance: M) -> M:
        """Insert *instance* within the session's transaction."""
        txn = self.transaction
        stored = txn.insert(instance.__table__, instance.to_row())
        instance.__dict__.update(
            type(instance).from_row(stored).__dict__
        )
        self._identity[(instance.__table__, instance.pk)] = instance
        return instance

    def update(self, instance: M, **changes: Any) -> M:
        """Apply *changes* to a loaded entity within the transaction."""
        txn = self.transaction
        stored = txn.update(instance.__table__, instance.pk, changes)
        instance.__dict__.update(
            type(instance).from_row(stored).__dict__
        )
        return instance

    def flush_update(self, instance: M) -> M:
        """Persist every in-memory field change of *instance*."""
        pk_name = instance.primary_key_name()
        changes = {
            k: v for k, v in instance.to_row().items() if k != pk_name
        }
        return self.update(instance, **changes)

    def delete(self, instance: M) -> None:
        txn = self.transaction
        txn.delete(instance.__table__, instance.pk)
        self._identity.pop((instance.__table__, instance.pk), None)

    def savepoint(self, name: str) -> None:
        self.transaction.savepoint(name)

    def rollback_to(self, name: str) -> None:
        self.transaction.rollback_to(name)
        self._identity.clear()
