"""Unit-of-work session with an identity map and repeatable reads.

A :class:`Session` batches reads and writes over many models inside one
storage transaction.  Within a session, loading the same row twice
returns the same Python object (identity map), and all writes commit or
roll back together.

Every session additionally pins an MVCC snapshot at :meth:`begin`, so
its reads are **repeatable**: commits made by other threads while the
session is open stay invisible.  A read-write session pins the snapshot
right after acquiring the writer lock (its view therefore includes
every commit that preceded it); reads of tables the session itself has
modified go through the live transaction so the session always sees its
own writes.  A ``readonly=True`` session skips the transaction — and
the writer lock — entirely and serves every read from the snapshot,
which makes it safe to hold open during long report generation without
stalling writers.

::

    with Session(registry) as session:
        project = session.get(Project, 7)
        sample = session.add(Sample(name="wt light 1", project_id=project.id))
    # committed here; any exception inside the block rolls everything back

    with Session(registry, readonly=True) as view:
        rows = view.query(Sample).where("project_id", "=", 7).all()
        # repeatable: same result for the lifetime of the session
"""

from __future__ import annotations

from typing import Any, Type, TypeVar

from repro.errors import EntityNotFound, TransactionError
from repro.orm.model import Model
from repro.orm.registry import Registry
from repro.storage.snapshot import Snapshot
from repro.storage.transaction import Transaction

M = TypeVar("M", bound=Model)


class Session:
    """One unit of work over a registry's database."""

    def __init__(self, registry: Registry, *, readonly: bool = False):
        self.registry = registry
        self.readonly = readonly
        self._txn: Transaction | None = None
        self._snapshot: Snapshot | None = None
        self._identity: dict[tuple[str, Any], Model] = {}

    # -- lifecycle ---------------------------------------------------------------

    def begin(self) -> "Session":
        if self._txn is not None or self._snapshot is not None:
            raise TransactionError("session already has an open transaction")
        if not self.readonly:
            self._txn = self.registry.database.transaction()
        self._snapshot = self.registry.database.snapshot()
        return self

    def _finish(self) -> None:
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot = None
        self._identity.clear()

    def commit(self) -> None:
        if self.readonly:
            if self._snapshot is None:
                raise TransactionError("session has not begun")
            self._finish()
            return
        if self._txn is None:
            raise TransactionError("no open transaction to commit")
        self._txn.commit()
        self._txn = None
        self._finish()

    def rollback(self) -> None:
        if self.readonly:
            if self._snapshot is None:
                raise TransactionError("session has not begun")
            self._finish()
            return
        if self._txn is None:
            raise TransactionError("no open transaction to roll back")
        self._txn.rollback()
        self._txn = None
        self._finish()

    def close(self) -> None:
        """Release the session: roll back an open transaction, drop the
        pinned snapshot.  Idempotent."""
        if self._txn is not None:
            self.rollback()
        else:
            self._finish()

    def __enter__(self) -> "Session":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._txn is not None:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        else:
            self._finish()
        return False

    @property
    def transaction(self) -> Transaction:
        if self._txn is None:
            raise TransactionError("session has no open transaction")
        return self._txn

    @property
    def snapshot(self) -> Snapshot | None:
        """The pinned read view, or ``None`` before :meth:`begin`."""
        return self._snapshot

    # -- reads ---------------------------------------------------------------------

    def _read_row(self, table: str, pk: Any) -> dict[str, Any] | None:
        """Snapshot read unless *this session* has written to *table*.

        The live fallback exists for read-your-writes: a dirty table
        while we hold an open transaction means our own uncommitted
        changes, which the session must see.  Without a transaction
        (readonly sessions) a dirty table is some *other* thread's
        in-flight work — reading live would leak its uncommitted rows
        and break repeatable-read, so the snapshot always wins.
        """
        database = self.registry.database
        snap = self._snapshot
        if snap is not None and (
            self._txn is None or not database.table_dirty(table)
        ):
            return snap.get_or_none(table, pk)
        return database.get_or_none(table, pk)

    def get(self, model: Type[M], pk: Any) -> M:
        """Load an entity; repeated loads return the identical object."""
        key = (model.__table__, pk)
        cached = self._identity.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        row = self._read_row(model.__table__, pk)
        if row is None:
            raise EntityNotFound(model.__name__, pk)
        instance = model.from_row(row)
        self._identity[key] = instance
        return instance

    def query(self, model: Type[M]):
        """Typed query evaluated at this session's pinned snapshot.

        Falls back to the live state only for tables *this session's
        own transaction* has modified (read-your-writes) or when no
        snapshot is pinned; another thread's dirty table never pulls a
        readonly session off its snapshot.
        """
        from repro.orm.repository import ModelQuery

        database = self.registry.database
        name = model.__table__
        snap = self._snapshot
        if snap is not None and (
            self._txn is None or not database.table_dirty(name)
        ):
            return ModelQuery(model, database.query(name, snapshot=snap))
        return ModelQuery(model, database.query(name))

    # -- writes ---------------------------------------------------------------------

    def add(self, instance: M) -> M:
        """Insert *instance* within the session's transaction."""
        txn = self.transaction
        stored = txn.insert(instance.__table__, instance.to_row())
        instance.__dict__.update(
            type(instance).from_row(stored).__dict__
        )
        self._identity[(instance.__table__, instance.pk)] = instance
        return instance

    def update(self, instance: M, **changes: Any) -> M:
        """Apply *changes* to a loaded entity within the transaction."""
        txn = self.transaction
        stored = txn.update(instance.__table__, instance.pk, changes)
        instance.__dict__.update(
            type(instance).from_row(stored).__dict__
        )
        return instance

    def flush_update(self, instance: M) -> M:
        """Persist every in-memory field change of *instance*."""
        pk_name = instance.primary_key_name()
        changes = {
            k: v for k, v in instance.to_row().items() if k != pk_name
        }
        return self.update(instance, **changes)

    def delete(self, instance: M) -> None:
        txn = self.transaction
        txn.delete(instance.__table__, instance.pk)
        self._identity.pop((instance.__table__, instance.pk), None)

    def savepoint(self, name: str) -> None:
        self.transaction.savepoint(name)

    def rollback_to(self, name: str) -> None:
        self.transaction.rollback_to(name)
        self._identity.clear()
