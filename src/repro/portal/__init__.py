"""The web portal.

"B-Fabric captures and provides the data transparently and in
access-controlled fashion through a Web portal."  A WSGI application
(stdlib only — run it under :mod:`wsgiref` or any WSGI server) with:

* login/logout against the user table;
* a home screen with the task list (Figure 8) and the quick-search box;
* registration forms for samples and extracts with drop-down
  vocabularies and inline new-annotation creation (Figures 2–3);
* the expert's annotation review screen with release and merge
  (Figures 4–7);
* import and experiment screens (Figures 9–16);
* search with history, saved queries and CSV export;
* networked object browsing and an admin dashboard.
"""

from repro.portal.app import PortalApplication
from repro.portal.http import Request, Response
from repro.portal.routing import Router

__all__ = ["PortalApplication", "Request", "Response", "Router"]
