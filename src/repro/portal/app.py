"""The portal WSGI application."""

from __future__ import annotations

from typing import Callable

from repro.errors import (
    AccessDenied,
    AuthenticationError,
    BFabricError,
    EntityNotFound,
    ValidationError,
)
from repro.facade import BFabric
from repro.obs import TraceContext
from repro.portal.caching import CachePolicy
from repro.portal.http import Request, Response
from repro.portal.render import esc, page
from repro.portal.routing import Router
from repro.search.history import SearchHistory
from repro.storage.table import track_reads

_SESSION_COOKIE = "bfabric_session"

#: Read-your-writes marker: the commit sequence this browser last wrote.
#: Replica-routed GETs wait until a replica has applied at least this
#: sequence before serving from it, so a user always sees their own
#: POST on the very next page load even when every replica lags.
_SEEN_SEQ_COOKIE = "bfabric_seen_seq"

#: Paths reachable without a login session.
_PUBLIC_PATHS = {"/login", "/ping", "/api/health"}


class PortalApplication:
    """WSGI callable exposing the whole system."""

    def __init__(self, system: BFabric, *, replicas=None):
        """*replicas* is an optional
        :class:`~repro.replication.manager.ReplicaSet`: when given,
        every GET's read snapshot is routed to the least-lagged healthy
        replica (primary fallback), so browse traffic scales across the
        replica fleet while writes keep hitting the primary."""
        self.system = system
        self.replicas = replicas
        self.router = Router()
        self.cache = CachePolicy(system.db)
        self._histories: dict[str, SearchHistory] = {}
        self._register_views()

    # -- WSGI entry ----------------------------------------------------------------

    def __call__(self, environ: dict, start_response: Callable):
        request = Request.from_environ(environ)
        response = self.handle(request)
        return response.wsgi(start_response)

    def handle(self, request: Request) -> Response:
        """Dispatch one request with timing (the WSGI middleware layer).

        Every request is traced and recorded as a labelled counter +
        latency histogram; the route label is the registered pattern
        (``/project/<int:project_id>``), never the raw path, so metric
        cardinality stays bounded.  Unroutable paths share one
        ``<unmatched>`` label.

        The request span accepts an upstream trace through the
        ``X-Request-Id`` header (``trace_id`` or ``trace_id:span_id``)
        and mints a fresh trace otherwise; either way the response
        echoes the request's own span context back in ``X-Request-Id``,
        so clients hold a correlation id that finds the full trace in
        ``repro debug-bundle`` output.
        """
        obs = self.system.obs
        match = self.router.resolve(request.method, request.path)
        route = match.pattern or "<unmatched>"
        upstream = TraceContext.from_header(request.request_id)
        with obs.tracer.span(
            "http.request", parent=upstream, method=request.method, route=route
        ) as span:
            timer = obs.timer()
            response = self._dispatch(request, match)
            elapsed = timer.elapsed()
            span.set(status=response.status)
        response.headers.append(("X-Request-Id", span.context().to_header()))
        obs.metrics.counter(
            "http_requests_total",
            "Portal requests served",
            labels=("route", "method", "status"),
        ).labels(
            route=route, method=request.method, status=response.status
        ).inc()
        obs.metrics.histogram(
            "http_request_seconds",
            "Portal request latency",
            labels=("route",),
        ).labels(route=route).observe(elapsed)
        obs.log.log(
            "http.request",
            method=request.method,
            path=request.path,
            route=route,
            status=response.status,
            duration=elapsed,
            trace_id=span.trace_id,
        )
        return response

    def _dispatch(self, request: Request, match=None) -> Response:
        """Session check + routing + error mapping (no instrumentation).

        Every GET runs against one MVCC snapshot (``request.snapshot``),
        opened here and closed when the view returns: the page renders
        from a single consistent state, never blocks on a concurrent
        writer, and repeated reads within the view agree with each
        other.  Writes (POST/PUT) keep working against the live
        database through the single-writer transaction protocol.

        The snapshot is opened *inside* the ``try`` and closed in the
        ``finally`` however dispatch exits — including the catch-all
        below — so a view blowing up in a worker thread can never
        strand a snapshot and pin the MVCC pruning horizon for the
        life of the process.

        Cacheable GETs go through :class:`~repro.portal.caching
        .CachePolicy`: a matching ``If-None-Match`` is answered ``304``
        before any snapshot is opened or view run, and fresh renders
        leave with a strong ETag derived from exactly the tables they
        read.  ``/api`` paths get JSON error bodies (and ``401`` rather
        than a login redirect) for machine clients.
        """
        is_api = request.path == "/api" or request.path.startswith("/api/")
        token = request.cookies.get(_SESSION_COOKIE, "")
        if request.path not in _PUBLIC_PATHS:
            try:
                request.session = self.system.auth.resolve(token)
            except AuthenticationError:
                if is_api:
                    return Response.json(
                        {"error": "authentication required"}, status=401
                    )
                return Response.redirect("/login")
        if match is None:
            match = self.router.resolve(request.method, request.path)
        cache_ctx = None
        try:
            if request.method == "GET":
                cache_ctx = self.cache.begin(match.pattern, request)
                if cache_ctx is not None:
                    not_modified = cache_ctx.not_modified()
                    if not_modified is not None:
                        return not_modified
                    cache_ctx.capture()
                if self.replicas is not None:
                    request.snapshot = self.replicas.read_snapshot(
                        min_seq=self._seen_seq(request)
                    )
                else:
                    request.snapshot = self.system.db.snapshot()
            if cache_ctx is not None:
                with track_reads(cache_ctx.sink):
                    response = self.router.dispatch(request, match)
                cache_ctx.finish(response)
            else:
                response = self.router.dispatch(request, match)
            if (
                request.method in ("POST", "PUT")
                and response.status < 400
                and self.replicas is not None
            ):
                response.set_cookie(
                    _SEEN_SEQ_COOKIE, str(self.system.db.committed_seq)
                )
            return response
        except AccessDenied as exc:
            if is_api:
                return Response.json({"error": str(exc)}, status=403)
            return Response.forbidden(esc(str(exc)))
        except EntityNotFound as exc:
            if is_api:
                return Response.json({"error": str(exc)}, status=404)
            return Response.not_found(esc(str(exc)))
        except ValidationError as exc:
            if is_api:
                return Response.json(
                    {"error": str(exc), "fields": dict(exc.field_errors)},
                    status=400,
                )
            details = "".join(
                f"<li><b>{esc(field)}</b>: {esc(problem)}</li>"
                for field, problem in exc.field_errors.items()
            )
            return Response(
                page("Validation failed", f"<p>{esc(exc)}</p><ul>{details}</ul>"),
                status=400,
            )
        except BFabricError as exc:
            self.system.errors.report("portal", str(exc), {"path": request.path})
            if is_api:
                return Response.json({"error": str(exc)}, status=500)
            return Response(
                page("Error", f"<p>{esc(exc)}</p>"), status=500
            )
        except Exception as exc:  # worker threads must survive any view
            self.system.errors.report(
                "portal", f"{type(exc).__name__}: {exc}", {"path": request.path}
            )
            if is_api:
                return Response.json({"error": "internal error"}, status=500)
            return Response(
                page("Error", "<p>internal error</p>"), status=500
            )
        finally:
            if request.snapshot is not None:
                request.snapshot.close()
                request.snapshot = None

    @staticmethod
    def _seen_seq(request: Request) -> "int | None":
        """The read-your-writes floor from the session cookie, if sane."""
        raw = request.cookies.get(_SEEN_SEQ_COOKIE, "")
        try:
            return int(raw) if raw else None
        except ValueError:
            return None

    # -- session helpers ---------------------------------------------------------------

    def principal(self, request: Request):
        return request.session.principal

    def history_for(self, request: Request) -> SearchHistory:
        token = request.session.token
        if token not in self._histories:
            self._histories[token] = SearchHistory()
        return self._histories[token]

    # -- view registration ----------------------------------------------------------------

    def _register_views(self) -> None:
        from repro.portal.views import (
            admin as admin_views,
            annotations as annotation_views,
            api as api_views,
            auth as auth_views,
            experiments as experiment_views,
            home as home_views,
            imports as import_views,
            projects as project_views,
            search as search_views,
        )

        auth_views.register(self.router, self)
        home_views.register(self.router, self)
        project_views.register(self.router, self)
        annotation_views.register(self.router, self)
        import_views.register(self.router, self)
        experiment_views.register(self.router, self)
        search_views.register(self.router, self)
        admin_views.register(self.router, self)
        api_views.register(self.router, self)

    # -- for auth views ----------------------------------------------------------------------

    @staticmethod
    def session_cookie_name() -> str:
        return _SESSION_COOKIE
