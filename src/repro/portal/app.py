"""The portal WSGI application."""

from __future__ import annotations

from typing import Callable

from repro.errors import (
    AccessDenied,
    AuthenticationError,
    BFabricError,
    EntityNotFound,
    ValidationError,
)
from repro.facade import BFabric
from repro.obs import TraceContext
from repro.portal.http import Request, Response
from repro.portal.render import esc, page
from repro.portal.routing import Router
from repro.search.history import SearchHistory

_SESSION_COOKIE = "bfabric_session"

#: Paths reachable without a login session.
_PUBLIC_PATHS = {"/login", "/ping"}


class PortalApplication:
    """WSGI callable exposing the whole system."""

    def __init__(self, system: BFabric, *, replicas=None):
        """*replicas* is an optional
        :class:`~repro.replication.manager.ReplicaSet`: when given,
        every GET's read snapshot is routed to the least-lagged healthy
        replica (primary fallback), so browse traffic scales across the
        replica fleet while writes keep hitting the primary."""
        self.system = system
        self.replicas = replicas
        self.router = Router()
        self._histories: dict[str, SearchHistory] = {}
        self._register_views()

    # -- WSGI entry ----------------------------------------------------------------

    def __call__(self, environ: dict, start_response: Callable):
        request = Request.from_environ(environ)
        response = self.handle(request)
        return response.wsgi(start_response)

    def handle(self, request: Request) -> Response:
        """Dispatch one request with timing (the WSGI middleware layer).

        Every request is traced and recorded as a labelled counter +
        latency histogram; the route label is the registered pattern
        (``/project/<int:project_id>``), never the raw path, so metric
        cardinality stays bounded.  Unroutable paths share one
        ``<unmatched>`` label.

        The request span accepts an upstream trace through the
        ``X-Request-Id`` header (``trace_id`` or ``trace_id:span_id``)
        and mints a fresh trace otherwise; either way the response
        echoes the request's own span context back in ``X-Request-Id``,
        so clients hold a correlation id that finds the full trace in
        ``repro debug-bundle`` output.
        """
        obs = self.system.obs
        route = self.router.pattern_for(request.method, request.path) or "<unmatched>"
        upstream = TraceContext.from_header(request.request_id)
        with obs.tracer.span(
            "http.request", parent=upstream, method=request.method, route=route
        ) as span:
            timer = obs.timer()
            response = self._dispatch(request)
            elapsed = timer.elapsed()
            span.set(status=response.status)
        response.headers.append(("X-Request-Id", span.context().to_header()))
        obs.metrics.counter(
            "http_requests_total",
            "Portal requests served",
            labels=("route", "method", "status"),
        ).labels(
            route=route, method=request.method, status=response.status
        ).inc()
        obs.metrics.histogram(
            "http_request_seconds",
            "Portal request latency",
            labels=("route",),
        ).labels(route=route).observe(elapsed)
        obs.log.log(
            "http.request",
            method=request.method,
            path=request.path,
            route=route,
            status=response.status,
            duration=elapsed,
            trace_id=span.trace_id,
        )
        return response

    def _dispatch(self, request: Request) -> Response:
        """Session check + routing + error mapping (no instrumentation).

        Every GET runs against one MVCC snapshot (``request.snapshot``),
        opened here and closed when the view returns: the page renders
        from a single consistent state, never blocks on a concurrent
        writer, and repeated reads within the view agree with each
        other.  Writes (POST/PUT) keep working against the live
        database through the single-writer transaction protocol.
        """
        token = request.cookies.get(_SESSION_COOKIE, "")
        if request.path not in _PUBLIC_PATHS:
            try:
                request.session = self.system.auth.resolve(token)
            except AuthenticationError:
                return Response.redirect("/login")
        if request.method == "GET":
            if self.replicas is not None:
                request.snapshot = self.replicas.read_snapshot()
            else:
                request.snapshot = self.system.db.snapshot()
        try:
            return self.router.dispatch(request)
        except AccessDenied as exc:
            return Response.forbidden(esc(str(exc)))
        except EntityNotFound as exc:
            return Response.not_found(esc(str(exc)))
        except ValidationError as exc:
            details = "".join(
                f"<li><b>{esc(field)}</b>: {esc(problem)}</li>"
                for field, problem in exc.field_errors.items()
            )
            return Response(
                page("Validation failed", f"<p>{esc(exc)}</p><ul>{details}</ul>"),
                status=400,
            )
        except BFabricError as exc:
            self.system.errors.report("portal", str(exc), {"path": request.path})
            return Response(
                page("Error", f"<p>{esc(exc)}</p>"), status=500
            )
        finally:
            if request.snapshot is not None:
                request.snapshot.close()
                request.snapshot = None

    # -- session helpers ---------------------------------------------------------------

    def principal(self, request: Request):
        return request.session.principal

    def history_for(self, request: Request) -> SearchHistory:
        token = request.session.token
        if token not in self._histories:
            self._histories[token] = SearchHistory()
        return self._histories[token]

    # -- view registration ----------------------------------------------------------------

    def _register_views(self) -> None:
        from repro.portal.views import (
            admin as admin_views,
            annotations as annotation_views,
            auth as auth_views,
            experiments as experiment_views,
            home as home_views,
            imports as import_views,
            projects as project_views,
            search as search_views,
        )

        auth_views.register(self.router, self)
        home_views.register(self.router, self)
        project_views.register(self.router, self)
        annotation_views.register(self.router, self)
        import_views.register(self.router, self)
        experiment_views.register(self.router, self)
        search_views.register(self.router, self)
        admin_views.register(self.router, self)

    # -- for auth views ----------------------------------------------------------------------

    @staticmethod
    def session_cookie_name() -> str:
        return _SESSION_COOKIE
