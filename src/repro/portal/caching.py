"""Exact conditional-GET caching derived from MVCC table versions.

The storage engine already maintains everything an HTTP cache needs:
every table carries the commit sequence of the last transaction that
touched it (:attr:`Table.version`), and the database can report those as
a *version vector* in O(tables).  This module turns that bookkeeping
into **strong, exact ETags**:

* A response's ETag is a hash over the ``(table, version)`` pairs of the
  tables the render actually read — its *covering set* — plus the
  request identity (path, query, principal) and the database's history
  id.  The vector moves iff a covering table committed, so the ETag
  changes iff the page could have changed.

* The covering set is *learned*, not declared: a thread-local read probe
  (:func:`repro.storage.table.track_reads`) records every table the view
  touches while rendering.  Coverage per route only ever widens
  (monotone union across requests), so a validator computed over a
  narrower set than the route's current coverage simply hashes
  differently and misses — a spurious render, never a false 304.

* Mid-render commits are certified away: the vector is captured before
  dispatch and re-read (projected onto the touched set) after; the ETag
  is only emitted when the two agree, so a validator never vouches for a
  torn read.

The happy path is what makes this worth it: when a route's coverage is
already known and the client's ``If-None-Match`` matches the ETag of the
*current* vector, the request is answered ``304 Not Modified`` without
rendering, without opening a snapshot, and without touching a table —
a handful of dict reads and one small hash.

Validation always runs against the **primary** database.  Views render
from the primary's live services (the request snapshot only feeds
search), so deriving validators from a lagged replica's vector would
let a stale 304 vouch for a fresh body.  Sharded databases are handled
by shard-qualified vector keys (``"<shard>:<table>"``); the probe notes
bare table names and :meth:`_project` matches either form.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING

from repro.portal.http import Request, Response

if TYPE_CHECKING:
    pass

#: Bumped whenever the hash recipe changes, so stale validators from an
#: older build can never collide into a false 304 after an upgrade.
_FORMAT = "repro-etag-v1"

#: Route patterns whose GETs may carry validators.  Deliberately an
#: allowlist: search pages render from per-session in-memory history and
#: admin pages from live metrics — neither is a function of table
#: versions, so caching them would be wrong, not just ineffective.
CACHEABLE_ROUTES = frozenset({
    "/",
    "/projects",
    "/projects/<int:project_id>",
    "/samples/<int:sample_id>",
    "/workunits/<int:workunit_id>",
    "/api/projects",
    "/api/projects/<int:project_id>",
    "/api/samples/<int:sample_id>",
    "/api/workunits/<int:workunit_id>",
})


def parse_if_none_match(header: str) -> frozenset[str]:
    """The validators a client presented, as a set of quoted tags.

    Weak prefixes are stripped (a strong ETag compares equal to its weak
    form for GET revalidation); ``*`` is kept verbatim and matches any
    current validator per RFC 9110.
    """
    tags = set()
    for part in header.split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith("W/"):
            part = part[2:]
        tags.add(part)
    return frozenset(tags)


class RouteCoverage:
    """Learned covering table sets per route pattern (monotone union)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._covers: dict[str, frozenset[str]] = {}

    def get(self, route: str) -> "frozenset[str] | None":
        return self._covers.get(route)

    def widen(self, route: str, tables: "frozenset[str]") -> None:
        with self._lock:
            known = self._covers.get(route)
            if known is not None:
                tables = tables | known
            self._covers[route] = tables

    def snapshot(self) -> dict[str, frozenset[str]]:
        """For introspection/tests."""
        with self._lock:
            return dict(self._covers)


def _project(vector: dict[str, int], names: "frozenset[str]") -> dict[str, int]:
    """Restrict a version vector to the named tables.

    Vector keys are bare table names (single database) or
    ``"<shard>:<table>"`` (sharded); *names* always holds bare names as
    noted by the read probe, so qualified keys match on their suffix.
    """
    projected: dict[str, int] = {}
    for key, version in vector.items():
        name = key.partition(":")[2] if ":" in key else key
        if name in names:
            projected[key] = version
    return projected


def compute_etag(
    vector: dict[str, int],
    *,
    user_id: int,
    path: str,
    query: dict[str, str],
    history_id: str,
) -> str:
    """A strong validator for one (state, request identity) pair.

    The hash covers the *set* of tables, not just their versions: a
    validator minted over ``{projects}`` can never match one computed
    over ``{projects, annotations}``, which is what keeps coverage
    widening safe.
    """
    digest = hashlib.sha256()
    digest.update(_FORMAT.encode())
    digest.update(b"\x00" + history_id.encode())
    digest.update(b"\x00" + str(user_id).encode())
    digest.update(b"\x00" + path.encode())
    for key, value in sorted(query.items()):
        digest.update(b"\x01" + key.encode() + b"\x02" + value.encode())
    for key, version in sorted(vector.items()):
        digest.update(b"\x03" + key.encode() + b"\x02" + str(version).encode())
    return '"' + digest.hexdigest()[:32] + '"'


class _CacheContext:
    """Per-request cache state threaded through dispatch."""

    __slots__ = ("policy", "route", "request", "user_id", "_pre", "sink")

    def __init__(self, policy: "CachePolicy", route: str, request: Request,
                 user_id: int):
        self.policy = policy
        self.route = route
        self.request = request
        self.user_id = user_id
        #: Full vector pinned by :meth:`capture` just before dispatch;
        #: stays ``None`` on the 304 fast path, which only ever reads
        #: the covering tables' versions.
        self._pre: "dict[str, int] | None" = None
        #: Filled by the read probe during render.
        self.sink: set[str] = set()

    def capture(self) -> None:
        """Pin the pre-render vector.

        Must run *before* the view dispatches: :meth:`finish` certifies
        an ETag by comparing this against the post-render vector, and a
        capture taken any later would make that comparison vacuous (a
        mid-render commit would slip into both sides).
        """
        if self._pre is None:
            self._pre = self.policy.db.version_vector()

    def not_modified(self) -> "Response | None":
        """The 304 fast path: no render, no snapshot, no table reads.

        Only possible once the route's coverage is known.  The current
        coverage is always a superset of the set any outstanding
        validator was minted over, so a hash match implies set equality
        *and* version equality — exactness for free.
        """
        presented = parse_if_none_match(
            self.request.headers.get("if-none-match", "")
        )
        if not presented:
            return None
        cover = self.policy.coverage.get(self.route)
        if cover is None:
            return None
        etag = compute_etag(
            self.policy.db.version_vector(cover),
            user_id=self.user_id,
            path=self.request.path,
            query=self.request.query,
            history_id=self.policy.history_id,
        )
        if etag not in presented and "*" not in presented:
            return None
        response = Response(b"", status=304, content_type="")
        response.headers = [
            ("ETag", etag),
            ("Cache-Control", "private, no-cache"),
        ]
        return response

    def finish(self, response: Response) -> None:
        """Stamp a freshly rendered 200 with its validator.

        The ETag is only emitted when the covering tables' versions did
        not move between the pre-dispatch capture and now: a mid-render
        commit means the body may mix states, and a validator must never
        vouch for a torn read (the next request simply renders again).
        """
        if response.status != 200 or not self.sink or self._pre is None:
            return
        touched = frozenset(self.sink)
        post = _project(self.policy.db.version_vector(touched), touched)
        if post != _project(self._pre, touched):
            return
        self.policy.coverage.widen(self.route, touched)
        response.headers.append(("ETag", compute_etag(
            post,
            user_id=self.user_id,
            path=self.request.path,
            query=self.request.query,
            history_id=self.policy.history_id,
        )))
        response.headers.append(("Cache-Control", "private, no-cache"))


class CachePolicy:
    """The application's conditional-GET machinery (one per portal app)."""

    def __init__(self, db, *, routes: "frozenset[str]" = CACHEABLE_ROUTES):
        self.db = db
        self.routes = routes
        self.coverage = RouteCoverage()
        #: Pins validators to one database lineage: a restore/failover
        #: to a different history invalidates every outstanding ETag.
        self.history_id = str(getattr(db, "history_id", ""))

    def begin(self, route: "str | None", request: Request) -> "_CacheContext | None":
        """A cache context for this GET, or ``None`` when not cacheable."""
        if route is None or route not in self.routes:
            return None
        session = request.session
        principal = getattr(session, "principal", None)
        if principal is None:
            return None
        return _CacheContext(self, route, request, principal.user_id)
