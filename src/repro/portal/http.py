"""Minimal HTTP request/response model over WSGI."""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from http import cookies as _cookies
from typing import Any, Iterable


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    form: dict[str, str] = field(default_factory=dict)
    #: Multi-valued form fields (checkbox groups, multi-selects).
    form_lists: dict[str, list[str]] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    #: Filled by the router from path placeholders.
    params: dict[str, Any] = field(default_factory=dict)
    #: Raw ``X-Request-Id`` header (empty when absent): an upstream
    #: correlation id / trace context the request span should join.
    request_id: str = ""
    #: Filled by the session middleware.
    session: Any = None
    #: MVCC read view for GET requests, opened by the dispatcher and
    #: closed when the request finishes; ``None`` for writes.
    snapshot: Any = None

    @classmethod
    def from_environ(cls, environ: dict) -> "Request":
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/") or "/"
        query_pairs = urllib.parse.parse_qsl(
            environ.get("QUERY_STRING", ""), keep_blank_values=True
        )
        query = dict(query_pairs)
        form: dict[str, str] = {}
        form_lists: dict[str, list[str]] = {}
        if method in ("POST", "PUT"):
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            body = environ["wsgi.input"].read(length) if length else b""
            for key, value in urllib.parse.parse_qsl(
                body.decode("utf-8"), keep_blank_values=True
            ):
                form_lists.setdefault(key, []).append(value)
                form[key] = value
        cookie_header = environ.get("HTTP_COOKIE", "")
        jar = _cookies.SimpleCookie()
        jar.load(cookie_header)
        cookies = {key: morsel.value for key, morsel in jar.items()}
        return cls(
            method=method,
            path=path,
            query=query,
            form=form,
            form_lists=form_lists,
            cookies=cookies,
            request_id=environ.get("HTTP_X_REQUEST_ID", "").strip(),
        )

    def get(self, name: str, default: str = "") -> str:
        """Form value first, then query string."""
        if name in self.form:
            return self.form[name]
        return self.query.get(name, default)

    def get_int(self, name: str, default: int | None = None) -> int | None:
        raw = self.get(name, "")
        if raw == "":
            return default
        try:
            return int(raw)
        except ValueError:
            return default

    def get_list(self, name: str) -> list[str]:
        return list(self.form_lists.get(name, ()))


class Response:
    """One HTTP response."""

    def __init__(
        self,
        body: "str | bytes" = "",
        *,
        status: int = 200,
        content_type: str = "text/html; charset=utf-8",
    ):
        self.status = status
        self.headers: list[tuple[str, str]] = [("Content-Type", content_type)]
        self.body = body.encode("utf-8") if isinstance(body, str) else body

    @classmethod
    def redirect(cls, location: str) -> "Response":
        response = cls("", status=303)
        response.headers.append(("Location", location))
        return response

    @classmethod
    def not_found(cls, message: str = "not found") -> "Response":
        return cls(f"<h1>404</h1><p>{message}</p>", status=404)

    @classmethod
    def forbidden(cls, message: str = "forbidden") -> "Response":
        return cls(f"<h1>403</h1><p>{message}</p>", status=403)

    @classmethod
    def download(
        cls, payload: bytes, filename: str, content_type: str = "application/octet-stream"
    ) -> "Response":
        response = cls(payload, content_type=content_type)
        response.headers.append(
            ("Content-Disposition", f'attachment; filename="{filename}"')
        )
        return response

    def set_cookie(self, name: str, value: str, *, max_age: int | None = None) -> None:
        cookie = f"{name}={value}; Path=/; HttpOnly"
        if max_age is not None:
            cookie += f"; Max-Age={max_age}"
        self.headers.append(("Set-Cookie", cookie))

    @property
    def status_line(self) -> str:
        reasons = {
            200: "OK", 303: "See Other", 400: "Bad Request",
            403: "Forbidden", 404: "Not Found", 500: "Internal Server Error",
        }
        return f"{self.status} {reasons.get(self.status, 'Unknown')}"

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def wsgi(self, start_response) -> Iterable[bytes]:
        start_response(self.status_line, self.headers)
        return [self.body]
