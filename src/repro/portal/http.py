"""Minimal HTTP request/response model over WSGI."""

from __future__ import annotations

import json as _json
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Iterable


def _parse_cookies(header: str) -> dict[str, str]:
    """Lenient ``Cookie`` header parsing on the request hot path.

    The portal only reads cookies it minted itself (token/int values,
    never quoted or escaped), so a split-based parse is sufficient and
    an order of magnitude cheaper than ``SimpleCookie``; foreign cookies
    with exotic values at worst parse to strings nothing looks up.
    """
    if not header:
        return {}
    cookies: dict[str, str] = {}
    for part in header.split(";"):
        name, sep, value = part.partition("=")
        if not sep:
            continue
        value = value.strip()
        if len(value) > 1 and value[0] == '"' and value[-1] == '"':
            value = value[1:-1]
        cookies[name.strip()] = value
    return cookies


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    form: dict[str, str] = field(default_factory=dict)
    #: Multi-valued form fields (checkbox groups, multi-selects).
    form_lists: dict[str, list[str]] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    #: All request headers, lower-cased names (``if-none-match``, …).
    headers: dict[str, str] = field(default_factory=dict)
    #: Parsed JSON body for ``application/json`` requests; ``None``
    #: otherwise (form posts land in :attr:`form` as before).
    json: Any = None
    #: Filled by the router from path placeholders.
    params: dict[str, Any] = field(default_factory=dict)
    #: Raw ``X-Request-Id`` header (empty when absent): an upstream
    #: correlation id / trace context the request span should join.
    request_id: str = ""
    #: Filled by the session middleware.
    session: Any = None
    #: MVCC read view for GET requests, opened by the dispatcher and
    #: closed when the request finishes; ``None`` for writes.
    snapshot: Any = None

    @classmethod
    def from_environ(cls, environ: dict) -> "Request":
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/") or "/"
        query_pairs = urllib.parse.parse_qsl(
            environ.get("QUERY_STRING", ""), keep_blank_values=True
        )
        query = dict(query_pairs)
        headers: dict[str, str] = {}
        for key, value in environ.items():
            if key.startswith("HTTP_"):
                headers[key[5:].replace("_", "-").lower()] = value
        for key in ("CONTENT_TYPE", "CONTENT_LENGTH"):
            if environ.get(key):
                headers[key.replace("_", "-").lower()] = environ[key]
        form: dict[str, str] = {}
        form_lists: dict[str, list[str]] = {}
        json_body: Any = None
        if method in ("POST", "PUT"):
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            body = environ["wsgi.input"].read(length) if length else b""
            if "json" in headers.get("content-type", ""):
                try:
                    json_body = _json.loads(body.decode("utf-8")) if body else None
                except ValueError:
                    json_body = None
            else:
                for key, value in urllib.parse.parse_qsl(
                    body.decode("utf-8"), keep_blank_values=True
                ):
                    form_lists.setdefault(key, []).append(value)
                    form[key] = value
        cookies = _parse_cookies(environ.get("HTTP_COOKIE", ""))
        return cls(
            method=method,
            path=path,
            query=query,
            form=form,
            form_lists=form_lists,
            cookies=cookies,
            headers=headers,
            json=json_body,
            request_id=environ.get("HTTP_X_REQUEST_ID", "").strip(),
        )

    def get(self, name: str, default: str = "") -> str:
        """Form value first, then query string."""
        if name in self.form:
            return self.form[name]
        return self.query.get(name, default)

    def get_int(self, name: str, default: int | None = None) -> int | None:
        raw = self.get(name, "")
        if raw == "":
            return default
        try:
            return int(raw)
        except ValueError:
            return default

    def get_list(self, name: str) -> list[str]:
        return list(self.form_lists.get(name, ()))


class Response:
    """One HTTP response."""

    def __init__(
        self,
        body: "str | bytes" = "",
        *,
        status: int = 200,
        content_type: str = "text/html; charset=utf-8",
    ):
        self.status = status
        self.headers: list[tuple[str, str]] = [("Content-Type", content_type)]
        self.body = body.encode("utf-8") if isinstance(body, str) else body

    @classmethod
    def json(cls, payload: Any, *, status: int = 200) -> "Response":
        return cls(
            _json.dumps(payload, sort_keys=True, default=str),
            status=status,
            content_type="application/json; charset=utf-8",
        )

    @classmethod
    def redirect(cls, location: str) -> "Response":
        response = cls("", status=303)
        response.headers.append(("Location", location))
        return response

    @classmethod
    def not_found(cls, message: str = "not found") -> "Response":
        return cls(f"<h1>404</h1><p>{message}</p>", status=404)

    @classmethod
    def forbidden(cls, message: str = "forbidden") -> "Response":
        return cls(f"<h1>403</h1><p>{message}</p>", status=403)

    @classmethod
    def download(
        cls, payload: bytes, filename: str, content_type: str = "application/octet-stream"
    ) -> "Response":
        response = cls(payload, content_type=content_type)
        response.headers.append(
            ("Content-Disposition", f'attachment; filename="{filename}"')
        )
        return response

    def set_cookie(self, name: str, value: str, *, max_age: int | None = None) -> None:
        cookie = f"{name}={value}; Path=/; HttpOnly"
        if max_age is not None:
            cookie += f"; Max-Age={max_age}"
        self.headers.append(("Set-Cookie", cookie))

    @property
    def status_line(self) -> str:
        reasons = {
            200: "OK", 303: "See Other", 304: "Not Modified",
            400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
            404: "Not Found", 405: "Method Not Allowed",
            411: "Length Required", 413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 501: "Not Implemented",
            503: "Service Unavailable",
        }
        return f"{self.status} {reasons.get(self.status, 'Unknown')}"

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def wsgi(self, start_response) -> Iterable[bytes]:
        start_response(self.status_line, self.headers)
        return [self.body]
