"""HTML rendering helpers.

Small, deliberately framework-free: escape-by-default builders for the
handful of structures every screen needs (page chrome, tables, forms,
drop-downs filled from vocabularies).
"""

from __future__ import annotations

import html
from typing import Any, Iterable, Sequence


def esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def page(title: str, body: str, *, user: str = "", flash: str = "") -> str:
    """The portal chrome around a screen body."""
    nav = ""
    if user:
        nav = (
            '<nav><a href="/">Home</a> | <a href="/projects">Projects</a> | '
            '<a href="/annotations/review">Annotation Review</a> | '
            '<a href="/search">Search</a> | <a href="/browse">Browse</a> | '
            '<a href="/admin">Admin</a> | '
            f"logged in as <b>{esc(user)}</b> "
            '(<a href="/logout">logout</a>)</nav><hr>'
        )
    flash_html = f'<p class="flash"><em>{esc(flash)}</em></p>' if flash else ""
    return (
        "<!doctype html><html><head>"
        f"<title>B-Fabric — {esc(title)}</title>"
        "<style>body{font-family:sans-serif;margin:2em} "
        "table{border-collapse:collapse} td,th{border:1px solid #999;"
        "padding:4px 8px} .flash{color:#060}</style>"
        f"</head><body>{nav}{flash_html}<h1>{esc(title)}</h1>{body}"
        "</body></html>"
    )


def table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body_rows = []
    for row in rows:
        cells = "".join(f"<td>{cell}</td>" for cell in row)
        body_rows.append(f"<tr>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body_rows)}</table>"


def link(href: str, label: Any) -> str:
    return f'<a href="{esc(href)}">{esc(label)}</a>'


def text_input(name: str, *, value: str = "", label: str = "") -> str:
    caption = label or name.replace("_", " ")
    return (
        f"<label>{esc(caption)}: "
        f'<input type="text" name="{esc(name)}" value="{esc(value)}"></label><br>'
    )


def dropdown(
    name: str,
    options: Sequence[tuple[Any, str]],
    *,
    selected: Any = None,
    label: str = "",
    allow_new: bool = False,
) -> str:
    """A select filled from a vocabulary.

    With ``allow_new`` a free-text companion field ``new_<name>`` is
    rendered — the demo's "if a user does not find a needed annotation
    ... the user can create a new one" path.
    """
    caption = label or name.replace("_", " ")
    option_html = ['<option value="">—</option>']
    for value, text in options:
        marker = " selected" if value == selected else ""
        option_html.append(
            f'<option value="{esc(value)}"{marker}>{esc(text)}</option>'
        )
    widget = (
        f"<label>{esc(caption)}: "
        f'<select name="{esc(name)}">{"".join(option_html)}</select></label>'
    )
    if allow_new:
        widget += (
            f' or new: <input type="text" name="new_{esc(name)}" value="">'
        )
    return widget + "<br>"


def form(action: str, body: str, *, submit: str = "Save") -> str:
    return (
        f'<form method="post" action="{esc(action)}">{body}'
        f'<button type="submit">{esc(submit)}</button></form>'
    )


def definition_list(pairs: Iterable[tuple[str, Any]]) -> str:
    items = "".join(
        f"<dt><b>{esc(key)}</b></dt><dd>{esc(value)}</dd>" for key, value in pairs
    )
    return f"<dl>{items}</dl>"
