"""Path routing with typed placeholders.

Patterns look like ``/project/<int:project_id>/samples``; matched
placeholders land in ``request.params``.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.portal.http import Request, Response

Handler = Callable[[Request], Response]

_PLACEHOLDER_RE = re.compile(r"<(int|str):([a-z_]+)>")


def _compile(pattern: str) -> re.Pattern:
    regex = ""
    position = 0
    for match in _PLACEHOLDER_RE.finditer(pattern):
        regex += re.escape(pattern[position : match.start()])
        kind, name = match.group(1), match.group(2)
        if kind == "int":
            regex += f"(?P<{name}>\\d+)"
        else:
            regex += f"(?P<{name}>[^/]+)"
        position = match.end()
    regex += re.escape(pattern[position:])
    return re.compile(f"^{regex}$")


class RouteMatch:
    """The outcome of matching one (method, path) against the table.

    ``handler`` is ``None`` when nothing dispatches: ``allowed`` then
    lists methods that *would* have (405-style), and ``pattern`` still
    identifies the route when only the method mismatched.  Instances
    are cached and shared — treat them as immutable.
    """

    __slots__ = ("pattern", "handler", "params", "allowed")

    def __init__(self, pattern, handler, params, allowed):
        self.pattern: "str | None" = pattern
        self.handler: "Handler | None" = handler
        self.params: dict = params
        self.allowed: tuple = allowed


class Router:
    """Registers and dispatches handlers."""

    #: Resolutions memoized across requests.  Keyed by raw path, so the
    #: bound matters (ids embed unbounded cardinality); eviction is
    #: FIFO, which is enough for the hot loop this exists for (the same
    #: few paths hammered repeatedly pay one regex scan total, not one
    #: per metrics label + cache probe + dispatch).
    _CACHE_MAX = 4096

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []
        self._cache: dict[tuple[str, str], RouteMatch] = {}

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(), _compile(pattern), pattern, handler))
        self._cache.clear()

    def get(self, pattern: str) -> Callable[[Handler], Handler]:
        def decorator(handler: Handler) -> Handler:
            self.add("GET", pattern, handler)
            return handler

        return decorator

    def post(self, pattern: str) -> Callable[[Handler], Handler]:
        def decorator(handler: Handler) -> Handler:
            self.add("POST", pattern, handler)
            return handler

        return decorator

    def resolve(self, method: str, path: str) -> RouteMatch:
        """Match once, memoized — every later question about this
        request (metrics label, cache policy, gate, dispatch) reads the
        same :class:`RouteMatch` instead of rescanning the table."""
        key = (method, path)
        match = self._cache.get(key)
        if match is None:
            match = self._resolve(method.upper(), path)
            if len(self._cache) >= self._CACHE_MAX:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = match
        return match

    def _resolve(self, method: str, path: str) -> RouteMatch:
        allowed: list[str] = []
        fallback: "str | None" = None
        for route_method, regex, pattern, handler in self._routes:
            found = regex.match(path)
            if found is None:
                continue
            if route_method != method:
                allowed.append(route_method)
                fallback = pattern  # method mismatch still names the route
                continue
            params = {
                name: int(value) if value.isdigit() else value
                for name, value in found.groupdict().items()
            }
            return RouteMatch(pattern, handler, params, ())
        return RouteMatch(fallback, None, {}, tuple(allowed))

    def dispatch(
        self, request: Request, match: "RouteMatch | None" = None
    ) -> Response:
        if match is None:
            match = self.resolve(request.method, request.path)
        if match.handler is not None:
            request.params = dict(match.params)
            return match.handler(request)
        if match.allowed:
            return Response(
                f"method {request.method} not allowed", status=400
            )
        return Response.not_found(f"no route for {request.path}")

    def patterns(self) -> list[str]:
        return [pattern for _, _, pattern, _ in self._routes]

    def pattern_for(self, method: str, path: str) -> str | None:
        """The registered pattern *path* would dispatch to, if any.

        Used as the bounded-cardinality route label on request metrics
        (raw paths embed ids; patterns do not).
        """
        return self.resolve(method, path).pattern
