"""Path routing with typed placeholders.

Patterns look like ``/project/<int:project_id>/samples``; matched
placeholders land in ``request.params``.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.portal.http import Request, Response

Handler = Callable[[Request], Response]

_PLACEHOLDER_RE = re.compile(r"<(int|str):([a-z_]+)>")


def _compile(pattern: str) -> re.Pattern:
    regex = ""
    position = 0
    for match in _PLACEHOLDER_RE.finditer(pattern):
        regex += re.escape(pattern[position : match.start()])
        kind, name = match.group(1), match.group(2)
        if kind == "int":
            regex += f"(?P<{name}>\\d+)"
        else:
            regex += f"(?P<{name}>[^/]+)"
        position = match.end()
    regex += re.escape(pattern[position:])
    return re.compile(f"^{regex}$")


class Router:
    """Registers and dispatches handlers."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(), _compile(pattern), pattern, handler))

    def get(self, pattern: str) -> Callable[[Handler], Handler]:
        def decorator(handler: Handler) -> Handler:
            self.add("GET", pattern, handler)
            return handler

        return decorator

    def post(self, pattern: str) -> Callable[[Handler], Handler]:
        def decorator(handler: Handler) -> Handler:
            self.add("POST", pattern, handler)
            return handler

        return decorator

    def dispatch(self, request: Request) -> Response:
        allowed: list[str] = []
        for method, regex, _pattern, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            params: dict = {}
            for name, value in match.groupdict().items():
                params[name] = int(value) if value.isdigit() else value
            request.params = params
            return handler(request)
        if allowed:
            return Response(
                f"method {request.method} not allowed", status=400
            )
        return Response.not_found(f"no route for {request.path}")

    def patterns(self) -> list[str]:
        return [pattern for _, _, pattern, _ in self._routes]

    def pattern_for(self, method: str, path: str) -> str | None:
        """The registered pattern *path* would dispatch to, if any.

        Used as the bounded-cardinality route label on request metrics
        (raw paths embed ids; patterns do not).
        """
        method = method.upper()
        fallback: str | None = None
        for route_method, regex, pattern, _ in self._routes:
            if regex.match(path) is None:
                continue
            if route_method == method:
                return pattern
            fallback = pattern  # method mismatch still identifies the route
        return fallback
