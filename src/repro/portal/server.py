"""The production serving tier: a threaded HTTP/1.1 server for the portal.

``wsgiref`` got the portal off the ground, but it is single-threaded,
unbounded, and keep-alive-free — the one tier of the system that could
not scale.  This module replaces it with a small, stdlib-only server
built from three cooperating parts:

**Accept loop** — one thread accepts connections and hands them to the
*parker*.  Nothing else ever blocks on ``accept()``.

**Parker** — one thread multiplexing every connection that is not
currently being served.  It ``select()``\\ s over parked sockets; the
moment one turns readable it moves to the bounded work queue, and a
connection idle past the keep-alive timeout is closed.  Parking is what
lets a small worker pool serve many keep-alive clients: an idle
connection costs a file descriptor, never a thread.

**Workers** — a fixed pool pulling readable connections off the queue.
A worker reads exactly one request (bounded: request line ≤ 8 KiB,
headers ≤ 64 KiB, body ≤ 10 MiB, chunked bodies refused with ``501``),
runs the WSGI application, writes the response, and re-parks the
connection.  Workers therefore only ever block on a socket that already
has data — never on an idle client.

Admission control happens at three rungs, all shedding with
``503 + Retry-After`` rather than queueing unboundedly:

1. *queue* — the work queue is bounded; a readable connection (or a
   fresh accept) that finds it full is answered 503 and closed.
2. *inflight* — a global gate on concurrently executing application
   requests (``--max-inflight``); past it, the request is answered 503
   without touching the application.  The connection survives.
3. *route* — optional per-route concurrency limits for endpoints that
   are expensive by construction (bulk exports, reports).

Graceful drain (:meth:`PortalServer.shutdown`): the listener closes
first (no new connections), parked idle connections are closed, and
workers finish the requests they already started before exiting — an
in-flight response is never truncated.
"""

from __future__ import annotations

import io
import queue
import select
import socket
import threading
import time
from typing import Callable

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 10 * 1024 * 1024

#: Seconds a worker will wait for the rest of a request that has
#: started arriving (slowloris bound); distinct from the keep-alive
#: idle timeout, which is enforced by the parker.
IO_TIMEOUT = 10.0

_REASONS = {
    200: "OK", 303: "See Other", 304: "Not Modified", 400: "Bad Request",
    401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}

_STATUS_LINES = {
    status: f"HTTP/1.1 {status} {reason}" for status, reason in _REASONS.items()
}

#: Shared sink for ``wsgi.errors`` — nothing in the portal writes to it,
#: so one instance per server beats one allocation per request.
_WSGI_ERRORS = io.StringIO()


class _BadRequest(Exception):
    """A protocol violation the server answers itself (no WSGI run)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _Connection:
    """One client connection: socket + read buffer + keep-alive state.

    The buffer matters for parking: a pipelined request may already sit
    in it after a response is written, in which case the connection must
    go straight back onto the work queue — ``select()`` on the bare
    socket would never fire for bytes we already consumed.
    """

    __slots__ = ("sock", "addr", "buffer", "served", "deadline")

    def __init__(self, sock: socket.socket, addr):
        self.sock = sock
        self.addr = addr
        self.buffer = bytearray()
        #: Requests completed on this connection (keep-alive reuse
        #: shows as ``served > 0`` when the next one starts).
        self.served = 0
        #: Idle cutoff while parked; maintained by the parker.
        self.deadline = 0.0

    # -- bounded reads -----------------------------------------------------

    def _fill(self) -> bool:
        """Pull one chunk into the buffer; False on EOF."""
        chunk = self.sock.recv(65536)
        if not chunk:
            return False
        self.buffer.extend(chunk)
        return True

    def read_head(self, limit: int) -> "bytes | None":
        """The request head (request line + headers) in one gulp.

        Reads through the blank-line terminator and returns everything
        before it; one buffer search per fill beats a per-line loop on
        the hot path.  ``None`` means clean EOF before any byte — the
        client closed an idle connection, which is not an error.
        """
        while True:
            index = self.buffer.find(b"\r\n\r\n")
            if index != -1:
                if index + 4 > limit:
                    raise _BadRequest(431, "header section too large")
                head = bytes(self.buffer[:index])
                del self.buffer[: index + 4]
                return head
            if len(self.buffer) > limit:
                raise _BadRequest(431, "header section too large")
            if not self._fill():
                if self.buffer:
                    raise _BadRequest(400, "truncated request")
                return None

    def read_exact(self, count: int) -> bytes:
        while len(self.buffer) < count:
            if not self._fill():
                raise _BadRequest(400, "truncated body")
        body = bytes(self.buffer[:count])
        del self.buffer[:count]
        return body

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class PortalServer:
    """Threaded HTTP/1.1 host for any WSGI application.

    ``port=0`` binds an ephemeral port (see :attr:`port` after
    :meth:`start`), which is how tests and the bench run fleets of
    servers without colliding.
    """

    def __init__(
        self,
        app: Callable,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        workers: int = 8,
        max_inflight: int = 64,
        keep_alive: float = 5.0,
        queue_depth: "int | None" = None,
        route_limits: "dict[str, int] | None" = None,
        obs=None,
    ):
        self.app = app
        self.host = host
        self.workers = max(1, int(workers))
        self.max_inflight = max(1, int(max_inflight))
        self.keep_alive = float(keep_alive)
        self._keep_alive_header = (
            f"Keep-Alive: timeout={max(1, int(self.keep_alive))}"
        )
        self._queue: "queue.Queue[_Connection | None]" = queue.Queue(
            maxsize=queue_depth if queue_depth is not None else 2 * self.workers
        )
        self._route_gates = {
            route: threading.Semaphore(limit)
            for route, limit in (route_limits or {}).items()
        }
        self._inflight = threading.Semaphore(self.max_inflight)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._mu = threading.Lock()
        self._parked: dict[socket.socket, _Connection] = {}
        self._active: set[_Connection] = set()
        self._inflight_count = 0
        # Self-pipe so the accept thread can wake the parker the moment
        # it registers a connection (instead of waiting out a select tick).
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self.port = self._listener.getsockname()[1]
        self._init_metrics(obs)

    def _init_metrics(self, obs) -> None:
        self.obs = obs
        if obs is None:
            system = getattr(self.app, "system", None)
            self.obs = getattr(system, "obs", None)
        if self.obs is not None:
            metrics = self.obs.metrics
            self._g_connections = metrics.gauge(
                "http_server_connections", "Open portal connections"
            )
            self._g_inflight = metrics.gauge(
                "http_server_inflight", "Requests currently executing"
            )
            self._m_shed = metrics.counter(
                "http_server_shed_total",
                "Requests shed by admission control",
                labels=("reason",),
            )
            self._m_reuse = metrics.counter(
                "http_server_keepalive_reuse_total",
                "Requests served on a reused keep-alive connection",
            )
        else:
            self._g_connections = self._g_inflight = None
            self._m_shed = self._m_reuse = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PortalServer":
        """Bind threads and return immediately (tests, embedding)."""
        self._listener.listen(128)
        self._listener.settimeout(0.5)
        acceptor = threading.Thread(
            target=self._accept_loop, name="portal-accept", daemon=True
        )
        parker = threading.Thread(
            target=self._park_loop, name="portal-park", daemon=True
        )
        self._threads = [acceptor, parker]
        for index in range(self.workers):
            self._threads.append(threading.Thread(
                target=self._worker_loop, name=f"portal-worker-{index}",
                daemon=True,
            ))
        for thread in self._threads:
            thread.start()
        return self

    def serve_forever(self) -> None:
        """:meth:`start` then block until :meth:`shutdown` (the CLI path)."""
        if not self._threads:
            self.start()
        self._stop.wait()

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close idle."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            self._wake_w.sendall(b"x")  # kick the parker out of select()
        except OSError:
            pass
        for _ in range(self.workers):
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=IO_TIMEOUT)
        with self._mu:
            leftovers = list(self._parked.values())
            self._parked.clear()
        for conn in leftovers:
            conn.close()
        while True:  # anything still queued never reached a worker
            try:
                conn = self._queue.get_nowait()
            except queue.Empty:
                break
            if conn is not None:
                conn.close()
        self._wake_r.close()
        self._wake_w.close()

    def __enter__(self) -> "PortalServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- accept + park -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(IO_TIMEOUT)
            self._park(_Connection(sock, addr), fresh=True)

    def _park(self, conn: _Connection, *, fresh: bool = False) -> None:
        """Hand a connection to the parker (or straight to the queue).

        Buffered pipelined bytes bypass the parker — ``select()`` cannot
        see data this process already read off the wire.
        """
        if self._stop.is_set():
            conn.close()
            self._note_closed(conn)
            return
        if conn.buffer:
            self._enqueue(conn, fresh=fresh)
            return
        conn.deadline = self._now() + self.keep_alive
        with self._mu:
            self._parked[conn.sock] = conn
            if fresh:
                self._active.add(conn)
                if self._g_connections is not None:
                    self._g_connections.set(len(self._active))
        try:
            self._wake_w.sendall(b"x")
        except OSError:
            pass

    def _enqueue(self, conn: _Connection, *, fresh: bool = False) -> None:
        if fresh:
            with self._mu:
                self._active.add(conn)
                if self._g_connections is not None:
                    self._g_connections.set(len(self._active))
        try:
            self._queue.put_nowait(conn)
        except queue.Full:
            self._shed_raw(conn, reason="queue")

    def _park_loop(self) -> None:
        while not self._stop.is_set():
            with self._mu:
                socks = list(self._parked)
            try:
                readable, _, _ = select.select(
                    socks + [self._wake_r], [], [], 0.5
                )
            except OSError:
                continue  # a parked socket died mid-select; next tick reaps it
            now = self._now()
            for sock in readable:
                if sock is self._wake_r:
                    try:
                        self._wake_r.recv(4096)
                    except OSError:
                        pass
                    continue
                with self._mu:
                    conn = self._parked.pop(sock, None)
                if conn is not None:
                    self._enqueue(conn)
            with self._mu:
                expired = [
                    conn for conn in self._parked.values()
                    if conn.deadline <= now
                ]
                for conn in expired:
                    del self._parked[conn.sock]
            for conn in expired:
                conn.close()
                self._note_closed(conn)

    def _note_closed(self, conn: _Connection) -> None:
        with self._mu:
            self._active.discard(conn)
            if self._g_connections is not None:
                self._g_connections.set(len(self._active))

    @staticmethod
    def _now() -> float:
        return time.monotonic()

    # -- workers -----------------------------------------------------------

    #: Consecutive requests a worker may serve off one connection before
    #: it must go back through the parker — bounds how long a hot client
    #: can monopolise a worker while queued connections wait.
    STICKY_STREAK = 32
    #: How long a worker lingers for the next request on a connection it
    #: just answered.  A closed-loop client's next request lands within
    #: this window, so the hot path skips the park → select → queue trip
    #: entirely; an idle client costs at most this before parking.
    STICKY_POLL = 0.002

    def _worker_loop(self) -> None:
        while True:
            conn = self._queue.get()
            if conn is None:
                return
            streak = 0
            while True:
                keep = False
                try:
                    keep = self._serve_one(conn)
                except Exception:
                    keep = False
                if not keep or self._stop.is_set():
                    conn.close()
                    self._note_closed(conn)
                    break
                streak += 1
                if streak >= self.STICKY_STREAK:
                    self._park(conn)
                    break
                if conn.buffer:
                    continue  # pipelined request already in hand
                try:
                    readable, _, _ = select.select(
                        [conn.sock], [], [], self.STICKY_POLL
                    )
                except OSError:
                    conn.close()
                    self._note_closed(conn)
                    break
                if readable:
                    continue
                self._park(conn)
                break

    def _serve_one(self, conn: _Connection) -> bool:
        """Read, dispatch, and answer one request.

        Returns whether the connection may be kept alive.
        """
        try:
            parsed = self._read_request(conn)
        except _BadRequest as exc:
            self._write_simple(conn, exc.status, str(exc))
            return False
        except (socket.timeout, OSError):
            return False
        if parsed is None:
            return False  # idle close
        method, target, version, headers, body = parsed
        if conn.served and self._m_reuse is not None:
            self._m_reuse.inc()
        want_keep_alive = self._keep_alive_requested(version, headers)
        # Admission: the global in-flight gate, then per-route limits.
        if not self._inflight.acquire(blocking=False):
            self._shed_parsed(conn, want_keep_alive, reason="inflight")
            conn.served += 1
            return want_keep_alive
        gate = self._route_gate(method, target)
        if gate is not None and not gate.acquire(blocking=False):
            self._inflight.release()
            self._shed_parsed(conn, want_keep_alive, reason="route")
            conn.served += 1
            return want_keep_alive
        with self._mu:
            self._inflight_count += 1
            if self._g_inflight is not None:
                self._g_inflight.set(self._inflight_count)
        try:
            status, resp_headers, payload = self._run_wsgi(
                method, target, version, headers, body, conn
            )
        finally:
            with self._mu:
                self._inflight_count -= 1
                if self._g_inflight is not None:
                    self._g_inflight.set(self._inflight_count)
            if gate is not None:
                gate.release()
            self._inflight.release()
        try:
            self._write_response(
                conn, status, resp_headers, payload, want_keep_alive
            )
        except OSError:
            return False
        conn.served += 1
        return want_keep_alive

    # -- request parsing ---------------------------------------------------

    def _read_request(self, conn: _Connection):
        head = conn.read_head(MAX_REQUEST_LINE + MAX_HEADER_BYTES)
        if head is None:
            return None
        lines = head.split(b"\r\n")
        if len(lines[0]) > MAX_REQUEST_LINE:
            raise _BadRequest(431, "request line too long")
        parts = lines[0].decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest(400, "malformed request line")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise _BadRequest(400, f"unsupported protocol {version}")
        headers: dict[str, str] = {}
        for raw in lines[1:]:
            text = raw.decode("latin-1")
            name, sep, value = text.partition(":")
            if not sep:
                raise _BadRequest(400, "malformed header")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest(501, "chunked bodies not supported")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _BadRequest(400, "bad content-length")
            if length < 0:
                raise _BadRequest(400, "bad content-length")
            if length > MAX_BODY_BYTES:
                raise _BadRequest(413, "body too large")
            body = conn.read_exact(length)
        elif method in ("POST", "PUT"):
            # A body-bearing method without a length is unframeable.
            headers.setdefault("content-length", "0")
        return method, target, version, headers, body

    @staticmethod
    def _keep_alive_requested(version: str, headers: dict[str, str]) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    def _route_gate(self, method: str, target: str):
        if not self._route_gates:
            return None
        path = target.split("?", 1)[0]
        router = getattr(self.app, "router", None)
        if router is None:
            return self._route_gates.get(path)
        route = router.pattern_for(method, path) or path
        return self._route_gates.get(route)

    # -- WSGI bridge -------------------------------------------------------

    def _run_wsgi(self, method, target, version, headers, body, conn):
        path, sep, query = target.partition("?")
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "SERVER_NAME": self.host,
            "SERVER_PORT": str(self.port),
            "SERVER_PROTOCOL": version,
            "REMOTE_ADDR": conn.addr[0] if conn.addr else "",
            "wsgi.version": (1, 0),
            "wsgi.url_scheme": "http",
            "wsgi.input": io.BytesIO(body),
            "wsgi.errors": _WSGI_ERRORS,
            "wsgi.multithread": True,
            "wsgi.multiprocess": False,
            "wsgi.run_once": False,
        }
        if "content-type" in headers:
            environ["CONTENT_TYPE"] = headers["content-type"]
        if "content-length" in headers:
            environ["CONTENT_LENGTH"] = headers["content-length"]
        for name, value in headers.items():
            if name in ("content-type", "content-length"):
                continue
            environ["HTTP_" + name.upper().replace("-", "_")] = value
        captured: dict = {}

        def start_response(status, resp_headers, exc_info=None):
            captured["status"] = status
            captured["headers"] = resp_headers

        chunks = self.app(environ, start_response)
        try:
            payload = b"".join(chunks)
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()
        status_line = captured.get("status", "500 Internal Server Error")
        status = int(status_line.split(" ", 1)[0])
        return status, captured.get("headers", []), payload

    # -- response writing --------------------------------------------------

    def _write_response(self, conn, status, headers, payload, keep_alive):
        status_line = _STATUS_LINES.get(status) or f"HTTP/1.1 {status} Unknown"
        head = [status_line]
        bodyless = status == 304 or status == 204
        seen_length = False
        for name, value in headers:
            if name.lower() == "content-length":
                seen_length = True
            if bodyless and name.lower() in ("content-length", "content-type"):
                continue
            head.append(f"{name}: {value}")
        if not bodyless and not seen_length:
            head.append(f"Content-Length: {len(payload)}")
        if keep_alive:
            head.append("Connection: keep-alive")
            head.append(self._keep_alive_header)
        else:
            head.append("Connection: close")
        blob = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        if not bodyless:
            blob += payload
        conn.sock.sendall(blob)

    def _write_simple(self, conn, status, message):
        try:
            body = (message + "\n").encode("utf-8")
            self._write_response(
                conn, status,
                [("Content-Type", "text/plain; charset=utf-8")],
                body, False,
            )
        except OSError:
            pass

    def _shed_parsed(self, conn, keep_alive, *, reason):
        """503 an already-parsed request; the connection survives."""
        if self._m_shed is not None:
            self._m_shed.labels(reason=reason).inc()
        try:
            self._write_response(
                conn, 503,
                [("Content-Type", "text/plain; charset=utf-8"),
                 ("Retry-After", "1")],
                b"overloaded, retry shortly\n", keep_alive,
            )
        except OSError:
            pass

    def _shed_raw(self, conn, *, reason):
        """503 + close for a connection no worker will ever pick up."""
        if self._m_shed is not None:
            self._m_shed.labels(reason=reason).inc()
        try:
            conn.sock.settimeout(1.0)
            conn.sock.sendall(
                b"HTTP/1.1 503 Service Unavailable\r\n"
                b"Retry-After: 1\r\nContent-Length: 0\r\n"
                b"Connection: close\r\n\r\n"
            )
        except OSError:
            pass
        conn.close()
        self._note_closed(conn)
