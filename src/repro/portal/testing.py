"""An in-process client for the portal (no sockets).

Drives the WSGI app through real environ dicts, maintaining cookies
across requests like a browser — used by the test suite and handy for
scripting.
"""

from __future__ import annotations

import io
import urllib.parse

from repro.portal.app import PortalApplication
from repro.portal.http import Response


class PortalClient:
    """A cookie-keeping test browser."""

    def __init__(self, portal: PortalApplication):
        self._portal = portal
        self._cookies: dict[str, str] = {}

    @property
    def app(self) -> PortalApplication:
        return self._portal

    @property
    def cookies(self) -> dict[str, str]:
        """The live cookie jar (mutable, like a browser's dev tools)."""
        return self._cookies

    def _environ(
        self,
        method: str,
        url: str,
        data: dict | None,
        headers: dict | None = None,
        body: "bytes | None" = None,
    ) -> dict:
        parsed = urllib.parse.urlsplit(url)
        if body is None:
            body = b""
        if data is not None:
            pairs = []
            for key, value in data.items():
                if isinstance(value, (list, tuple)):
                    pairs.extend((key, str(v)) for v in value)
                else:
                    pairs.append((key, str(value)))
            body = urllib.parse.urlencode(pairs).encode("utf-8")
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": parsed.path or "/",
            "QUERY_STRING": parsed.query,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
            "HTTP_COOKIE": "; ".join(
                f"{k}={v}" for k, v in self._cookies.items()
            ),
        }
        for name, value in (headers or {}).items():
            environ["HTTP_" + name.upper().replace("-", "_")] = str(value)
        return environ

    def _absorb_cookies(self, response: Response) -> None:
        for name, value in response.headers:
            if name != "Set-Cookie":
                continue
            cookie = value.split(";", 1)[0]
            key, _, val = cookie.partition("=")
            if val:
                self._cookies[key] = val
            else:
                self._cookies.pop(key, None)

    def request(
        self,
        method: str,
        url: str,
        data: dict | None = None,
        *,
        follow_redirects: bool = True,
        headers: dict | None = None,
        body: "bytes | None" = None,
    ) -> Response:
        """*data* is form-encoded; *body* ships raw bytes instead (pair
        it with a ``Content-Type`` header for JSON API calls)."""
        environ = self._environ(method, url, data, headers, body)
        captured: dict = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = headers

        chunks = self._portal(environ, start_response)
        response = Response(
            b"".join(chunks), status=int(captured["status"].split()[0])
        )
        response.headers = list(captured["headers"])
        self._absorb_cookies(response)
        if follow_redirects and response.status == 303:
            location = dict(response.headers).get("Location", "/")
            return self.request("GET", location)
        return response

    def get(self, url: str, **kwargs) -> Response:
        return self.request("GET", url, **kwargs)

    def post(self, url: str, data: dict | None = None, **kwargs) -> Response:
        return self.request("POST", url, data or {}, **kwargs)

    def login(self, login: str, password: str) -> Response:
        return self.post("/login", {"login": login, "password": password})
