"""Portal view modules; each exposes ``register(router, portal)``."""
