"""Administrative screens: dashboard, audit trail, errors, workflows."""

from __future__ import annotations

import json

from repro.portal.http import Request, Response
from repro.portal.render import definition_list, esc, page, table


def _fmt(value) -> str:
    """Six-decimal seconds, or a dash for empty histograms."""
    return f"{value:.6f}" if value is not None else "—"


def _replication_rows(registry) -> list[tuple]:
    """Every ``replication_*`` sample: lag gauges, frame/read counters."""
    rows = []
    for family in registry.families():
        if not family.name.startswith("replication_"):
            continue
        for labels, child in family.samples():
            value = getattr(child, "value", None)
            if value is None:
                continue
            detail = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
            rows.append((esc(family.name), esc(detail), int(value)))
    return sorted(rows)


def _http_rows(registry) -> list[tuple]:
    family = registry.get("http_requests_total")
    if family is None:
        return []
    rows = [
        (esc(labels["route"]), labels["method"], labels["status"],
         int(child.value))
        for labels, child in family.samples()
    ]
    return sorted(rows)


def register(router, portal) -> None:
    system = portal.system

    @router.get("/admin")
    def dashboard(request: Request) -> Response:
        principal = portal.principal(request)
        stats = system.maintenance.dashboard(principal)
        deployment = system.deployment_statistics()
        body = "<h2>Deployment (paper Final-Remark table)</h2>"
        body += table(["object", "count"], sorted(deployment.items()))
        body += "<h2>Storage</h2>" + definition_list(
            sorted(
                (k, v)
                for k, v in stats["storage"].items()
                if not isinstance(v, dict)
            )
        )
        if "search" in stats:
            body += "<h2>Search index</h2>" + definition_list(
                sorted(stats["search"].items())
            )
        if "workflows" in stats:
            body += "<h2>Workflows</h2>" + definition_list(
                [("active instances", stats["workflows"]["active"]),
                 ("definitions",
                  ", ".join(stats["workflows"]["definitions"]))]
            )
        body += (
            '<p><a href="/admin/audit">audit trail</a> | '
            '<a href="/admin/errors">errors</a> | '
            '<a href="/admin/workflows">workflow instances</a> | '
            '<a href="/admin/reports">usage reports</a> | '
            '<a href="/admin/metrics">metrics</a></p>'
        )
        return Response(page("Administration", body, user=principal.login))

    @router.get("/admin/metrics")
    def metrics_page(request: Request) -> Response:
        principal = portal.principal(request)
        registry = system.obs.metrics
        monitor = system.monitor

        body = "<h2>Latency (seconds)</h2>" + table(
            ["operation", "count", "mean", "p50", "p95", "p99", "max"],
            [
                (
                    esc(name),
                    s["count"],
                    _fmt(s["mean"]), _fmt(s["p50"]),
                    _fmt(s["p95"]), _fmt(s["p99"]), _fmt(s["max"]),
                )
                for name, s in sorted(monitor.latency_summary().items())
            ],
        )
        body += "<h2>Requests by route</h2>" + table(
            ["route", "method", "status", "count"],
            _http_rows(registry),
        )
        body += "<h2>Committed operations</h2>" + table(
            ["table", "operation", "count"],
            [
                (esc(tbl), op, count)
                for tbl, ops in sorted(monitor.operation_counts().items())
                for op, count in sorted(ops.items())
            ],
        )
        body += "<h2>Layer</h2>" + definition_list(
            sorted(system.obs.statistics().items())
        )
        body += "<h2>Resilience</h2>" + table(
            ["circuit breaker", "state"],
            [
                (esc(endpoint), state)
                for endpoint, state in sorted(system.breakers.states().items())
            ],
        )
        resilience_counts = []
        for metric in ("resilience_retries_total", "resilience_gave_up_total"):
            family = registry.get(metric)
            if family is None:
                continue
            resilience_counts.extend(
                (esc(metric), esc(labels.get("site", "")), int(child.value))
                for labels, child in family.samples()
            )
        body += table(
            ["counter", "site", "count"], sorted(resilience_counts)
        )
        body += definition_list(
            [("dead letters pending", system.dlq.pending_count())]
        )
        queue = system.queue.status()
        states = queue["states"]
        body += "<h2>Job queue</h2>" + definition_list(
            [
                ("backlog depth", queue["depth"]),
                ("pending", states["pending"]),
                ("leased", states["leased"]),
                ("retry_wait", states["retry_wait"]),
                ("done", states["done"]),
                ("dead", states["dead"]),
                ("lease expirations", queue["lease_expirations"]),
                ("duplicates suppressed", queue["duplicates_suppressed"]),
                ("shed (backpressure)", queue["shed"]),
                ("active workers", queue["active_workers"]),
            ]
        )
        if queue["per_type"]:
            body += table(
                ["job type", "pending", "leased", "done", "retry_wait",
                 "dead"],
                [
                    (esc(job_type), counts["pending"], counts["leased"],
                     counts["done"], counts["retry_wait"], counts["dead"])
                    for job_type, counts in sorted(queue["per_type"].items())
                ],
            )
        mvcc = system.db.statistics()["mvcc"]
        body += "<h2>MVCC</h2>" + definition_list(
            [
                ("committed sequence", mvcc["committed_seq"]),
                ("open snapshots", mvcc["open_snapshots"]),
                ("version horizon", mvcc["version_horizon"]),
                ("retained versions", mvcc["retained_versions"]),
            ]
        )
        shard_status = getattr(system.db, "shard_status", None)
        if shard_status is not None:
            sharding = system.db.statistics()["sharding"]
            body += "<h2>Shards</h2>" + definition_list(
                [
                    ("shards", sharding["shards"]),
                    ("open snapshot vectors",
                     sharding["open_snapshot_vectors"]),
                    ("placements", ", ".join(
                        f"{name}:{kind}"
                        for name, kind in sorted(
                            sharding["placements"].items()
                        )
                    )),
                ]
            )
            body += table(
                ["shard", "committed seq", "WAL bytes", "open snapshots",
                 "version horizon", "rows", "transactions"],
                [
                    (s["shard"], s["committed_seq"], s["wal_bytes"],
                     s["open_snapshots"], s["version_horizon"], s["rows"],
                     s["transactions"])
                    for s in sharding["per_shard"]
                ],
            )
        replication_rows = _replication_rows(registry)
        if replication_rows:
            body += "<h2>Replication</h2>" + table(
                ["metric", "labels", "value"], replication_rows
            )
        body += (
            '<p><a href="/admin/metrics.txt">raw exposition '
            "(Prometheus text format)</a> | "
            '<a href="/admin/metrics/history">windowed history</a> | '
            '<a href="/admin/slowlog">slow operations</a></p>'
        )
        return Response(page("Metrics", body, user=principal.login))

    @router.get("/admin/slowlog")
    def slowlog_page(request: Request) -> Response:
        principal = portal.principal(request)
        slowlog = system.obs.slowlog
        name = request.get("name") or None
        entries = slowlog.entries(name=name, limit=100)
        rows = []
        for entry in reversed(entries):  # newest first
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(entry["attributes"].items())
            )
            explain = entry.get("explain")
            rows.append(
                (
                    esc(entry["ts"]),
                    esc(entry["name"]),
                    _fmt(entry["duration"]),
                    _fmt(entry["threshold"]),
                    esc(entry.get("status", "")),
                    esc(entry.get("trace_id", "")),
                    esc(detail),
                    esc(json.dumps(explain, sort_keys=True, default=str))
                    if explain is not None
                    else "—",
                )
            )
        body = "<h2>Slow operations (newest first)</h2>" + table(
            ["at", "operation", "seconds", "budget", "status", "trace",
             "attributes", "explain"],
            rows,
        )
        body += "<h2>Budgets</h2>" + table(
            ["operation", "seconds"],
            [(esc(op), _fmt(sec))
             for op, sec in sorted(slowlog.thresholds().items())],
        )
        body += definition_list([("total promotions", slowlog.promoted)])
        return Response(page("Slow Operations", body, user=principal.login))

    @router.get("/admin/metrics/history")
    def metrics_history_page(request: Request) -> Response:
        principal = portal.principal(request)
        history = system.obs.history
        window = request.get_int("window", 300) or 300
        history.capture()  # the page itself is a fresh sample point
        summary = history.window_summary(window=window)
        rows = []
        for key, info in sorted(summary["keys"].items()):
            if "rate" in info:
                rate = info["rate"]
                rows.append(
                    (esc(key), "counter",
                     f"{rate:.3f}/s" if rate is not None else "—",
                     _fmt(info["last"])))
            else:
                rows.append(
                    (esc(key), "gauge",
                     f"{_fmt(info['min'])} … {_fmt(info['max'])}",
                     _fmt(info["last"])))
        body = definition_list(
            [
                ("window (seconds)", window),
                ("samples in window", summary["samples"]),
                ("span (seconds)", _fmt(summary["span_seconds"])),
                ("samples retained", len(history)),
            ]
        )
        body += "<h2>Windowed series</h2>" + table(
            ["series", "kind", "rate / range", "last"], rows
        )
        body += (
            '<p>Change the window with <code>?window=SECONDS</code>; the '
            "same data feeds <code>repro stats --window</code>.</p>"
        )
        return Response(page("Metrics History", body, user=principal.login))

    @router.get("/admin/metrics.txt")
    def metrics_text(request: Request) -> Response:
        portal.principal(request)  # session required; content is operational
        return Response(
            system.obs.metrics.render_text(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @router.get("/admin/reports")
    def usage_reports(request: Request) -> Response:
        principal = portal.principal(request)
        reports = system.reports
        body = "<h2>Busiest projects</h2>" + table(
            ["project", "workunits", "samples"],
            [
                (esc(r["project"]), r["workunits"], r["samples"])
                for r in reports.objects_per_project(principal)
            ],
        )
        body += "<h2>Storage by mode</h2>" + table(
            ["mode", "resources", "bytes"],
            [
                (mode, info["resources"], info["bytes"])
                for mode, info in sorted(
                    reports.storage_by_mode(principal).items()
                )
            ],
        )
        body += "<h2>Activity by user</h2>" + table(
            ["user", "operations"],
            [
                (esc(r["user"]), r["operations"])
                for r in reports.activity_by_user(principal)
            ],
        )
        body += "<h2>Application popularity</h2>" + table(
            ["application", "runs"],
            [
                (esc(r["application"]), r["runs"])
                for r in reports.application_popularity(principal)
            ],
        )
        body += "<h2>Vocabulary health</h2>" + table(
            ["status", "values"],
            sorted(reports.vocabulary_health(principal).items()),
        )
        body += '<p><a href="/admin/reports.csv">export project report CSV</a></p>'
        return Response(page("Usage Reports", body, user=principal.login))

    @router.get("/admin/reports.csv")
    def usage_reports_csv(request: Request) -> Response:
        principal = portal.principal(request)
        text = system.reports.export_csv(principal)
        return Response.download(
            text.encode("utf-8"), "usage_report.csv", "text/csv"
        )

    @router.get("/admin/audit")
    def audit_trail(request: Request) -> Response:
        principal = portal.principal(request)
        user_id = request.get_int("user_id")
        if user_id is not None:
            entries = system.audit.for_user(user_id)
        else:
            entries = system.audit.recent(limit=100)
        rows = [
            (e.at, esc(e.user_login), e.action,
             f"{e.entity_type}:{e.entity_id}", esc(e.summary))
            for e in entries
        ]
        body = table(["at", "user", "action", "object", "summary"], rows)
        return Response(page("Audit Trail", body, user=principal.login))

    @router.get("/admin/errors")
    def error_list(request: Request) -> Response:
        principal = portal.principal(request)
        rows = []
        for record in system.errors.open_errors():
            resolve = (
                f'<form method="post" action="/admin/errors/{record.id}/resolve">'
                "<button>resolve</button></form>"
            )
            rows.append((record.id, record.at, esc(record.source),
                         esc(record.message), resolve))
        body = table(["id", "at", "source", "message", "action"], rows)
        return Response(page("Errors", body, user=principal.login))

    @router.post("/admin/errors/<int:error_id>/resolve")
    def resolve_error(request: Request) -> Response:
        principal = portal.principal(request)
        system.errors.resolve(principal, request.params["error_id"])
        return Response.redirect("/admin/errors")

    @router.get("/admin/workflows")
    def workflow_list(request: Request) -> Response:
        principal = portal.principal(request)
        rows = [
            (i.id, i.definition, f"{i.entity_type}:{i.entity_id}",
             i.current_step, i.status)
            for i in system.workflow.active_instances()
        ]
        body = "<h2>Active instances</h2>" + table(
            ["id", "definition", "entity", "step", "status"], rows
        )
        return Response(page("Workflow Administration", body, user=principal.login))
