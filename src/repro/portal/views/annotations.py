"""Annotation review: release, similarity warnings, merge (Figures 4–7)."""

from __future__ import annotations

from repro.portal.http import Request, Response
from repro.portal.render import esc, form, link, page, table


def register(router, portal) -> None:
    system = portal.system

    @router.get("/annotations/review")
    def review_queue(request: Request) -> Response:
        principal = portal.principal(request)
        pending = system.annotations.pending_review()
        rows = []
        for annotation in pending:
            release = (
                f'<form method="post" action="/annotations/{annotation.id}/release" '
                f'style="display:inline"><button>release</button></form>'
            )
            reject = (
                f'<form method="post" action="/annotations/{annotation.id}/reject" '
                f'style="display:inline"><button>reject</button></form>'
            )
            rows.append(
                (annotation.id, esc(annotation.value), annotation.status,
                 release + " " + reject)
            )
        body = "<h2>Pending review</h2>" + table(
            ["id", "value", "status", "actions"], rows
        )
        recommendations = system.annotations.merge_recommendations()
        rec_rows = []
        for rec in recommendations:
            merge_form = form(
                f"/annotations/merge?keep={rec.keep_id}&merge={rec.merge_id}",
                "",
                submit="merge",
            )
            rec_rows.append(
                (esc(rec.keep_value), esc(rec.merge_value),
                 f"{rec.score:.0%}", merge_form)
            )
        body += "<h2>Similar annotations (merge recommendations)</h2>" + table(
            ["keep", "merge away", "similarity", "action"], rec_rows
        )
        return Response(page("Annotation Review", body, user=principal.login))

    @router.post("/annotations/<int:annotation_id>/release")
    def release(request: Request) -> Response:
        principal = portal.principal(request)
        system.annotations.release(principal, request.params["annotation_id"])
        return Response.redirect("/annotations/review")

    @router.post("/annotations/<int:annotation_id>/reject")
    def reject(request: Request) -> Response:
        principal = portal.principal(request)
        system.annotations.reject(principal, request.params["annotation_id"])
        return Response.redirect("/annotations/review")

    @router.post("/annotations/merge")
    def merge(request: Request) -> Response:
        principal = portal.principal(request)
        keep_id = request.get_int("keep")
        merge_id = request.get_int("merge")
        if keep_id is None or merge_id is None:
            return Response("keep and merge ids required", status=400)
        system.annotations.merge(principal, keep_id, merge_id)
        return Response.redirect("/annotations/review")

    @router.get("/annotations/<int:annotation_id>")
    def annotation_detail(request: Request) -> Response:
        principal = portal.principal(request)
        annotation = system.annotations.resolve(request.params["annotation_id"])
        entities = system.annotations.entities_for(annotation.id)
        rows = [
            (entity_type, link(f"/{entity_type}s/{entity_id}", entity_id))
            for entity_type, entity_id in entities
        ]
        body = (
            f"<p>value: <b>{esc(annotation.value)}</b> "
            f"({annotation.status})</p>"
            "<h2>Annotated objects</h2>" + table(["type", "object"], rows)
        )
        return Response(
            page(f"Annotation {annotation.id}", body, user=principal.login)
        )
