"""The JSON API surface (``/api/...``).

Thin machine-readable projections of the same services the HTML views
use — same principal checks, same MVCC read discipline, and the same
conditional-GET machinery: the cacheable ``/api`` GETs carry the exact
table-version ETags of :mod:`repro.portal.caching`, so API clients can
revalidate with ``If-None-Match`` and poll for free.

``/api/health`` is deliberately public (load balancers probe it before
any login exists) and deliberately uncacheable: it reports live serving
state, not table state.
"""

from __future__ import annotations

from repro.portal.http import Request, Response


def _project_json(project) -> dict:
    return {
        "id": project.id,
        "name": project.name,
        "description": project.description,
    }


def _sample_json(sample) -> dict:
    return {
        "id": sample.id,
        "name": sample.name,
        "species": sample.species,
        "project_id": sample.project_id,
    }


def _workunit_json(workunit) -> dict:
    return {
        "id": workunit.id,
        "name": workunit.name,
        "status": workunit.status,
        "project_id": workunit.project_id,
    }


def register(router, portal) -> None:
    system = portal.system

    @router.get("/api/health")
    def health(request: Request) -> Response:
        return Response.json({
            "status": "ok",
            "committed_seq": system.db.committed_seq,
        })

    @router.get("/api/projects")
    def project_list(request: Request) -> Response:
        principal = portal.principal(request)
        return Response.json({
            "projects": [
                _project_json(p) for p in system.projects.visible_to(principal)
            ],
        })

    @router.post("/api/projects")
    def create_project(request: Request) -> Response:
        principal = portal.principal(request)
        payload = request.json if isinstance(request.json, dict) else {}
        name = str(payload.get("name") or request.get("name"))
        description = str(
            payload.get("description") or request.get("description")
        )
        project = system.projects.create(
            principal, name, description=description
        )
        return Response.json({"project": _project_json(project)})

    @router.get("/api/projects/<int:project_id>")
    def project_detail(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.get(principal, request.params["project_id"])
        samples = system.samples.samples_of_project(principal, project.id)
        workunits = system.workunits.of_project(principal, project.id)
        return Response.json({
            "project": _project_json(project),
            "samples": [_sample_json(s) for s in samples],
            "workunits": [_workunit_json(w) for w in workunits],
        })

    @router.get("/api/samples/<int:sample_id>")
    def sample_detail(request: Request) -> Response:
        principal = portal.principal(request)
        sample = system.samples.get_sample(principal, request.params["sample_id"])
        extracts = system.samples.extracts_of_sample(principal, sample.id)
        annotations = system.annotations.annotations_for("sample", sample.id)
        return Response.json({
            "sample": _sample_json(sample),
            "extracts": [
                {"id": e.id, "name": e.name, "procedure": e.procedure}
                for e in extracts
            ],
            "annotations": [a.value for a in annotations],
        })

    @router.get("/api/workunits/<int:workunit_id>")
    def workunit_detail(request: Request) -> Response:
        principal = portal.principal(request)
        workunit = system.workunits.get(principal, request.params["workunit_id"])
        resources = system.workunits.resources_of(principal, workunit.id)
        return Response.json({
            "workunit": _workunit_json(workunit),
            "resources": [
                {
                    "id": r.id, "name": r.name, "uri": r.uri,
                    "is_input": bool(r.is_input),
                }
                for r in resources
            ],
        })
