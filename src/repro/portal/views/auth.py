"""Login and logout."""

from __future__ import annotations

from repro.errors import AuthenticationError
from repro.portal.http import Request, Response
from repro.portal.render import form, page, text_input


def register(router, portal) -> None:
    @router.get("/ping")
    def ping(request: Request) -> Response:
        return Response("pong", content_type="text/plain")

    @router.get("/login")
    def login_form(request: Request) -> Response:
        body = form(
            "/login",
            text_input("login")
            + '<label>password: <input type="password" name="password"></label><br>',
            submit="Log in",
        )
        return Response(page("Login", body))

    @router.post("/login")
    def do_login(request: Request) -> Response:
        try:
            session = portal.system.auth.login(
                request.get("login"), request.get("password")
            )
        except AuthenticationError as exc:
            return Response(
                page("Login", f"<p>{exc}</p>"), status=403
            )
        response = Response.redirect("/")
        response.set_cookie(portal.session_cookie_name(), session.token)
        return response

    @router.get("/logout")
    def logout(request: Request) -> Response:
        portal.system.auth.logout(request.session.token)
        response = Response.redirect("/login")
        response.set_cookie(portal.session_cookie_name(), "", max_age=0)
        return response
