"""Application registration and experiment screens (Figures 12–16)."""

from __future__ import annotations

import json

from repro.portal.http import Request, Response
from repro.portal.render import (
    definition_list,
    dropdown,
    esc,
    form,
    link,
    page,
    table,
    text_input,
)
from repro.workflow.render import render_ascii


def register(router, portal) -> None:
    system = portal.system

    @router.get("/applications")
    def application_list(request: Request) -> Response:
        principal = portal.principal(request)
        rows = [
            (app.id, esc(app.name), app.connector, esc(app.description))
            for app in system.applications.active_applications()
        ]
        body = table(["id", "application", "connector", "description"], rows)
        connectors = system.applications.connector_kinds()
        fields = (
            text_input("name")
            + dropdown("connector", [(k, k) for k in connectors])
            + text_input("executable")
            + text_input("description")
            + '<label>interface (JSON): <textarea name="interface">'
            + esc(json.dumps({"inputs": ["resource"], "parameters": []}))
            + "</textarea></label><br>"
        )
        body += "<h2>Register application (Figure 12)</h2>" + form(
            "/applications", fields, submit="Register"
        )
        return Response(page("Applications", body, user=principal.login))

    @router.post("/applications")
    def register_application(request: Request) -> Response:
        principal = portal.principal(request)
        try:
            interface = json.loads(request.get("interface") or "{}")
        except json.JSONDecodeError:
            return Response(page("Error", "<p>interface is not valid JSON</p>"),
                            status=400)
        system.applications.register_application(
            principal,
            name=request.get("name"),
            connector=request.get("connector"),
            executable=request.get("executable"),
            interface=interface,
            description=request.get("description"),
        )
        return Response.redirect("/applications")

    @router.get("/projects/<int:project_id>/experiments")
    def experiment_list(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.get(principal, request.params["project_id"])
        experiments = system.experiments.of_project(principal, project.id)
        rows = [
            (
                e.id,
                link(f"/experiments/{e.id}", e.name),
                len(e.resource_ids),
                esc(json.dumps(e.attributes)),
            )
            for e in experiments
        ]
        body = table(["id", "experiment", "#resources", "attributes"], rows)

        applications = system.applications.active_applications()
        workunits = system.workunits.of_project(principal, project.id)
        resource_boxes = ""
        for workunit in workunits:
            for resource in system.workunits.resources_of(principal, workunit.id):
                resource_boxes += (
                    f'<label><input type="checkbox" name="resource" '
                    f'value="{resource.id}"> {esc(resource.name)} '
                    f"(workunit {workunit.id})</label><br>"
                )
        fields = (
            text_input("name")
            + dropdown(
                "application_id",
                [(a.id, a.name) for a in applications],
                label="application",
            )
            + text_input("attributes", label="attributes (JSON)", value="{}")
            + resource_boxes
        )
        body += "<h2>Create experiment definition (Figure 13)</h2>" + form(
            f"/projects/{project.id}/experiments", fields, submit="Create"
        )
        return Response(
            page(f"Experiments — {project.name}", body, user=principal.login)
        )

    @router.post("/projects/<int:project_id>/experiments")
    def define_experiment(request: Request) -> Response:
        principal = portal.principal(request)
        try:
            attributes = json.loads(request.get("attributes") or "{}")
        except json.JSONDecodeError:
            return Response(page("Error", "<p>attributes are not valid JSON</p>"),
                            status=400)
        application_id = request.get_int("application_id")
        if application_id is None:
            return Response(page("Error", "<p>pick an application</p>"), status=400)
        experiment = system.experiments.define(
            principal,
            request.params["project_id"],
            request.get("name"),
            application_id=application_id,
            resource_ids=[int(v) for v in request.get_list("resource")],
            attributes=attributes,
        )
        return Response.redirect(f"/experiments/{experiment.id}")

    @router.get("/experiments/<int:experiment_id>")
    def experiment_detail(request: Request) -> Response:
        principal = portal.principal(request)
        experiment = system.experiments.get(
            principal, request.params["experiment_id"]
        )
        application = system.applications.get(experiment.application_id)
        parameter_fields = ""
        for spec in application.interface.get("parameters", []):
            parameter_fields += text_input(
                f"param_{spec['name']}",
                label=f"{spec['name']}"
                + (" (required)" if spec.get("required") else ""),
                value=str(spec.get("default", "")),
            )
        body = definition_list(
            [("application", application.name),
             ("resources", len(experiment.resource_ids)),
             ("attributes", json.dumps(experiment.attributes))]
        )
        body += "<h2>Run experiment (Figure 14)</h2>" + form(
            f"/experiments/{experiment.id}/run",
            text_input("workunit_name", label="result workunit name")
            + parameter_fields,
            submit="Run",
        )
        return Response(page(experiment.name, body, user=principal.login))

    @router.post("/experiments/<int:experiment_id>/run")
    def run_experiment(request: Request) -> Response:
        principal = portal.principal(request)
        experiment = system.experiments.get(
            principal, request.params["experiment_id"]
        )
        application = system.applications.get(experiment.application_id)
        parameters = {}
        for spec in application.interface.get("parameters", []):
            raw = request.get(f"param_{spec['name']}")
            if raw != "":
                parameters[spec["name"]] = raw
        workunit = system.experiments.run(
            principal,
            experiment.id,
            workunit_name=request.get("workunit_name"),
            parameters=parameters,
        )
        return Response.redirect(f"/workunits/{workunit.id}/run")

    @router.get("/workunits/<int:workunit_id>/run")
    def run_status(request: Request) -> Response:
        """Figure 15/16: the run's workflow state and result links."""
        principal = portal.principal(request)
        workunit = system.workunits.get(principal, request.params["workunit_id"])
        body = f"<p>status: <b>{workunit.status}</b></p>"
        for instance in system.workflow.for_entity("workunit", workunit.id):
            definition = system.workflow.definition(instance.definition)
            body += (
                "<pre>"
                + esc(render_ascii(definition, instance.current_step))
                + f"</pre><p>workflow status: {instance.status}</p>"
            )
        if workunit.status == "available":
            body += (
                f'<p>{link(f"/workunits/{workunit.id}", "view result workunit")} | '
                f'{link(f"/workunits/{workunit.id}/results.zip", "download zip")}</p>'
            )
            report = system.results.read_report(workunit.id)
            if report:
                body += f"<h2>Report</h2><pre>{esc(report)}</pre>"
            provenance = system.provenance.trace(workunit.id)
            body += (
                "<h2>Provenance (reproducible by third parties)</h2>"
                f"<pre>{esc(provenance.render_text())}</pre>"
            )
        return Response(
            page(f"Run — {workunit.name}", body, user=principal.login)
        )
