"""The home screen: open tasks (Figure 8) and the quick-search box."""

from __future__ import annotations

from repro.portal.http import Request, Response
from repro.portal.render import link, page, table


def register(router, portal) -> None:
    @router.get("/")
    def home(request: Request) -> Response:
        principal = portal.principal(request)
        tasks = portal.system.tasks.inbox(principal)
        task_rows = [
            (
                task.id,
                task.kind,
                link(f"/tasks/{task.id}", task.title),
                task.created_at or "",
            )
            for task in tasks
        ]
        body = (
            '<form method="get" action="/search">'
            '<input type="text" name="q" placeholder="quick search...">'
            "<button>Search</button></form>"
            f"<h2>Open tasks ({len(tasks)})</h2>"
            + table(["id", "kind", "task", "since"], task_rows)
        )
        return Response(page("Home", body, user=principal.login))

    @router.get("/tasks/<int:task_id>")
    def task_detail(request: Request) -> Response:
        principal = portal.principal(request)
        task = portal.system.tasks.get(request.params["task_id"])
        entity_link = ""
        if task.entity_type == "annotation":
            entity_link = link("/annotations/review", "open annotation review")
        elif task.entity_type == "workunit":
            entity_link = link(f"/workunits/{task.entity_id}", "open workunit")
        body = (
            f"<p>{task.title}</p><p>status: {task.status}</p>"
            f"<p>{entity_link}</p>"
        )
        return Response(page(f"Task {task.id}", body, user=principal.login))
