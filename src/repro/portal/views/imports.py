"""Data import screens (Figures 9–11): pick provider files, create the
workunit, assign extracts with best-match prefills."""

from __future__ import annotations

from repro.portal.http import Request, Response
from repro.portal.render import dropdown, esc, page, table, text_input
from repro.workflow.render import render_ascii


def register(router, portal) -> None:
    system = portal.system

    @router.get("/projects/<int:project_id>/import")
    def import_form(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.get(principal, request.params["project_id"])
        provider_name = request.get("provider")
        providers = system.imports.provider_names()
        body = (
            '<form method="get">'
            + dropdown(
                "provider",
                [(name, name) for name in providers],
                selected=provider_name,
                label="data provider",
            )
            + "<button>List files</button></form>"
        )
        if provider_name:
            files = system.imports.browse(provider_name)
            checkboxes = "".join(
                f'<label><input type="checkbox" name="file" '
                f'value="{esc(f.name)}"> {esc(f.name)} '
                f"({f.size_bytes} B, {f.modified})</label><br>"
                for f in files
            )
            body += (
                f'<form method="post" action="/projects/{project.id}/import">'
                f'<input type="hidden" name="provider" value="{esc(provider_name)}">'
                + text_input("workunit_name", label="workunit name")
                + dropdown("mode", [("copy", "copy"), ("link", "link")],
                           selected="copy", label="import mode")
                + checkboxes
                + "<button>Create workunit</button></form>"
            )
        return Response(
            page(f"Create Workunit — {project.name}", body, user=principal.login)
        )

    @router.post("/projects/<int:project_id>/import")
    def do_import(request: Request) -> Response:
        principal = portal.principal(request)
        workunit, _resources, _instance = system.imports.import_files(
            principal,
            request.params["project_id"],
            request.get("provider"),
            request.get_list("file"),
            workunit_name=request.get("workunit_name"),
            mode=request.get("mode") or "copy",
        )
        return Response.redirect(f"/workunits/{workunit.id}/assign")

    @router.get("/workunits/<int:workunit_id>/assign")
    def assign_form(request: Request) -> Response:
        principal = portal.principal(request)
        workunit = system.workunits.get(principal, request.params["workunit_id"])
        resources = system.workunits.resources_of(principal, workunit.id)
        extracts = system.samples.extracts_of_project(
            principal, workunit.project_id
        )
        proposals = {
            p.resource_id: p.extract_id
            for p in system.imports.proposals_for(principal, workunit.id)
        }
        extract_options = [(e.id, e.name) for e in extracts]
        rows = []
        for resource in resources:
            rows.append(
                (
                    esc(resource.name),
                    dropdown(
                        f"extract_{resource.id}",
                        extract_options,
                        selected=proposals.get(resource.id, resource.extract_id),
                    ),
                )
            )
        workflow_view = ""
        for instance in system.workflow.for_entity("workunit", workunit.id):
            definition = system.workflow.definition(instance.definition)
            workflow_view = (
                "<pre>" + esc(render_ascii(definition, instance.current_step))
                + "</pre>"
            )
        body = (
            workflow_view
            + f'<form method="post" action="/workunits/{workunit.id}/assign">'
            + table(["resource", "extract (best match preselected)"], rows)
            + "<button>Save</button></form>"
        )
        return Response(
            page(f"Assign Extracts — {workunit.name}", body, user=principal.login)
        )

    @router.post("/workunits/<int:workunit_id>/assign")
    def do_assign(request: Request) -> Response:
        principal = portal.principal(request)
        workunit_id = request.params["workunit_id"]
        resources = system.workunits.resources_of(principal, workunit_id)
        assignments = {}
        for resource in resources:
            selected = request.get(f"extract_{resource.id}")
            if selected:
                assignments[resource.id] = int(selected)
        system.imports.apply_assignments(principal, workunit_id, assignments)
        return Response.redirect(f"/workunits/{workunit_id}")
