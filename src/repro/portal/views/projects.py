"""Projects, samples and extracts: browse lists and registration forms
(paper Figures 2 and 3)."""

from __future__ import annotations

from repro.portal.http import Request, Response
from repro.portal.render import (
    definition_list,
    dropdown,
    form,
    link,
    page,
    table,
    text_input,
)


def _vocab_options(portal, applies_to: str) -> list[tuple[str, list]]:
    """(attribute name, dropdown options) for every attribute of a type."""
    result = []
    for attribute in portal.system.annotations.attributes_for(applies_to):
        options = [
            (annotation.id, annotation.value)
            for annotation in portal.system.annotations.vocabulary(attribute.id)
        ]
        result.append((attribute, options))
    return result


def _collect_annotations(portal, principal, request: Request, applies_to: str):
    """Resolve the form's vocabulary selections + inline new values.

    Returns annotation ids to attach.  A filled ``new_attr_<id>`` box
    creates a pending annotation exactly like the demo's Figure 2.
    """
    annotation_ids = []
    for attribute in portal.system.annotations.attributes_for(applies_to):
        selected = request.get(f"attr_{attribute.id}")
        created = request.get(f"new_attr_{attribute.id}").strip()
        if created:
            annotation, _similar = portal.system.annotations.create_annotation(
                principal, attribute.id, created
            )
            annotation_ids.append(annotation.id)
        elif selected:
            annotation_ids.append(int(selected))
    return annotation_ids


def register(router, portal) -> None:
    system = portal.system

    @router.get("/projects")
    def project_list(request: Request) -> Response:
        principal = portal.principal(request)
        rows = [
            (
                project.id,
                link(f"/projects/{project.id}", project.name),
                project.description,
            )
            for project in system.projects.visible_to(principal)
        ]
        body = table(["id", "project", "description"], rows)
        body += "<h2>New project</h2>" + form(
            "/projects", text_input("name") + text_input("description")
        )
        return Response(page("Projects", body, user=principal.login))

    @router.post("/projects")
    def create_project(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.create(
            principal, request.get("name"),
            description=request.get("description"),
        )
        return Response.redirect(f"/projects/{project.id}")

    @router.get("/projects/<int:project_id>")
    def project_detail(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.get(principal, request.params["project_id"])
        samples = system.samples.samples_of_project(principal, project.id)
        workunits = system.workunits.of_project(principal, project.id)
        body = definition_list(
            [("description", project.description), ("samples", len(samples)),
             ("workunits", len(workunits))]
        )
        body += "<h2>Samples</h2>" + table(
            ["id", "sample", "species"],
            [
                (s.id, link(f"/samples/{s.id}", s.name), s.species)
                for s in samples
            ],
        )
        body += f'<p>{link(f"/projects/{project.id}/samples/new", "register sample")} | '
        body += f'{link(f"/projects/{project.id}/samples/batch", "batch register")} | '
        body += f'{link(f"/projects/{project.id}/import", "import data")} | '
        body += f'{link(f"/projects/{project.id}/experiments", "experiments")}</p>'
        body += "<h2>Workunits</h2>" + table(
            ["id", "workunit", "status"],
            [
                (w.id, link(f"/workunits/{w.id}", w.name), w.status)
                for w in workunits
            ],
        )
        return Response(page(project.name, body, user=principal.login))

    @router.get("/projects/<int:project_id>/samples/new")
    def sample_form(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.get(principal, request.params["project_id"])
        fields = text_input("name") + text_input("species") + text_input(
            "description"
        )
        for attribute, options in _vocab_options(portal, "sample"):
            fields += dropdown(
                f"attr_{attribute.id}", options, label=attribute.name,
                allow_new=True,
            )
        body = form(f"/projects/{project.id}/samples", fields, submit="Register")
        return Response(
            page(f"Register Sample — {project.name}", body, user=principal.login)
        )

    @router.post("/projects/<int:project_id>/samples")
    def create_sample(request: Request) -> Response:
        principal = portal.principal(request)
        project_id = request.params["project_id"]
        annotation_ids = _collect_annotations(portal, principal, request, "sample")
        sample = system.samples.register_sample(
            principal,
            project_id,
            request.get("name"),
            species=request.get("species"),
            description=request.get("description"),
            annotation_ids=annotation_ids,
        )
        return Response.redirect(f"/samples/{sample.id}")

    @router.get("/projects/<int:project_id>/samples/batch")
    def batch_form(request: Request) -> Response:
        principal = portal.principal(request)
        project = system.projects.get(principal, request.params["project_id"])
        body = form(
            f"/projects/{project.id}/samples/batch",
            '<label>names (one per line):<br>'
            '<textarea name="names" rows="8" cols="40"></textarea></label><br>'
            + text_input("species"),
            submit="Register all",
        )
        return Response(
            page(f"Batch Register Samples — {project.name}", body,
                 user=principal.login)
        )

    @router.post("/projects/<int:project_id>/samples/batch")
    def batch_create(request: Request) -> Response:
        principal = portal.principal(request)
        project_id = request.params["project_id"]
        names = [
            line.strip()
            for line in request.get("names").splitlines()
            if line.strip()
        ]
        system.samples.batch_register_samples(
            principal, project_id, names, species=request.get("species")
        )
        return Response.redirect(f"/projects/{project_id}")

    @router.get("/samples/<int:sample_id>")
    def sample_detail(request: Request) -> Response:
        principal = portal.principal(request)
        sample = system.samples.get_sample(principal, request.params["sample_id"])
        extracts = system.samples.extracts_of_sample(principal, sample.id)
        annotations = system.annotations.annotations_for("sample", sample.id)
        body = definition_list(
            [("species", sample.species), ("project", sample.project_id),
             ("annotations", ", ".join(a.value for a in annotations) or "—")]
        )
        body += "<h2>Extracts</h2>" + table(
            ["id", "extract", "procedure"],
            [(e.id, e.name, e.procedure) for e in extracts],
        )
        body += f'<p>{link(f"/samples/{sample.id}/extracts/new", "register extract")} | '
        body += f'{link(f"/samples/{sample.id}/clone", "clone sample")}</p>'
        return Response(page(sample.name, body, user=principal.login))

    @router.get("/samples/<int:sample_id>/clone")
    def clone_form(request: Request) -> Response:
        principal = portal.principal(request)
        sample = system.samples.get_sample(principal, request.params["sample_id"])
        body = form(
            f"/samples/{sample.id}/clone",
            text_input("name", value=f"{sample.name} (copy)"),
            submit="Clone",
        )
        return Response(page(f"Clone {sample.name}", body, user=principal.login))

    @router.post("/samples/<int:sample_id>/clone")
    def do_clone(request: Request) -> Response:
        principal = portal.principal(request)
        clone = system.samples.clone_sample(
            principal, request.params["sample_id"], request.get("name")
        )
        return Response.redirect(f"/samples/{clone.id}")

    @router.get("/samples/<int:sample_id>/extracts/new")
    def extract_form(request: Request) -> Response:
        principal = portal.principal(request)
        sample = system.samples.get_sample(principal, request.params["sample_id"])
        fields = text_input("name") + text_input("procedure")
        for attribute, options in _vocab_options(portal, "extract"):
            fields += dropdown(
                f"attr_{attribute.id}", options, label=attribute.name,
                allow_new=True,
            )
        body = form(f"/samples/{sample.id}/extracts", fields, submit="Register")
        return Response(
            page(f"Register Extract — {sample.name}", body, user=principal.login)
        )

    @router.post("/samples/<int:sample_id>/extracts")
    def create_extract(request: Request) -> Response:
        principal = portal.principal(request)
        sample_id = request.params["sample_id"]
        annotation_ids = _collect_annotations(portal, principal, request, "extract")
        extract = system.samples.register_extract(
            principal,
            sample_id,
            request.get("name"),
            procedure=request.get("procedure"),
            annotation_ids=annotation_ids,
        )
        return Response.redirect(f"/samples/{sample_id}")

    @router.get("/workunits/<int:workunit_id>")
    def workunit_detail(request: Request) -> Response:
        principal = portal.principal(request)
        workunit = system.workunits.get(principal, request.params["workunit_id"])
        resources = system.workunits.resources_of(principal, workunit.id)
        body = definition_list(
            [("status", workunit.status), ("project", workunit.project_id),
             ("parameters", workunit.parameters)]
        )
        body += table(
            ["id", "resource", "extract", "input?", "uri"],
            [
                (r.id, r.name, r.extract_id or "—", "yes" if r.is_input else "",
                 r.uri)
                for r in resources
            ],
        )
        if workunit.status == "available" and any(not r.is_input for r in resources):
            body += f'<p>{link(f"/workunits/{workunit.id}/results.zip", "download results zip")}</p>'
        return Response(page(workunit.name, body, user=principal.login))

    @router.get("/workunits/<int:workunit_id>/results.zip")
    def results_zip(request: Request) -> Response:
        principal = portal.principal(request)
        workunit_id = request.params["workunit_id"]
        payload = system.results.as_zip_bytes(principal, workunit_id)
        return Response.download(
            payload, f"workunit_{workunit_id}_results.zip", "application/zip"
        )
