"""Search screens: quick/advanced search, history, saved queries, export."""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.portal.http import Request, Response
from repro.portal.render import esc, form, link, page, table, text_input
from repro.search.export import export_csv


def _run_search(portal, request, principal, query: str, limit: int = 25):
    # GET requests carry a pinned MVCC snapshot; the ACL filter inside
    # the engine reads membership at it, lock-free.
    return portal.system.search.search(
        principal, query, limit=limit, snapshot=request.snapshot
    )


def register(router, portal) -> None:
    system = portal.system

    @router.get("/search")
    def search_screen(request: Request) -> Response:
        principal = portal.principal(request)
        history = portal.history_for(request)
        query = request.get("q").strip()
        body = (
            '<form method="get" action="/search">'
            f'<input type="text" name="q" value="{esc(query)}" size="50" '
            'placeholder="terms, name:value, type:sample, -not, a OR b">'
            "<button>Search</button></form>"
        )
        if query:
            try:
                results = _run_search(portal, request, principal, query)
            except QuerySyntaxError as exc:
                return Response(
                    page("Search", body + f"<p>{esc(exc)}</p>",
                         user=principal.login),
                    status=400,
                )
            history.record(query)
            rows = [
                (
                    r.entity_type,
                    link(f"/{r.entity_type}s/{r.entity_id}", r.label),
                    f"{r.score:.3f}",
                    esc(r.snippet),
                )
                for r in results
            ]
            body += f"<h2>{len(results)} result(s)</h2>" + table(
                ["type", "object", "score", "snippet"], rows
            )
            body += (
                f'<p>{link(f"/search/export?q={esc(query)}", "export CSV")}</p>'
            )
            body += "<h3>Save this query</h3>" + form(
                f"/search/save?q={esc(query)}", text_input("name"), submit="Save"
            )
        if len(history):
            body += "<h2>Search history</h2><ul>" + "".join(
                f'<li>{link(f"/search?q={esc(entry)}", entry)}</li>'
                for entry in history.entries()
            ) + "</ul>"
        saved = system.saved_queries.list_for(principal)
        if saved:
            body += "<h2>Saved queries</h2><ul>" + "".join(
                f'<li>{link(f"/search?q={esc(s.query)}", s.name)}'
                f" — <code>{esc(s.query)}</code></li>"
                for s in saved
            ) + "</ul>"
        return Response(page("Search", body, user=principal.login))

    @router.post("/search/save")
    def save_query(request: Request) -> Response:
        principal = portal.principal(request)
        query = request.get("q").strip()
        system.saved_queries.save(principal, request.get("name"), query)
        return Response.redirect(f"/search?q={query}")

    @router.get("/search/export")
    def export(request: Request) -> Response:
        principal = portal.principal(request)
        query = request.get("q").strip()
        if not query:
            return Response("missing query", status=400)
        try:
            results = _run_search(portal, request, principal, query, limit=1000)
        except QuerySyntaxError as exc:
            return Response(str(exc), status=400)
        payload = export_csv(results)
        return Response.download(
            payload.encode("utf-8"), "search_results.csv", "text/csv"
        )

    @router.get("/browse")
    def browse_root(request: Request) -> Response:
        principal = portal.principal(request)
        body = (
            "<p>Pick an object to browse its network, e.g. "
            f'{link("/browse/project/1", "project 1")}.</p>'
        )
        return Response(page("Browse", body, user=principal.login))

    @router.get("/browse/<str:entity_type>/<int:entity_id>")
    def browse(request: Request) -> Response:
        from repro.graphview.links import ObjectRef

        principal = portal.principal(request)
        ref = ObjectRef(request.params["entity_type"], request.params["entity_id"])
        system.links.rebuild()
        neighbors = system.links.neighbors(ref)
        rows = [
            (
                neighbor.entity_type,
                link(
                    f"/browse/{neighbor.entity_type}/{neighbor.entity_id}",
                    str(neighbor),
                ),
                label,
            )
            for neighbor, label in neighbors
        ]
        body = table(["type", "object", "link"], rows)
        return Response(
            page(f"Browse — {ref}", body, user=principal.login)
        )
