"""WAL-shipping replication: primary/replica log streaming.

The subsystem that turns one embedded B-Fabric database into a
replicated deployment: a :class:`~repro.replication.primary.\
ReplicationPublisher` tails the primary's write-ahead log and streams
committed records to :class:`~repro.replication.replica.Replica`
processes over the CRC-framed TCP protocol in
:mod:`~repro.replication.protocol`; a
:class:`~repro.replication.manager.ReplicaSet` routes read-only work to
the least-lagged replica and orchestrates promote-on-failure.

Quick tour::

    publisher = ReplicationPublisher(primary.db).start()
    replica = Replica(replica_system, ("127.0.0.1", publisher.port),
                      name="r1", max_lag=64).start()
    rs = ReplicaSet(primary, [replica], publisher=publisher)

    seq = primary.db.replication_start_point()[0]   # after a write
    replica.wait_for(seq)                            # read-your-writes
    with rs.read_snapshot() as snap:                 # routed read
        snap.query("project").count()

    rs.failover()                                    # primary died
"""

from repro.replication.manager import ReplicaSet
from repro.replication.primary import ReplicationPublisher
from repro.replication.replica import Replica

__all__ = ["ReplicaSet", "ReplicationPublisher", "Replica"]
