"""Read routing and failover over a set of replicas: :class:`ReplicaSet`.

The facade for deployments that replicate: it knows the primary system,
the publisher, and every :class:`~repro.replication.replica.Replica`,
and routes *read-only* work — ORM sessions, portal GET snapshots, search
queries — to the least-lagged healthy replica.  Reads fall back to the
primary whenever no replica is connected within the ``max_lag``
staleness bound, so correctness never depends on replication being up.
Writes always go to the primary; replicas are read-only until promoted.

Failover is explicit (an operator or the torture driver calls it): the
old publisher is stopped, the most-caught-up replica drains and
promotes, a new publisher starts on its database, and the surviving
replicas re-join the new primary.  Because replicas apply a *prefix* of
the primary's commit history, promoting the maximum-applied replica
preserves every commit that any replica ever confirmed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ReplicaLagExceeded, ReplicationError
from repro.replication.primary import ReplicationPublisher
from repro.replication.replica import Replica

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.orm.session import Session
    from repro.storage.snapshot import Snapshot


class ReplicaSet:
    """Routes reads across one primary and its replicas."""

    def __init__(
        self,
        primary: Any,
        replicas: "Iterable[Replica]" = (),
        *,
        publisher: ReplicationPublisher | None = None,
        max_lag: int = 64,
        obs: "Observability | None" = None,
    ):
        """*primary* is the writable system (a facade with ``.db`` /
        ``.registry`` / ``.search``, or a bare database).  *max_lag*
        is the routing bound in commit sequences — a replica further
        behind is skipped even if its own ``max_lag`` would allow it."""
        self.primary = primary
        self.publisher = publisher
        self.replicas: list[Replica] = list(replicas)
        self.max_lag = max_lag
        self.obs = obs if obs is not None else getattr(primary, "obs", None)
        if self.obs is None:
            self.obs = getattr(primary, "db", primary).obs
        self._m_reads = self.obs.metrics.counter(
            "replication_reads_total",
            "Read operations routed by the replica set",
            labels=("target",),
        )

    # -- membership --------------------------------------------------------

    def add(self, replica: Replica) -> None:
        self.replicas.append(replica)

    @property
    def primary_db(self):
        return getattr(self.primary, "db", self.primary)

    # -- routing -----------------------------------------------------------

    def pick(self) -> Replica | None:
        """The least-lagged healthy replica, or ``None`` → use primary."""
        best: Replica | None = None
        best_lag = None
        for replica in self.replicas:
            if replica.promoted or not replica.healthy(self.max_lag):
                continue
            lag = replica.lag()
            if best_lag is None or lag < best_lag:
                best, best_lag = replica, lag
        return best

    def read_snapshot(self, min_seq: int | None = None) -> "Snapshot":
        """A lock-free read view, replica-first.

        With *min_seq* (a commit-sequence token from a primary write)
        the chosen replica first waits to apply it — read-your-writes
        across the wire; on timeout or lag violation the primary serves
        the read instead.  The caller closes the snapshot.
        """
        replica = self.pick()
        if replica is not None:
            try:
                if min_seq is not None:
                    replica.wait_for(min_seq, timeout=2.0)
                snapshot = replica.snapshot()
                self._m_reads.labels(target=replica.name).inc()
                return snapshot
            except ReplicaLagExceeded:
                pass
        self._m_reads.labels(target="primary").inc()
        return self.primary_db.snapshot()

    def read_session(self, min_seq: int | None = None) -> "Session":
        """A read-only ORM session on the routed system.

        Only replicas wrapping a full system (with a registry) are
        eligible; the primary serves otherwise.  The returned session
        has already begun its unit of work — call ``close()`` when done.
        """
        from repro.orm.session import Session

        replica = self.pick()
        if replica is not None and hasattr(replica.system, "registry"):
            try:
                if min_seq is not None:
                    replica.wait_for(min_seq, timeout=2.0)
                # Guard the lag bound the same way snapshot() does.
                replica.snapshot().close()
                session = Session(replica.system.registry, readonly=True)
                self._m_reads.labels(target=replica.name).inc()
                return session.begin()
            except ReplicaLagExceeded:
                pass
        self._m_reads.labels(target="primary").inc()
        registry = getattr(self.primary, "registry", None)
        if registry is None:
            raise ReplicationError(
                "primary has no ORM registry; use read_snapshot() instead"
            )
        return Session(registry, readonly=True).begin()

    def search(self, principal: Any, query: str, **kwargs: Any) -> Any:
        """Full-text search on the routed system's engine and snapshot."""
        replica = self.pick()
        if replica is not None and hasattr(replica.system, "search"):
            try:
                with replica.snapshot() as snap:
                    self._m_reads.labels(target=replica.name).inc()
                    return replica.system.search.search(
                        principal, query, snapshot=snap, **kwargs
                    )
            except ReplicaLagExceeded:
                pass
        self._m_reads.labels(target="primary").inc()
        search = getattr(self.primary, "search", None)
        if search is None:
            raise ReplicationError("primary has no search engine")
        with self.primary_db.snapshot() as snap:
            return search.search(principal, query, snapshot=snap, **kwargs)

    def wait_all(self, seq: int, timeout: float = 5.0) -> None:
        """Block until every replica has applied *seq* (convergence)."""
        for replica in self.replicas:
            if not replica.promoted:
                replica.wait_for(seq, timeout=timeout)

    # -- failover ----------------------------------------------------------

    def promote(self, *, drain_timeout: float = 1.0) -> Replica:
        """Promote the most-caught-up replica; the caller re-wires.

        Stops the publisher (if this set owns one), drains and promotes
        the replica with the highest applied sequence, and removes it
        from the read pool.  Use :meth:`failover` for the full dance
        including a new publisher and replica re-joins.
        """
        if not self.replicas:
            raise ReplicationError("no replica available to promote")
        if self.publisher is not None:
            try:
                self.publisher.stop()
            except Exception:
                pass  # the primary may already be gone
        best = max(self.replicas, key=lambda r: r.applied_seq)
        best.promote(drain_timeout=drain_timeout)
        self.replicas.remove(best)
        return best

    def failover(
        self,
        *,
        drain_timeout: float = 1.0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> Replica:
        """Full promote-on-failure: new primary, new publisher, re-joins.

        Returns the promoted replica; afterwards ``self.primary`` is its
        system, ``self.publisher`` streams from its database, and every
        surviving replica follows the new primary.
        """
        promoted = self.promote(drain_timeout=drain_timeout)
        publisher = ReplicationPublisher(
            promoted.db, host=host, port=port, obs=promoted.obs
        ).start()
        assert publisher.port is not None
        for replica in self.replicas:
            replica.rejoin((publisher.host, publisher.port))
        self.primary = promoted.system
        self.publisher = publisher
        self.obs.log.log(
            "replication.failover",
            new_primary=promoted.name,
            seq=promoted.applied_seq,
        )
        return promoted

    # -- lifecycle / introspection ----------------------------------------

    def close(self) -> None:
        for replica in self.replicas:
            replica.stop()
        if self.publisher is not None:
            self.publisher.stop()

    def status(self) -> dict[str, Any]:
        return {
            "max_lag": self.max_lag,
            "publisher": self.publisher.status() if self.publisher else None,
            "replicas": [replica.status() for replica in self.replicas],
        }
