"""Primary side of WAL shipping: the :class:`ReplicationPublisher`.

The publisher owns one listening TCP socket and three kinds of thread:

* a *tail* thread that re-scans the live WAL whenever a commit publishes
  (poked through :meth:`Database.on_commit_seq`, which fires after the
  record's durability ticket) and turns each new record into a buffered
  stream entry ``(seq, prev, record, nbytes)``;
* an *accept* thread that takes replica connections and hands each one
  to a serve thread;
* per-connection *serve* / *ack* threads — the serve thread replays the
  buffer (or a bootstrap snapshot when the replica's position is not in
  the retained chain) and then follows the tail, interleaving
  heartbeats; the ack thread reads the replica's applied sequence and
  keeps the per-replica lag gauges honest.

The entry buffer is bounded (``retain`` entries).  A replica that falls
behind the buffer is disconnected; on reconnect its ``hello.last_seq``
no longer matches a chain point and it gets a full snapshot instead —
bounded memory on the primary, bounded staleness on the replica.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import ReplicationError
from repro.replication import protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.storage.database import Database


class _Entry:
    """One shipped commit in the publisher's retained buffer."""

    __slots__ = ("seq", "prev", "record", "nbytes", "trace")

    def __init__(
        self,
        seq: int,
        prev: int,
        record: dict[str, Any],
        nbytes: int,
        trace: dict[str, str] | None = None,
    ):
        self.seq = seq
        self.prev = prev
        self.record = record
        self.nbytes = nbytes
        # Serialized TraceContext of the originating commit (None for
        # untraced commits); stamped into the commit frame on send.
        self.trace = trace


class _Handle:
    """Publisher-side state for one connected replica."""

    __slots__ = ("name", "conn", "acked_seq", "cursor", "alive")

    def __init__(self, name: str, conn: protocol.Connection, cursor: int):
        self.name = name
        self.conn = conn
        self.acked_seq = cursor
        self.cursor = cursor
        self.alive = True


class ReplicationPublisher:
    """Streams committed WAL records to connected replicas."""

    def __init__(
        self,
        db: "Database",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        obs: "Observability | None" = None,
        retain: int = 512,
        heartbeat_interval: float = 0.2,
    ):
        if db.wal is None:
            raise ReplicationError(
                "replication requires a durable database (no WAL to ship)"
            )
        self.db = db
        self.obs = obs if obs is not None else db.obs
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.retain = retain
        self.heartbeat_interval = heartbeat_interval
        self._mu = threading.Lock()
        self._cv = threading.Condition(self._mu)
        self._entries: deque[_Entry] = deque()
        self._last_seq = 0
        self._offset = 0
        self._wal_generation = 0
        self._handles: dict[str, _Handle] = {}
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._listener: socket.socket | None = None
        # Long-lived threads (tail + accept).  Per-connection serve/ack
        # threads register in _conn_threads and remove themselves when
        # they exit, so a primary with reconnecting replicas never
        # accumulates dead Thread objects.
        self._threads: list[threading.Thread] = []
        self._conn_threads: set[threading.Thread] = set()
        self._started = False
        metrics = self.obs.metrics
        self._g_lag_seqs = metrics.gauge(
            "replication_lag_seqs",
            "Commit sequences shipped but not yet acked, per replica",
            labels=("replica",),
        )
        self._g_lag_bytes = metrics.gauge(
            "replication_lag_bytes",
            "WAL bytes shipped but not yet acked, per replica",
            labels=("replica",),
        )
        self._g_connected = metrics.gauge(
            "replication_connected_replicas", "Replicas currently streaming"
        ).labels()
        self._m_frames = metrics.counter(
            "replication_frames_total",
            "Frames sent by the publisher",
            labels=("type",),
        )
        self._m_bootstraps = metrics.counter(
            "replication_bootstraps_total",
            "Full-snapshot bootstraps served to joining replicas",
        ).labels()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ReplicationPublisher":
        """Capture the tail position, bind the listener, start threads."""
        if self._started:
            raise ReplicationError("publisher already started")
        self._started = True
        self._last_seq, self._offset = self.db.replication_start_point()
        assert self.db.wal is not None
        self._wal_generation = self.db.wal.generation()
        self.db.on_commit_seq(self._poke)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(16)
        self._listener = listener
        self.port = listener.getsockname()[1]
        for name, target in (
            ("replication-tail", self._tail_loop),
            ("replication-accept", self._accept_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        self.obs.log.log(
            "replication.serve", host=self.host, port=self.port,
            seq=self._last_seq,
        )
        return self

    def _poke(self, seq: int) -> None:
        self._wake.set()

    def stop(self) -> None:
        """Stop streaming and close every connection (drains nothing)."""
        self._stop.set()
        self._wake.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._mu:
            handles = list(self._handles.values())
            conn_threads = list(self._conn_threads)
            self._cv.notify_all()
        for handle in handles:
            handle.conn.close()
        for thread in self._threads + conn_threads:
            thread.join(timeout=2.0)

    # The torture driver's "kill": identical to stop today, named so the
    # intent (abrupt primary death, nothing is flushed or drained for
    # the replicas' benefit) stays explicit at call sites.
    kill = stop

    # -- WAL tailing -------------------------------------------------------

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=0.1)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self._scan_new_records()
            except Exception as exc:  # survive torn concurrent writes
                self.obs.log.log("replication.tail_error", error=str(exc))

    def _scan_new_records(self) -> None:
        wal = self.db.wal
        assert wal is not None
        # A reset (checkpoint) or in-place rewrite (torn-tail truncate)
        # invalidates our byte offset: rescan from the start, skipping
        # records at or below what we already shipped.  The generation
        # counter is the authoritative signal — post-checkpoint appends
        # can grow the new file past a stale offset between two polls,
        # in which case a size comparison alone would start the scan
        # mid-record and silently stop shipping.  The shrink check stays
        # as a belt-and-braces fallback.
        generation = wal.generation()
        if generation != self._wal_generation or wal.tail_offset() < self._offset:
            self._wal_generation = generation
            self._offset = 0
        fresh: list[tuple[dict[str, Any], int, int]] = []
        start = self._offset
        for record, end in wal.records_with_offsets(self._offset):
            fresh.append((record, end - start, end))
            start = end
        if not fresh:
            return
        with self._mu:
            for record, nbytes, end in fresh:
                self._offset = end
                if record.get("kind") != "commit":
                    continue
                seq = record.get("seq")
                if not isinstance(seq, int) or seq <= self._last_seq:
                    continue  # pre-replication record or already shipped
                ctx = self.db.trace_for_seq(seq)
                self._entries.append(
                    _Entry(
                        seq, self._last_seq, record, nbytes,
                        trace=ctx.to_dict() if ctx is not None else None,
                    )
                )
                self._last_seq = seq
            while len(self._entries) > self.retain:
                self._entries.popleft()
            self._refresh_lag_locked()
            self._cv.notify_all()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve,
                args=(sock, addr),
                name=f"replication-serve-{addr[1]}",
                daemon=True,
            )
            thread.start()

    def _serve(self, sock: socket.socket, addr: tuple[str, int]) -> None:
        sock.settimeout(10.0)
        conn = protocol.Connection(sock)
        handle: _Handle | None = None
        ack_thread: threading.Thread | None = None
        with self._mu:
            self._conn_threads.add(threading.current_thread())
        try:
            hello = conn.recv()
            if hello is None or hello.get("type") != "hello":
                return
            name = str(hello.get("replica") or f"{addr[0]}:{addr[1]}")
            last_seq = int(hello.get("last_seq", 0))
            history = str(hello.get("history") or "")
            cursor = self._handshake(conn, name, last_seq, history)
            handle = _Handle(name, conn, cursor)
            with self._mu:
                self._handles[name] = handle
                self._g_connected.set(len(self._handles))
            ack_thread = threading.Thread(
                target=self._ack_loop,
                args=(handle,),
                name=f"replication-ack-{name}",
                daemon=True,
            )
            with self._mu:
                self._conn_threads.add(ack_thread)
            ack_thread.start()
            self._stream(handle)
        except Exception as exc:
            self.obs.log.log("replication.serve_error", error=str(exc))
        finally:
            if handle is not None:
                handle.alive = False
                with self._mu:
                    if self._handles.get(handle.name) is handle:
                        del self._handles[handle.name]
                    self._g_connected.set(len(self._handles))
            conn.close()
            with self._mu:
                self._conn_threads.discard(threading.current_thread())

    def _handshake(
        self, conn: protocol.Connection, name: str, last_seq: int, history: str
    ) -> int:
        """Resume from the chain when possible, else serve a bootstrap.

        Returns the cursor the stream starts from.  ``last_seq`` is a
        valid resume point only when it is a *chain point* — the ``prev``
        of a retained entry or the newest shipped sequence — because the
        sequence space has gaps and an arbitrary number in range could
        be a diverged replica's private history.  The replica's
        ``history`` must also match ours: sequence numbers only mean
        anything within one history, so a replica that last synced from
        a different lineage (a pre-promotion primary, or any unrelated
        database whose counter happens to cross its position) is always
        bootstrapped, never resumed.
        """
        our_history = self.db.history_id
        with self._mu:
            chain_points = {entry.prev for entry in self._entries}
            chain_points.add(self._last_seq)
            resumable = last_seq in chain_points and history == our_history
        if resumable:
            conn.send(protocol.resume(last_seq, history=our_history))
            self._m_frames.labels(type="resume").inc()
            self.obs.log.log("replication.resume", replica=name, seq=last_seq)
            return last_seq
        seq, tables = self.db.export_snapshot()
        conn.send(protocol.snapshot_message(
            seq, tables, history=our_history,
            versions=self.db.version_vector_at(seq),
        ))
        self._m_frames.labels(type="snapshot").inc()
        self._m_bootstraps.inc()
        self.obs.log.log("replication.bootstrap", replica=name, seq=seq)
        return seq

    def _stream(self, handle: _Handle) -> None:
        """Replay the buffer past the cursor, then follow the tail."""
        while not self._stop.is_set() and handle.alive:
            with self._mu:
                if self._entries and handle.cursor < self._entries[0].prev:
                    # Fell behind the retained buffer: force a rejoin
                    # (the replica's next hello will get a bootstrap).
                    self.obs.log.log(
                        "replication.evict", replica=handle.name,
                        cursor=handle.cursor,
                    )
                    return
                batch = [e for e in self._entries if e.seq > handle.cursor]
                if not batch:
                    self._cv.wait(timeout=self.heartbeat_interval)
                    batch = [e for e in self._entries if e.seq > handle.cursor]
                heartbeat_seq = self._last_seq
            if not batch:
                handle.conn.send(protocol.heartbeat(heartbeat_seq))
                self._m_frames.labels(type="heartbeat").inc()
                continue
            for entry in batch:
                handle.conn.send(
                    protocol.commit_message(
                        entry.seq, entry.prev, entry.record,
                        trace=entry.trace,
                    )
                )
                handle.cursor = entry.seq
                self._m_frames.labels(type="commit").inc()

    def _ack_loop(self, handle: _Handle) -> None:
        try:
            while not self._stop.is_set() and handle.alive:
                try:
                    message = handle.conn.recv()
                except socket.timeout:
                    continue
                if message is None:
                    return
                if message.get("type") != "ack":
                    continue
                seq = int(message.get("seq", 0))
                with self._mu:
                    if seq > handle.acked_seq:
                        handle.acked_seq = seq
                    self._refresh_lag_locked(handle)
        except Exception as exc:
            self.obs.log.log(
                "replication.ack_error", replica=handle.name, error=str(exc)
            )
        finally:
            # However this loop ends, the connection is unusable for lag
            # accounting: tear it down so the serve thread unblocks, the
            # replica reconnects, and the gauges never freeze on a stale
            # acked_seq while commits keep streaming.
            handle.alive = False
            handle.conn.close()
            with self._mu:
                self._conn_threads.discard(threading.current_thread())

    def _refresh_lag_locked(self, only: "_Handle | None" = None) -> None:
        handles = [only] if only is not None else list(self._handles.values())
        for handle in handles:
            lag_seqs = max(0, self._last_seq - handle.acked_seq)
            lag_bytes = sum(
                e.nbytes for e in self._entries if e.seq > handle.acked_seq
            )
            self._g_lag_seqs.labels(replica=handle.name).set(lag_seqs)
            self._g_lag_bytes.labels(replica=handle.name).set(lag_bytes)

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Connected replicas and their lag, for CLI/portal display."""
        with self._mu:
            return {
                "address": f"{self.host}:{self.port}",
                "last_seq": self._last_seq,
                "buffered_entries": len(self._entries),
                "replicas": {
                    h.name: {
                        "acked_seq": h.acked_seq,
                        "lag_seqs": max(0, self._last_seq - h.acked_seq),
                        "lag_bytes": sum(
                            e.nbytes
                            for e in self._entries
                            if e.seq > h.acked_seq
                        ),
                    }
                    for h in self._handles.values()
                },
            }

    def connected_replicas(self) -> list[str]:
        with self._mu:
            return sorted(self._handles)
