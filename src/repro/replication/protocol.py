"""Wire protocol for WAL shipping: framing, messages, handshake rules.

Every message is one *frame* on a TCP stream::

    +----------------+----------------+------------------------+
    | length (4B BE) | CRC32  (4B BE) | UTF-8 JSON body        |
    +----------------+----------------+------------------------+

The CRC covers the body only; a length or checksum mismatch raises
:class:`~repro.errors.ReplicationProtocolError` and the connection is
abandoned — the replica re-handshakes and the sequence-chain rules below
take care of anything that was in flight.

Message types
-------------

``hello``      replica → primary; carries ``last_seq`` (the replica's
               applied commit sequence), a display ``replica`` name,
               and ``history`` — the history id of the database the
               replica last synced from (empty for a fresh replica).
``resume``     primary → replica; incremental tailing will start from
               ``seq`` (the replica's own ``last_seq`` echoed back).
               Only sent when the replica's ``history`` matches the
               primary's: sequence numbers are meaningless across
               histories, so a replica from another lineage (or from
               before a promotion) must bootstrap instead.
``snapshot``   primary → replica; full bootstrap: ``tables`` maps table
               name to encoded rows, ``seq`` is the snapshot's commit
               sequence, ``history`` the primary's history id (adopted
               by the replica).  Sent when the replica's ``last_seq``
               is not a valid chain point in the primary's retained
               buffer, or its history does not match.
``commit``     primary → replica; one shipped WAL record at ``seq``,
               with ``prev`` = the sequence the publisher shipped just
               before it (the *chain* rule, see below).  May carry
               ``trace`` — the originating commit's trace context
               (``trace_id``/``span_id``) for cross-process tracing;
               replicas ignore a missing or malformed field.
``heartbeat``  primary → replica; ``seq`` is the newest shipped
               sequence, letting an idle replica measure lag and detect
               a silently lost final frame.
``ack``        replica → primary; ``seq`` is the replica's applied
               sequence, used for lag gauges and read-your-writes.

Chain rule
----------

The commit sequence space has *gaps* (out-of-band schema publishes bump
the counter without a WAL record), so a replica cannot detect a lost
frame by ``seq`` arithmetic alone.  Instead every ``commit`` frame
carries ``prev``; with ``applied`` the replica's current sequence:

* ``seq <= applied``          — duplicate delivery, skip and ack;
* ``prev <= applied < seq``   — in order, apply;
* ``prev > applied``          — a frame between ``applied`` and ``prev``
  was lost: raise, reconnect, resume from ``applied``.

A lost *final* frame (nothing after it to violate the chain) is caught
by the heartbeat: ``heartbeat.seq > applied`` with no commit in flight
means the stream dropped something — same remedy.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from collections import deque
from typing import Any

from repro.errors import ReplicationProtocolError
from repro.resilience.faults import fault_point

#: Sanity bound on one frame; a bootstrap snapshot of a big deployment
#: is the largest legitimate message.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">II")


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialise one message to its wire frame."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


class Connection:
    """One framed, CRC-checked, fault-injectable message stream.

    Wraps a connected socket for either side of the protocol.  The
    ``replication.send`` / ``replication.recv`` fault sites understand
    ``drop`` (the frame vanishes), ``duplicate`` (the frame is delivered
    twice), and — on send — ``torn_write`` (a prefix of the frame's
    bytes goes out, then the connection is declared dead), which is how
    the torture driver exercises the chain rule and CRC checks.

    Reads are resumable across ``socket.timeout``: both endpoints run
    their sockets with short timeouts so they can interleave stop
    checks, and a timeout can land mid-frame (most likely inside a
    multi-megabyte bootstrap snapshot on a slow link).  Partially read
    bytes are retained in an internal buffer, so the next :meth:`recv`
    continues the *same* frame instead of reparsing from its middle —
    a timeout never desyncs the stream.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._pushback: deque[dict[str, Any]] = deque()
        # Partial frame accumulated so far; survives socket.timeout.
        self._rbuf = bytearray()

    def send(self, message: dict[str, Any]) -> None:
        action = fault_point("replication.send")
        data = encode_frame(message)
        if action is not None:
            if action.kind == "drop":
                return  # the network ate it; the chain rule will notice
            if action.kind == "torn_write":
                cut = min(max(int(len(data) * action.fraction), 1), len(data) - 1)
                self._sock.sendall(data[:cut])
                raise ReplicationProtocolError(
                    f"torn frame send: {cut}/{len(data)} bytes"
                )
            if action.kind == "duplicate":
                self._sock.sendall(data)
        self._sock.sendall(data)

    def recv(self) -> dict[str, Any] | None:
        """Next message, or ``None`` on clean EOF.

        ``socket.timeout`` propagates so pollers can interleave their
        stop checks; any framing violation raises
        :class:`ReplicationProtocolError`.
        """
        if self._pushback:
            return self._pushback.popleft()
        message = self._recv_raw()
        if message is None:
            return None
        action = fault_point("replication.recv")
        if action is not None:
            if action.kind == "drop":
                # This frame never existed as far as the caller knows;
                # deliver the one after it instead.
                return self._recv_raw()
            if action.kind == "duplicate":
                self._pushback.append(message)
        return message

    def _fill(self, target: int) -> bool:
        """Grow the partial-frame buffer to *target* bytes.

        Returns ``False`` on clean EOF at a frame boundary (nothing
        buffered).  EOF mid-frame raises — the peer died mid-frame,
        which is a torn stream, not a clean close.  ``socket.timeout``
        propagates with the partial bytes kept, so the caller can poll
        its stop flag and come back for the rest of the frame.
        """
        while len(self._rbuf) < target:
            chunk = self._sock.recv(target - len(self._rbuf))
            if not chunk:
                if not self._rbuf:
                    return False
                raise ReplicationProtocolError(
                    f"stream closed mid-frame "
                    f"({len(self._rbuf)}/{target} bytes)"
                )
            self._rbuf.extend(chunk)
        return True

    def _recv_raw(self) -> dict[str, Any] | None:
        if not self._fill(_HEADER.size):
            return None
        length, expected_crc = _HEADER.unpack(bytes(self._rbuf[: _HEADER.size]))
        if length > MAX_FRAME_BYTES:
            raise ReplicationProtocolError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap"
            )
        self._fill(_HEADER.size + length)  # EOF here raises (buffer non-empty)
        body = bytes(self._rbuf[_HEADER.size : _HEADER.size + length])
        del self._rbuf[: _HEADER.size + length]
        if zlib.crc32(body) & 0xFFFFFFFF != expected_crc:
            raise ReplicationProtocolError("frame CRC mismatch")
        try:
            message = json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise ReplicationProtocolError("frame body is not valid JSON") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ReplicationProtocolError("frame body is not a typed message")
        return message

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


# -- message constructors (both endpoints speak through these) --------------


def hello(last_seq: int, replica: str, history: str = "") -> dict[str, Any]:
    return {
        "type": "hello",
        "last_seq": last_seq,
        "replica": replica,
        "history": history,
    }


def resume(seq: int, history: str = "") -> dict[str, Any]:
    return {"type": "resume", "seq": seq, "history": history}


def snapshot_message(
    seq: int,
    tables: dict[str, list],
    history: str = "",
    versions: "dict[str, int] | None" = None,
) -> dict[str, Any]:
    """*versions* is the primary's per-table version vector at *seq*;
    bootstrapping replicas stamp their tables from it so version-derived
    ``ETag``s agree across the fleet (absent in frames from older
    primaries — receivers must tolerate that)."""
    frame = {"type": "snapshot", "seq": seq, "tables": tables, "history": history}
    if versions is not None:
        frame["versions"] = versions
    return frame


def commit_message(
    seq: int,
    prev: int,
    record: dict[str, Any],
    trace: dict[str, str] | None = None,
) -> dict[str, Any]:
    """*trace*, when given, is the originating commit's serialized
    :class:`~repro.obs.tracing.TraceContext` — the replica parents its
    apply span on it, so the apply joins the primary-side trace.  The
    field is frame-level metadata, deliberately outside ``record``: the
    record is re-logged verbatim into the replica's WAL, and trace ids
    are ephemeral diagnostics that do not belong in durable history."""
    message: dict[str, Any] = {
        "type": "commit", "seq": seq, "prev": prev, "record": record,
    }
    if trace is not None:
        message["trace"] = trace
    return message


def heartbeat(seq: int) -> dict[str, Any]:
    return {"type": "heartbeat", "seq": seq}


def ack(seq: int) -> dict[str, Any]:
    return {"type": "ack", "seq": seq}
