"""Replica side of WAL shipping: apply the stream, serve snapshots.

A :class:`Replica` wraps a locally constructed system (a
:class:`~repro.facade.BFabric` instance or a bare
:class:`~repro.storage.database.Database`) whose schemas match the
primary's, and keeps it converged by applying shipped commit records
through the storage engine's replay path.  All replica state lives in
the *primary's* commit-sequence space, so a sequence token handed out by
the primary (``db.committed`` after a write) is directly meaningful to
:meth:`wait_for` here — that is what gives sessions read-your-writes
across the wire.

The stream loop is wrapped in the resilience layer: reconnects go
through a :class:`~repro.resilience.policies.RetryPolicy` and a circuit
breaker keyed on the primary's address, so a dead primary degrades into
periodic cheap probes instead of a tight reconnect spin.

``promote()`` turns the replica into a writable primary: the stream is
drained (in-flight frames get their chance to apply, hard-capped at the
drain timeout), the WAL's torn tail is truncated, and the underlying
database continues from its applied sequence — under a *fresh* history
id, because post-promotion commits are a new lineage that replicas of
the old primary must bootstrap into rather than resume.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.errors import (
    ReplicaLagExceeded,
    ReplicationError,
    ReplicationProtocolError,
)
from repro.obs.tracing import TraceContext
from repro.replication import protocol
from repro.resilience.faults import fault_point
from repro.resilience.policies import (
    BreakerRegistry,
    ResiliencePolicy,
    RetryPolicy,
    resilient,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.storage.database import Database
    from repro.storage.snapshot import Snapshot


class Replica:
    """A read replica fed by one primary's WAL stream."""

    def __init__(
        self,
        system: Any,
        primary_address: tuple[str, int],
        *,
        name: str = "",
        max_lag: int | None = None,
        obs: "Observability | None" = None,
        breakers: BreakerRegistry | None = None,
        retry: RetryPolicy | None = None,
        recv_timeout: float = 0.2,
        reconnect_delay: float = 0.1,
        sync_search: bool = True,
    ):
        """*system* is a facade (``.db`` + optionally ``.search`` /
        ``.reindex_all``) or a bare :class:`Database`.  *max_lag* bounds
        staleness in commit sequences: :meth:`snapshot` refuses to serve
        (raising :class:`ReplicaLagExceeded`) when the replica trails
        the primary by more, which is the signal the routing facade uses
        to fall back to the primary."""
        self.system = system
        self.db: "Database" = getattr(system, "db", system)
        self.obs = obs if obs is not None else self.db.obs
        self.primary_address = primary_address
        self.name = name or f"replica-{id(self) & 0xFFFF:04x}"
        self.max_lag = max_lag
        self.recv_timeout = recv_timeout
        self.reconnect_delay = reconnect_delay
        self._sync_search = sync_search and hasattr(system, "search")
        self._mu = threading.Lock()
        self._applied_cv = threading.Condition(self._mu)
        self._applied_seq = 0
        self._primary_seq = 0
        self._connected = False
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_deadline = 0.0
        # Hard ceiling on the drain: frame arrivals extend the deadline
        # only up to this, so a still-streaming primary cannot stall
        # promotion forever.
        self._drain_cap = float("inf")
        self._thread: threading.Thread | None = None
        self._promoted = False
        self._applied_frames = 0
        self._bootstraps = 0
        endpoint = f"replication:{primary_address[0]}:{primary_address[1]}"
        registry = breakers if breakers is not None else BreakerRegistry(
            obs=self.obs, failure_threshold=5, cooldown=1.0
        )
        policy = ResiliencePolicy(
            retry=retry
            or RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.5, seed=7),
            breaker=registry.breaker(endpoint),
            give_up_on=(),
        )
        self._guarded_stream = resilient(
            policy, site="replication.stream", obs=self.obs
        )(self._connect_and_stream)
        metrics = self.obs.metrics
        if self._sync_search:
            self._install_search_sync()
        self._m_applied = metrics.counter(
            "replication_applied_total", "Commit frames applied by this replica"
        ).labels()
        self._m_duplicates = metrics.counter(
            "replication_duplicate_frames_total",
            "Redelivered frames skipped by the sequence check",
        ).labels()
        self._m_gaps = metrics.counter(
            "replication_gap_resyncs_total",
            "Stream gaps detected via the chain rule (forced resync)",
        ).labels()
        self._g_applied_seq = metrics.gauge(
            "replication_applied_seq", "Last commit sequence applied locally"
        ).labels()
        self._g_lag = metrics.gauge(
            "replication_replica_lag_seqs",
            "This replica's view of its own lag (primary seq - applied)",
        ).labels()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Replica":
        if self._thread is not None:
            raise ReplicationError(f"replica {self.name!r} already started")
        self._applied_seq = self.db.replication_start_point()[0]
        self._thread = threading.Thread(
            target=self._stream_loop, name=f"replica-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _stream_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._guarded_stream()
            except Exception as exc:
                self.obs.log.log(
                    "replication.stream_down",
                    replica=self.name,
                    error=str(exc),
                )
            with self._mu:
                self._connected = False
            if self._draining.is_set():
                return  # promote() is waiting; do not reconnect
            self._stop.wait(self.reconnect_delay)

    def _connect_and_stream(self) -> None:
        """One connection's lifetime: handshake, then apply until EOF."""
        sock = socket.create_connection(self.primary_address, timeout=2.0)
        sock.settimeout(self.recv_timeout)
        conn = protocol.Connection(sock)
        try:
            with self._mu:
                applied = self._applied_seq
            conn.send(
                protocol.hello(applied, self.name, history=self.db.history_id)
            )
            with self._mu:
                self._connected = True
            while not self._stop.is_set():
                if (
                    self._draining.is_set()
                    and time.monotonic() > self._drain_deadline
                ):
                    return
                try:
                    message = conn.recv()
                except socket.timeout:
                    continue
                if message is None:
                    raise ReplicationError("primary closed the stream")
                self._handle_message(conn, message)
        finally:
            with self._mu:
                self._connected = False
            conn.close()

    def _handle_message(
        self, conn: protocol.Connection, message: dict[str, Any]
    ) -> None:
        kind = message.get("type")
        if kind == "resume":
            return
        if kind == "snapshot":
            seq = int(message["seq"])
            versions = message.get("versions")
            self.db.load_replicated_snapshot(
                message["tables"],
                seq=seq,
                history=str(message.get("history") or "") or None,
                versions=versions if isinstance(versions, dict) else None,
            )
            self._note_applied(seq, primary_seq=seq)
            self._bootstraps += 1
            if self._sync_search and hasattr(self.system, "reindex_all"):
                self.system.reindex_all()
            conn.send(protocol.ack(seq))
            return
        if kind == "heartbeat":
            seq = int(message["seq"])
            with self._mu:
                self._primary_seq = max(self._primary_seq, seq)
                applied = self._applied_seq
                self._g_lag.set(max(0, self._primary_seq - applied))
            if seq > applied:
                # Nothing in flight can explain the difference — the
                # final frame(s) were lost; resync from our position.
                self._m_gaps.inc()
                raise ReplicationProtocolError(
                    f"heartbeat at seq {seq} but applied is {applied}: "
                    "stream dropped frames"
                )
            conn.send(protocol.ack(applied))
            return
        if kind == "commit":
            fault_point("replication.apply")
            seq = int(message["seq"])
            prev = int(message["prev"])
            with self._mu:
                applied = self._applied_seq
            if seq <= applied:
                self._m_duplicates.inc()
                conn.send(protocol.ack(applied))
                return
            if prev > applied:
                self._m_gaps.inc()
                raise ReplicationProtocolError(
                    f"commit chain broken: frame prev={prev} but applied "
                    f"is {applied} (lost frame)"
                )
            trace = TraceContext.from_dict(message.get("trace"))
            if trace is not None:
                # The frame carries the originating commit's trace: the
                # apply span joins that trace across the process hop
                # (its parent_id names a span the primary holds).
                with self.obs.tracer.span(
                    "replication.apply",
                    parent=trace,
                    seq=seq,
                    replica=self.name,
                ):
                    self.db.apply_replicated_commit(
                        message["record"], seq=seq, trace=trace
                    )
            else:
                self.db.apply_replicated_commit(message["record"], seq=seq)
            self._m_applied.inc()
            self._applied_frames += 1
            self._note_applied(seq)
            conn.send(protocol.ack(seq))
            return
        raise ReplicationProtocolError(f"unexpected message type {kind!r}")

    def _note_applied(self, seq: int, *, primary_seq: int | None = None) -> None:
        with self._mu:
            if seq > self._applied_seq:
                self._applied_seq = seq
            self._primary_seq = max(
                self._primary_seq,
                seq if primary_seq is None else primary_seq,
            )
            self._g_applied_seq.set(self._applied_seq)
            self._g_lag.set(max(0, self._primary_seq - self._applied_seq))
            if self._draining.is_set():
                # Receiving frames extends the drain window — but never
                # past the cap, or a primary that keeps streaming would
                # stall promotion indefinitely.
                self._drain_deadline = min(
                    time.monotonic() + self._drain_grace, self._drain_cap
                )
            self._applied_cv.notify_all()

    # -- reads -------------------------------------------------------------

    @property
    def applied_seq(self) -> int:
        with self._mu:
            return self._applied_seq

    @property
    def connected(self) -> bool:
        with self._mu:
            return self._connected

    @property
    def promoted(self) -> bool:
        return self._promoted

    def lag(self) -> int:
        """Commit sequences between the primary's last shipped and us."""
        with self._mu:
            return max(0, self._primary_seq - self._applied_seq)

    def healthy(self, max_lag: int | None = None) -> bool:
        """Connected (or promoted) and within the staleness bound."""
        bound = self.max_lag if max_lag is None else max_lag
        if self._promoted:
            return True
        if not self.connected:
            return False
        return bound is None or self.lag() <= bound

    def snapshot(self) -> "Snapshot":
        """Lock-free MVCC read view over the replica's database.

        Raises :class:`ReplicaLagExceeded` when the replica is
        disconnected or trails the primary beyond ``max_lag`` — the
        router catches this and serves the read from the primary.
        """
        if not self._promoted and self.max_lag is not None:
            if not self.connected:
                raise ReplicaLagExceeded(
                    f"replica {self.name!r} is disconnected", lag_seqs=-1
                )
            lag = self.lag()
            if lag > self.max_lag:
                raise ReplicaLagExceeded(
                    f"replica {self.name!r} lags {lag} seqs "
                    f"(bound {self.max_lag})",
                    lag_seqs=lag,
                )
        return self.db.snapshot()

    def wait_for(self, seq: int, timeout: float = 5.0) -> int:
        """Block until *seq* is applied locally (read-your-writes).

        Returns the applied sequence; raises
        :class:`ReplicaLagExceeded` on timeout.
        """
        deadline = time.monotonic() + timeout
        with self._mu:
            while self._applied_seq < seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ReplicaLagExceeded(
                        f"replica {self.name!r} did not reach seq {seq} "
                        f"within {timeout:g}s (applied {self._applied_seq})",
                        lag_seqs=seq - self._applied_seq,
                    )
                self._applied_cv.wait(remaining)
            return self._applied_seq

    # -- promotion ---------------------------------------------------------

    _drain_grace = 0.3

    def promote(self, *, drain_timeout: float = 1.0) -> "Database":
        """Become the writable primary.

        Drains the stream first — frames already in flight keep applying
        until the connection goes quiet for :attr:`_drain_grace` seconds
        or ``drain_timeout`` elapses in total, whichever comes first —
        then stops the stream for good, truncates any torn WAL tail, and
        marks the replica promoted.  The total drain is hard-capped at
        ``drain_timeout`` even while frames keep arriving, and promotion
        fails loudly (:class:`ReplicationError`) if the stream thread is
        somehow still applying after the cap: local writes must never
        interleave with a live replication stream.  The returned
        database accepts writes; its committed sequence continues the
        old primary's, but under a *fresh* history id, so replicas of
        the old primary bootstrap rather than resume when they re-join.
        """
        if self._promoted:
            return self.db
        start = time.monotonic()
        with self._mu:
            self._drain_cap = start + drain_timeout
            self._drain_deadline = min(
                start + self._drain_grace, self._drain_cap
            )
        self._draining.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=drain_timeout + 2.0)
        self._stop.set()
        if thread is not None and thread.is_alive():
            # _stop is now set; give the loop one recv timeout to notice.
            thread.join(timeout=max(1.0, self.recv_timeout * 5))
            if thread.is_alive():
                raise ReplicationError(
                    f"replica {self.name!r}: stream thread still applying "
                    "frames after the drain cap; refusing to promote over "
                    "a live stream"
                )
        if self.db.wal is not None:
            self.db.wal.truncate_torn_tail()
        # Post-promotion commits are a new lineage: the old primary (if
        # it comes back) and this database will assign the same sequence
        # numbers to different commits from here on.
        self.db.new_history()
        self._promoted = True
        self.obs.log.log(
            "replication.promote", replica=self.name, seq=self.applied_seq
        )
        return self.db

    def rejoin(self, primary_address: tuple[str, int]) -> None:
        """Point a (stopped or orphaned) replica at a new primary."""
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self.primary_address = primary_address
        endpoint = f"replication:{primary_address[0]}:{primary_address[1]}"
        registry = BreakerRegistry(
            obs=self.obs, failure_threshold=5, cooldown=1.0
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.05, max_delay=0.5, seed=7
            ),
            breaker=registry.breaker(endpoint),
        )
        self._guarded_stream = resilient(
            policy, site="replication.stream", obs=self.obs
        )(self._connect_and_stream)
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_deadline = 0.0
        self._drain_cap = float("inf")
        self._thread = None
        self.start()

    # -- search sync -------------------------------------------------------

    #: Tables whose rows feed the full-text index.
    _INDEXED_TABLES = frozenset(
        (
            "project",
            "sample",
            "extract",
            "workunit",
            "data_resource",
            "annotation",
            "application",
        )
    )

    def _install_search_sync(self) -> None:
        """Keep the replica's full-text index converged with applied ops.

        The primary indexes through domain events, which do not fire
        here — replicas see raw row operations instead, so the mapping
        from row to document is replayed from those.  The listener also
        covers post-promotion local commits, keeping a promoted replica
        searchable without re-wiring.
        """

        def on_ops(ops: list) -> None:
            for op in ops:
                if op.table not in self._INDEXED_TABLES:
                    continue
                try:
                    if op.op == "delete":
                        self.system.search.remove_document(op.table, op.pk)
                    else:
                        self._index_row(op.table, op.pk, op.after or {})
                except Exception:
                    # Indexing must never wedge the apply path; a full
                    # reindex_all() heals any miss.
                    pass

        self.db.on_commit(on_ops)

    def _index_row(self, table: str, pk: Any, row: dict[str, Any]) -> None:
        search = self.system.search
        if table == "project":
            search.index_document(
                "project", pk,
                {
                    "name": row.get("name", ""),
                    "description": row.get("description", ""),
                },
                project_id=pk,
            )
        elif table == "sample":
            attributes = row.get("attributes") or {}
            search.index_document(
                "sample", pk,
                {
                    "name": row.get("name", ""),
                    "species": row.get("species", ""),
                    "description": row.get("description", ""),
                    "attributes": " ".join(
                        f"{k} {v}" for k, v in attributes.items()
                    )
                    if isinstance(attributes, dict)
                    else "",
                },
                project_id=row.get("project_id"),
            )
        elif table == "extract":
            sample = self.db.get_or_none("sample", row.get("sample_id")) or {}
            search.index_document(
                "extract", pk,
                {
                    "name": row.get("name", ""),
                    "procedure": row.get("procedure", ""),
                    "description": row.get("description", ""),
                },
                project_id=sample.get("project_id"),
            )
        elif table == "workunit":
            search.index_document(
                "workunit", pk,
                {
                    "name": row.get("name", ""),
                    "description": row.get("description", ""),
                },
                project_id=row.get("project_id"),
            )
        elif table == "data_resource":
            workunit = (
                self.db.get_or_none("workunit", row.get("workunit_id")) or {}
            )
            # Stored file bytes live on the primary; replicas index the
            # searchable metadata only.
            search.index_document(
                "data_resource", pk,
                {"name": row.get("name", ""), "uri": row.get("uri", "")},
                project_id=workunit.get("project_id"),
            )
        elif table == "annotation":
            if row.get("status") in ("pending", "released"):
                search.index_document(
                    "annotation", pk,
                    {"value": row.get("value", "")},
                    label=row.get("value", ""),
                )
            else:
                search.remove_document("annotation", pk)
        elif table == "application":
            search.index_document(
                "application", pk,
                {
                    "name": row.get("name", ""),
                    "description": row.get("description", ""),
                },
            )

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        with self._mu:
            return {
                "name": self.name,
                "primary": f"{self.primary_address[0]}:{self.primary_address[1]}",
                "connected": self._connected,
                "promoted": self._promoted,
                "applied_seq": self._applied_seq,
                "primary_seq": self._primary_seq,
                "lag_seqs": max(0, self._primary_seq - self._applied_seq),
                "applied_frames": self._applied_frames,
                "bootstraps": self._bootstraps,
                "max_lag": self.max_lag,
            }
