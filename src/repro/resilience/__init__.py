"""Resilience: fault-tolerance policies, fault injection, dead letters.

Three pieces, designed to be used together:

* :mod:`repro.resilience.policies` — declarative :class:`RetryPolicy`,
  :class:`Timeout` and :class:`CircuitBreaker`, bundled into a
  :class:`ResiliencePolicy` and applied with the :func:`resilient`
  wrapper.  Connectors and data-import providers are guarded this way.
* :mod:`repro.resilience.faults` — deterministic fault injection at
  named sites (:func:`fault_point`), scripted by a :class:`FaultPlan`.
  The WAL write path, the importer, connectors and the workflow engine
  all declare sites; the torture driver and chaos tests use them.
* :mod:`repro.resilience.dlq` — the persistent dead-letter queue that
  failed event deliveries are routed to (``repro dlq list|retry``).
* :mod:`repro.resilience.torture` — the crash-point torture driver:
  kills the database at every WAL fault site and asserts the recovery
  invariants across all durability modes.

``dlq`` and ``torture`` are imported lazily: they depend on the ORM and
storage layers, which themselves declare fault sites from this package.
"""

from repro.resilience.faults import (
    Fault,
    FaultAction,
    FaultPlan,
    REGISTERED_SITES,
    WAL_SITES,
    active_plan,
    fault_point,
    inject,
    install,
)
from repro.resilience.policies import (
    BreakerRegistry,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    Timeout,
    resilient,
)

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "Fault",
    "FaultAction",
    "FaultPlan",
    "REGISTERED_SITES",
    "ResiliencePolicy",
    "RetryPolicy",
    "Timeout",
    "TortureReport",
    "WAL_SITES",
    "active_plan",
    "fault_point",
    "handler_name",
    "inject",
    "install",
    "resilient",
    "run_torture",
]

_LAZY = {
    "DeadLetter": ("repro.resilience.dlq", "DeadLetter"),
    "DeadLetterQueue": ("repro.resilience.dlq", "DeadLetterQueue"),
    "handler_name": ("repro.resilience.dlq", "handler_name"),
    "TortureReport": ("repro.resilience.torture", "TortureReport"),
    "run_torture": ("repro.resilience.torture", "run_torture"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
