"""The dead-letter queue: failed event deliveries, persisted.

When an :class:`~repro.util.events.EventBus` subscriber raises, the bus
no longer aborts the publication — the failed delivery is *dead-lettered*
here as a ``dead_letter`` row and the remaining subscribers still run.
A crashing consumer can therefore neither lose an event nor poison the
deliveries behind it, and an operator can replay the letter once the
consumer is fixed (``repro dlq list|retry`` or the service API).

Event payloads hold live objects (model instances, principals), which a
persistent queue cannot store verbatim.  Two layers keep retries exact:

* the original live payload is cached in memory keyed by letter id, so a
  same-process retry redelivers the *identical* objects;
* a JSON-safe encoding is persisted — model instances become
  ``{"__entity__": {"table": ..., "pk": ...}}`` references (reloaded
  from the database at retry time), principals become
  ``{"__principal__": ...}``, JSON-native values pass through, anything
  else degrades to a ``repr`` string — so a retry from a fresh process
  (the CLI) still reconstructs a faithful payload.
"""

from __future__ import annotations

import datetime as _dt
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import StateError
from repro.orm import (
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.security.principals import Principal, Role
from repro.util.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.tasks.queue import JobQueue
    from repro.util.events import EventBus

DEAD_LETTER_STATES = ("dead", "retried", "discarded")


class DeadLetter(Model):
    """One failed event delivery awaiting operator attention."""

    __table__ = "dead_letter"
    id = IntField(primary_key=True)
    source = TextField(nullable=False, default="events")
    event = TextField(nullable=False, index=True)
    handler = TextField(nullable=False, default="")
    payload = JsonField(default=dict)
    error = TextField(default="")
    attempts = IntField(default=1)
    status = TextField(
        nullable=False, default="dead", check=lambda v: v in DEAD_LETTER_STATES
    )
    created_at = DateTimeField()
    updated_at = DateTimeField()
    __indexes__ = ["status"]


def handler_name(handler: Callable[..., Any]) -> str:
    """A stable, human-readable name for a subscriber callable."""
    name = getattr(handler, "__qualname__", None) or getattr(
        handler, "__name__", None
    )
    return name or repr(handler)


class DeadLetterQueue:
    """Persistence and replay of failed event deliveries."""

    def __init__(
        self,
        registry: Registry,
        *,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
    ):
        self._registry = registry
        self._letters = registry.register(DeadLetter)
        self._clock = clock or SystemClock()
        self._obs = obs
        #: Live payloads for same-process retries (letter id → kwargs).
        self._live: dict[int, dict[str, Any]] = {}
        #: Job queue for ``source="queue"`` letters (see attach_queue).
        self._queue: "JobQueue | None" = None
        self._m_dead = None
        if obs is not None:
            self._m_dead = obs.metrics.counter(
                "events_dead_letters_total",
                "Failed deliveries routed to the dead-letter queue",
                labels=("event",),
            )
            obs.metrics.gauge(
                "events_dead_letters_pending",
                "Dead letters awaiting retry or discard",
            )

    def attach_queue(self, queue: "JobQueue") -> None:
        """Route ``source="queue"`` letters through the durable job table.

        A dead *job's* payload lives in its ``job`` row, not in any
        process-local cache, so retrying it is a state transition
        (``dead → pending``) that works from a fresh process — unlike
        event letters, whose live payloads only survive same-process.
        """
        self._queue = queue

    # -- enqueue -----------------------------------------------------------------

    def add(
        self,
        event: str,
        handler: Callable[..., Any] | str,
        payload: dict[str, Any],
        error: BaseException,
        *,
        source: str = "events",
    ) -> DeadLetter:
        """Record one failed delivery; returns the persisted letter."""
        name = handler if isinstance(handler, str) else handler_name(handler)
        now = self._clock.now()
        letter = self._letters.create(
            source=source,
            event=event,
            handler=name,
            payload=self._encode_payload(payload),
            error=f"{type(error).__name__}: {error}",
            attempts=1,
            status="dead",
            created_at=now,
            updated_at=now,
        )
        self._live[letter.id] = dict(payload)
        if self._m_dead is not None:
            self._m_dead.labels(event=event).inc()
            self._update_pending_gauge()
        if self._obs is not None:
            self._obs.log.log(
                "events.dead_letter",
                id=letter.id,
                topic=event,
                handler=name,
                error=str(error),
            )
        return letter

    # -- inspection ----------------------------------------------------------------

    def get(self, letter_id: int) -> DeadLetter:
        letter = self._letters.get_or_none(letter_id)
        if letter is None:
            raise StateError(f"no dead letter with id {letter_id}")
        return letter

    def list(self, *, status: str | None = "dead") -> list[DeadLetter]:
        query = self._letters.query()
        if status is not None:
            query = query.where("status", "=", status)
        return query.order_by("id").all()

    def pending_count(self) -> int:
        return self._letters.query().where("status", "=", "dead").count()

    # -- replay ----------------------------------------------------------------------

    def retry(self, letter_id: int, bus: "EventBus") -> DeadLetter:
        """Re-deliver one letter to its (current) subscriber.

        Success flips the letter to ``retried``; a repeated failure
        bumps ``attempts``, refreshes ``error``, leaves it ``dead`` and
        re-raises so the operator sees why.
        """
        letter = self.get(letter_id)
        if letter.status != "dead":
            raise StateError(
                f"dead letter {letter_id} is {letter.status}, not dead"
            )
        if letter.source == "queue":
            return self._retry_queue_job(letter)
        handler = self._find_handler(bus, letter.event, letter.handler)
        if handler is None:
            raise StateError(
                f"no subscriber named {letter.handler!r} is currently "
                f"registered for event {letter.event!r}"
            )
        payload = self._live.get(letter.id) or self._decode_payload(letter.payload)
        try:
            handler(**payload)
        except Exception as exc:
            self._letters.update(
                letter_id,
                attempts=letter.attempts + 1,
                error=f"{type(exc).__name__}: {exc}",
                updated_at=self._clock.now(),
            )
            raise
        updated = self._letters.update(
            letter_id, status="retried", updated_at=self._clock.now()
        )
        self._live.pop(letter_id, None)
        self._update_pending_gauge()
        return updated

    def _retry_queue_job(self, letter: DeadLetter) -> DeadLetter:
        """Replay a dead *job*: flip its durable row back to pending.

        No live payload needed — the job table has everything — so this
        path works identically from the process that dead-lettered it
        and from a fresh CLI after a restart.
        """
        if self._queue is None:
            raise StateError(
                f"dead letter {letter.id} came from the job queue but no "
                "queue is attached"
            )
        job_id = (letter.payload or {}).get("job_id")
        if not isinstance(job_id, int):
            raise StateError(
                f"dead letter {letter.id} has no job_id in its payload"
            )
        try:
            self._queue.retry_dead(job_id)
        except Exception as exc:
            self._letters.update(
                letter.id,
                attempts=letter.attempts + 1,
                error=f"{type(exc).__name__}: {exc}",
                updated_at=self._clock.now(),
            )
            raise
        updated = self._letters.update(
            letter.id, status="retried", updated_at=self._clock.now()
        )
        self._live.pop(letter.id, None)
        self._update_pending_gauge()
        return updated

    def retry_all(self, bus: "EventBus") -> tuple[int, int]:
        """Retry every dead letter; returns ``(succeeded, failed)``."""
        succeeded = failed = 0
        for letter in self.list(status="dead"):
            try:
                self.retry(letter.id, bus)
                succeeded += 1
            except Exception:
                failed += 1
        return succeeded, failed

    def discard(self, letter_id: int) -> DeadLetter:
        letter = self.get(letter_id)
        if letter.status != "dead":
            raise StateError(
                f"dead letter {letter_id} is {letter.status}, not dead"
            )
        updated = self._letters.update(
            letter_id, status="discarded", updated_at=self._clock.now()
        )
        self._live.pop(letter_id, None)
        self._update_pending_gauge()
        return updated

    @staticmethod
    def _find_handler(
        bus: "EventBus", event: str, name: str
    ) -> Callable[..., Any] | None:
        for handler in bus.handlers_for(event):
            if handler_name(handler) == name:
                return handler
        return None

    def _update_pending_gauge(self) -> None:
        if self._obs is not None:
            self._obs.metrics.gauge("events_dead_letters_pending").set(
                self.pending_count()
            )

    # -- payload (de)hydration ----------------------------------------------------------

    def _encode_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {key: self._encode_value(value) for key, value in payload.items()}

    def _encode_value(self, value: Any) -> Any:
        if isinstance(value, Model):
            return {"__entity__": {"table": value.__table__, "pk": value.pk}}
        if isinstance(value, Principal):
            return {
                "__principal__": {
                    "user_id": value.user_id,
                    "login": value.login,
                    "role": value.role.value,
                }
            }
        if isinstance(value, _dt.datetime):
            return {"__datetime__": value.isoformat()}
        if isinstance(value, (list, tuple)):
            return [self._encode_value(item) for item in value]
        if isinstance(value, dict):
            return {str(k): self._encode_value(v) for k, v in value.items()}
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        return {"__repr__": repr(value)}

    def _decode_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {key: self._decode_value(value) for key, value in payload.items()}

    def _decode_value(self, value: Any) -> Any:
        if isinstance(value, list):
            return [self._decode_value(item) for item in value]
        if not isinstance(value, dict):
            return value
        if "__entity__" in value and set(value) == {"__entity__"}:
            ref = value["__entity__"]
            repo = self._registry.repository_for(ref["table"])
            if repo is None:
                raise StateError(
                    f"cannot rehydrate entity of table {ref['table']!r}: "
                    "no model registered"
                )
            entity = repo.get_or_none(ref["pk"])
            if entity is None:
                raise StateError(
                    f"cannot rehydrate {ref['table']}[{ref['pk']!r}]: "
                    "row no longer exists"
                )
            return entity
        if "__principal__" in value and set(value) == {"__principal__"}:
            data = value["__principal__"]
            return Principal(
                user_id=data["user_id"],
                login=data["login"],
                role=Role(data["role"]),
            )
        if "__datetime__" in value and set(value) == {"__datetime__"}:
            return _dt.datetime.fromisoformat(value["__datetime__"])
        if "__repr__" in value and set(value) == {"__repr__"}:
            return value["__repr__"]
        return {k: self._decode_value(v) for k, v in value.items()}
