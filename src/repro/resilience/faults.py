"""Deterministic fault injection at named sites.

Production code is sprinkled with :func:`fault_point` calls at its
integration edges (the WAL write path, provider fetches, connector runs,
workflow transitions).  With no plan installed a fault point is a single
global read — effectively free.  Tests and the torture driver install a
:class:`FaultPlan` that scripts *exactly* which invocation of which site
fails, and how::

    plan = FaultPlan([
        Fault("wal.write", kind="torn_write", at_call=3, fraction=0.4),
        Fault("connector.run", kind="error", error=ConnectorError,
              probability=0.25, times=-1),
    ], seed=2010)
    with inject(plan):
        ...

Fault kinds:

``error``
    Raise ``fault.error`` (default :class:`~repro.errors.FaultInjected`)
    out of the fault point.  ``error=CrashPoint`` simulates a kill.
``latency``
    Sleep ``latency_s`` seconds inside the fault point, then continue.
``torn_write`` / ``partial`` / ``drop`` / ``duplicate``
    Returned to the call site as a :class:`FaultAction`; only sites that
    understand them react (the WAL tears its append after ``fraction``
    of the bytes; the importer truncates a fetched file to ``fraction``
    of its size; the replication stream swallows or redelivers a
    frame).  Sites that receive an action kind they do not implement
    ignore it.

Scheduling is by exact step (``at_call``, 1-based per site) or seeded
probability per hit; both are deterministic for a given plan seed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import FaultInjected

#: Every site wired into production code, with what the site supports.
REGISTERED_SITES: dict[str, str] = {
    "wal.append": "WAL append entry, before any byte is written (error)",
    "wal.write": "WAL file write (error, torn_write)",
    "wal.after_write": "after WAL write+flush, before fsync (error)",
    "wal.after_fsync": "after the WAL fsync returned (error)",
    "dataimport.fetch": "provider fetch of one file (error, latency, partial)",
    "dataimport.ingest": "managed-store ingest of one fetched file (error)",
    "connector.run": "application connector execution (error, latency)",
    "workflow.transition": "workflow transition executor (error)",
    "replication.send": (
        "primary-side frame send to one replica (error, latency, drop,"
        " torn_write)"
    ),
    "replication.recv": (
        "replica-side frame receive (error, latency, drop, duplicate)"
    ),
    "replication.apply": "replica-side apply of one shipped commit (error)",
    "2pc.prepare": (
        "before one participant's prepare append in a cross-shard commit"
        " (error)"
    ),
    "2pc.decide": (
        "after every prepare, before the coordinator decision append"
        " (error)"
    ),
    "2pc.commit": (
        "after the decision is durable, before one participant's phase-2"
        " commit (error)"
    ),
    "queue.claim": (
        "job-queue claim after candidate selection, before any lease is"
        " written — fires only when the claim would return work, so"
        " at_call counts real deliveries, not idle polls (error)"
    ),
    "queue.ack": (
        "job-queue ack before the durable done-transition — a kill here"
        " is the torn-ack scenario: work done, job still leased (error)"
    ),
    "queue.heartbeat": (
        "job-queue lease extension, before the expiry is pushed out"
        " (error)"
    ),
    "worker.run": (
        "worker-pool job execution, after claim and before the handler"
        " runs (error, latency)"
    ),
}

#: The WAL crash sites the torture driver kills the database at.
WAL_SITES = ("wal.append", "wal.write", "wal.after_write", "wal.after_fsync")

#: The cross-shard crash sites `repro torture --shards` kills at.
TWO_PC_SITES = ("2pc.prepare", "2pc.decide", "2pc.commit")

#: The worker-kill sites `repro torture --ingest` kills at: every point
#: of the lease protocol plus the import work running under it.
INGEST_SITES = (
    "queue.claim",
    "worker.run",
    "dataimport.fetch",
    "dataimport.ingest",
    "queue.heartbeat",
    "queue.ack",
)


@dataclass
class Fault:
    """One scripted fault (see module docstring for the kinds)."""

    site: str
    kind: str = "error"
    #: Fire on the Nth hit of the site (1-based); ``None`` = use probability.
    at_call: int | None = None
    #: Per-hit firing probability when ``at_call`` is None (seeded rng).
    probability: float = 0.0
    #: Maximum number of firings; -1 means unlimited.
    times: int = 1
    #: Exception class or zero-arg factory for ``kind="error"``.
    error: "type[BaseException] | Callable[[], BaseException] | None" = None
    latency_s: float = 0.0
    #: Byte/size fraction for ``torn_write`` / ``partial``.
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.site not in REGISTERED_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"registered: {sorted(REGISTERED_SITES)}"
            )
        if self.kind not in (
            "error",
            "latency",
            "torn_write",
            "partial",
            "drop",
            "duplicate",
        ):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 < self.fraction < 1.0 and self.kind in ("torn_write", "partial"):
            raise ValueError("fraction must be strictly between 0 and 1")

    def make_error(self) -> BaseException:
        if self.error is None:
            return FaultInjected(f"injected fault at {self.site}")
        if isinstance(self.error, type):
            return self.error(f"injected fault at {self.site}")
        return self.error()


@dataclass(frozen=True)
class FaultAction:
    """What a fired fault asks the site to do (site-interpreted kinds)."""

    site: str
    kind: str
    fraction: float = 0.5


class FaultPlan:
    """A deterministic schedule of faults over the registered sites."""

    def __init__(self, faults: "list[Fault] | tuple[Fault, ...]", *, seed: int = 0):
        import random

        self.faults = list(faults)
        self.seed = seed
        self._rng = random.Random(seed)
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._lock = threading.Lock()

    def hits(self, site: str) -> int:
        """How many times *site* has been reached under this plan."""
        with self._lock:
            return self._hits.get(site, 0)

    def fired(self) -> int:
        """Total faults fired so far."""
        with self._lock:
            return sum(self._fired.values())

    def check(self, site: str) -> Fault | None:
        """Record a hit of *site*; return the fault to fire, if any."""
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for index, fault in enumerate(self.faults):
                if fault.site != site:
                    continue
                used = self._fired.get(index, 0)
                if fault.times >= 0 and used >= fault.times:
                    continue
                if fault.at_call is not None:
                    due = hit == fault.at_call
                elif fault.probability > 0:
                    due = self._rng.random() < fault.probability
                else:
                    due = False
                if due:
                    self._fired[index] = used + 1
                    return fault
            return None


#: The process-wide active plan.  Installed/removed via :func:`inject`;
#: ``None`` (the overwhelmingly common case) makes fault points free.
_ACTIVE: FaultPlan | None = None
_INSTALL_LOCK = threading.Lock()


def install(plan: FaultPlan | None) -> None:
    """Install *plan* globally (``None`` disables injection)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = plan


def active_plan() -> FaultPlan | None:
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager installing *plan* for the duration of the block."""
    install(plan)
    try:
        yield plan
    finally:
        install(None)


def fault_point(site: str) -> FaultAction | None:
    """Declare a fault site; called from production code.

    Returns ``None`` almost always.  When the active plan fires a fault
    here: ``error`` faults raise, ``latency`` faults sleep then return
    ``None``, and site-interpreted kinds (``torn_write``, ``partial``)
    are handed back as a :class:`FaultAction` for the site to apply.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    fault = plan.check(site)
    if fault is None:
        return None
    if fault.kind == "error":
        raise fault.make_error()
    if fault.kind == "latency":
        time.sleep(fault.latency_s)
        return None
    return FaultAction(site=site, kind=fault.kind, fraction=fault.fraction)
