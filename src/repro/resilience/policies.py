"""Declarative fault-tolerance policies: retry, timeout, circuit breaker.

Every integration edge of B-Fabric talks to something that can fail —
instrument data providers, the (simulated) Rserve server, the local
filesystem.  Instead of scattering ``try/except``/``sleep`` loops, call
sites declare *policies* and wrap the flaky callable::

    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=4, base_delay=0.05, seed=2010),
        timeout=Timeout(2.0),
        breaker=breakers.breaker("rserve:rserve.local:6311"),
    )
    outcome = resilient(policy, site="connector.run", obs=obs)(run)(request)

Semantics:

* :class:`RetryPolicy` — exponential backoff with *deterministic* jitter
  (seeded; the same seed always produces the same delay sequence, so
  tests and the torture driver replay byte-identical schedules).
* :class:`Timeout` — bounds one attempt; the callable runs on a worker
  thread and :class:`~repro.errors.TimeoutExceeded` is raised when it
  overruns (the thread is abandoned — Python cannot kill it — which is
  acceptable for the I/O-bound calls this guards).
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine.  After ``failure_threshold`` consecutive failures the breaker
  opens and calls fail fast with :class:`~repro.errors.CircuitOpenError`;
  once ``cooldown`` seconds pass, a limited number of probe calls are
  let through (*half-open*) and a success closes the breaker again.

The wrapper emits ``resilience_retries_total``, ``resilience_gave_up_total``
and ``resilience_calls_total`` counters plus a ``resilience.call`` trace
span; breakers export the ``resilience_breaker_state`` gauge
(0 = closed, 1 = open, 2 = half-open) into the shared registry, which is
what makes outages visible on ``/admin/metrics``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import CircuitOpenError, TimeoutExceeded
from repro.util.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Breaker states (gauge values exported per endpoint).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"
_STATE_VALUES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first call too, so ``1`` means "no
    retries".  The delay before retry *n* (1-based) is::

        min(max_delay, base_delay * multiplier**(n-1)) * (1 ± jitter)

    where the jitter factor comes from ``random.Random(seed)`` — fully
    deterministic for a given seed.  Only exceptions matching
    ``retry_on`` are retried; everything else propagates immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int | None = None
    retry_on: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)

    def delays(self) -> Iterator[float]:
        """The backoff schedule (``max_attempts - 1`` delays, seconds)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
            if self.jitter:
                delay *= 1 + self.jitter * (2 * rng.random() - 1)
            yield max(0.0, delay)


@dataclass(frozen=True)
class Timeout:
    """Per-attempt wall-clock bound; ``None``/``0`` disables the guard."""

    seconds: float | None = None

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run *fn*, raising :class:`TimeoutExceeded` on overrun."""
        if not self.seconds:
            return fn(*args, **kwargs)
        outcome: dict[str, Any] = {}
        done = threading.Event()

        def target() -> None:
            try:
                outcome["value"] = fn(*args, **kwargs)
            except BaseException as exc:  # re-raised on the caller's thread
                outcome["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(
            target=target, name="resilience-timeout", daemon=True
        )
        worker.start()
        if not done.wait(self.seconds):
            raise TimeoutExceeded(
                f"call exceeded {self.seconds:g}s", seconds=self.seconds
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]


class CircuitBreaker:
    """Closed/open/half-open breaker guarding one endpoint.

    Thread-safe; time comes from the injected clock's monotonic source
    so tests drive state transitions with :class:`ManualClock.advance`.
    """

    def __init__(
        self,
        endpoint: str = "",
        *,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.endpoint = endpoint or "default"
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._gauge = None
        if obs is not None:
            self._gauge = obs.metrics.gauge(
                "resilience_breaker_state",
                "Circuit breaker state (0 closed, 1 open, 2 half-open)",
                labels=("endpoint",),
            ).labels(endpoint=self.endpoint)
            self._gauge.set(_STATE_VALUES[CLOSED])

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def _effective_state(self) -> str:
        """Current state, promoting open → half-open after the cooldown."""
        if self._state == OPEN:
            elapsed = self._clock.monotonic() - self._opened_at
            if elapsed >= self.cooldown:
                self._set_state(HALF_OPEN)
                self._probes_in_flight = 0
        return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        if self._gauge is not None:
            self._gauge.set(_STATE_VALUES[state])

    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return
                raise CircuitOpenError(
                    f"breaker {self.endpoint!r} is half-open and its probe "
                    "slots are taken",
                    endpoint=self.endpoint,
                )
            remaining = self.cooldown - (self._clock.monotonic() - self._opened_at)
            raise CircuitOpenError(
                f"breaker {self.endpoint!r} is open "
                f"({max(0.0, remaining):.1f}s of cooldown left)",
                endpoint=self.endpoint,
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probes_in_flight = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                # The probe failed: back to a full cooldown.
                self._probes_in_flight = 0
                self._opened_at = self._clock.monotonic()
                self._set_state(OPEN)
                return
            self._failures += 1
            if state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock.monotonic()
                self._set_state(OPEN)

    def reset(self) -> None:
        """Force-close (admin action)."""
        self.record_success()


class BreakerRegistry:
    """Shared circuit breakers, one per endpoint name.

    The facade owns one registry so the importer and the application
    layer reuse the same breaker for the same endpoint, and the admin
    page can list every breaker's state.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
    ):
        self._clock = clock or SystemClock()
        self._obs = obs
        self._defaults = dict(
            failure_threshold=failure_threshold,
            cooldown=cooldown,
            half_open_probes=half_open_probes,
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, endpoint: str, **overrides: Any) -> CircuitBreaker:
        """The breaker guarding *endpoint* (created on first use)."""
        with self._lock:
            existing = self._breakers.get(endpoint)
            if existing is not None:
                return existing
            settings = {**self._defaults, **overrides}
            created = CircuitBreaker(
                endpoint, clock=self._clock, obs=self._obs, **settings
            )
            self._breakers[endpoint] = created
            return created

    def states(self) -> dict[str, str]:
        """Endpoint → state for the admin console."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: b.state for name, b in sorted(breakers.items())}


@dataclass(frozen=True)
class ResiliencePolicy:
    """A retry/timeout/breaker bundle applied by :func:`resilient`.

    Any part may be ``None``; ``resilient(ResiliencePolicy())`` is a
    transparent pass-through (plus call accounting).
    """

    retry: RetryPolicy | None = None
    timeout: Timeout | None = None
    breaker: CircuitBreaker | None = None
    give_up_on: tuple[type[BaseException], ...] = field(default_factory=tuple)

    def with_breaker(self, breaker: CircuitBreaker | None) -> "ResiliencePolicy":
        return ResiliencePolicy(
            retry=self.retry,
            timeout=self.timeout,
            breaker=breaker,
            give_up_on=self.give_up_on,
        )


def resilient(
    policy: ResiliencePolicy,
    *,
    site: str = "call",
    obs: "Observability | None" = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Wrap a callable with *policy*; returns a decorator.

    The wrapped call:

    1. asks the breaker for admission (fail fast while open);
    2. runs the attempt under the timeout guard;
    3. on a retryable failure, records it with the breaker, sleeps the
       policy's deterministic backoff delay, and tries again — unless
       the breaker opened meanwhile;
    4. when attempts are exhausted the *original* final exception is
       re-raised (so callers' ``except ProviderError`` /
       ``except ConnectorError`` clauses keep working) after counting
       ``resilience_gave_up_total``.

    Exceptions listed in ``policy.give_up_on`` are never retried even if
    ``retry_on`` matches, and are **not** counted against the breaker —
    they indicate a bad request, not a bad endpoint.
    """
    timeout = policy.timeout or Timeout(None)
    retry = policy.retry
    m_calls = m_retries = m_gave_up = None
    if obs is not None:
        m_calls = obs.metrics.counter(
            "resilience_calls_total",
            "Calls entering a resilient() wrapper",
            labels=("site", "outcome"),
        )
        m_retries = obs.metrics.counter(
            "resilience_retries_total",
            "Retry attempts after a failed call",
            labels=("site",),
        ).labels(site=site)
        m_gave_up = obs.metrics.counter(
            "resilience_gave_up_total",
            "Calls that exhausted every retry attempt",
            labels=("site",),
        ).labels(site=site)

    def count(outcome: str) -> None:
        if m_calls is not None:
            m_calls.labels(site=site, outcome=outcome).inc()

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        def attempt_loop(span: Any, *args: Any, **kwargs: Any) -> Any:
            delays = retry.delays() if retry is not None else iter(())
            attempt = 0
            while True:
                attempt += 1
                if policy.breaker is not None:
                    try:
                        policy.breaker.allow()
                    except CircuitOpenError:
                        count("rejected")
                        if span is not None:
                            span.set(attempts=attempt, outcome="rejected")
                        raise
                try:
                    result = timeout.call(fn, *args, **kwargs)
                except BaseException as exc:
                    fatal = bool(policy.give_up_on) and isinstance(
                        exc, policy.give_up_on
                    )
                    if not fatal and policy.breaker is not None:
                        policy.breaker.record_failure()
                    retryable = (
                        not fatal
                        and retry is not None
                        and retry.retryable(exc)
                    )
                    delay = next(delays, None) if retryable else None
                    if delay is None:
                        if m_gave_up is not None and attempt > 1:
                            m_gave_up.inc()
                        count("error")
                        if span is not None:
                            span.set(attempts=attempt, outcome="error")
                        raise
                    if m_retries is not None:
                        m_retries.inc()
                    if obs is not None:
                        obs.log.log(
                            "resilience.retry",
                            site=site,
                            attempt=attempt,
                            delay=delay,
                            error=str(exc),
                        )
                    if delay > 0:
                        sleep(delay)
                    continue
                if policy.breaker is not None:
                    policy.breaker.record_success()
                count("ok")
                if span is not None:
                    span.set(attempts=attempt, outcome="ok")
                return result

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            if obs is None:
                return attempt_loop(None, *args, **kwargs)
            with obs.tracer.span("resilience.call", site=site) as span:
                return attempt_loop(span, *args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped

    return decorator
