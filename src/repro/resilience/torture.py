"""Crash-point torture: kill the database at every WAL fault site.

For each durability mode × WAL fault site the driver runs a small commit
workload, injects a :class:`~repro.errors.CrashPoint` at the site, then
*abandons* the database object without closing it — exactly what a
killed process leaves behind — reopens the directory, recovers, and
checks the recovery invariants.

The invariants encode commit *uncertainty* honestly.  A fault is
classified by where in the append path it fires:

``wal.append``
    Before any byte is written.  The commit rolls back in memory and
    the transaction must be **absent** after recovery.
``wal.write`` (torn), ``wal.after_write``, ``wal.after_fsync``
    The commit raised, but part or all of the record may have reached
    disk — the classic commit-uncertainty window.  The transaction is
    **uncertain**: recovery may surface it or not, and either answer is
    correct as long as the record that does appear is intact.

Checked after every crash:

* no lost committed rows — every commit that *returned successfully*
  is present after recovery (``committed ⊆ present``);
* no invented rows — everything present was either committed or
  uncertain (``present ⊆ committed ∪ uncertain``);
* no resurrected aborted rows — deliberately rolled-back transactions
  never reappear;
* ``verify_integrity`` reports a clean store;
* the healed log accepts new commits, and a second recovery over the
  same directory reproduces the identical row set.

Note on ``buffered`` durability: commits flush to the OS but skip
fsync, so the ``wal.after_fsync`` site is never reached there; the case
still runs (and recovery is still verified) with ``fired=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CrashPoint, FaultInjected
from repro.resilience.faults import (
    Fault,
    FaultPlan,
    INGEST_SITES,
    WAL_SITES,
    inject,
    install,
)
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType

TABLE = "torture_rows"

#: One spec per durability family; group gets a short window so the
#: driver stays fast.
DEFAULT_MODES = ("always", "group:4:32", "buffered")


def _schema() -> TableSchema:
    return TableSchema(
        name=TABLE,
        columns=[
            Column("id", ColumnType.INT, primary_key=True),
            Column("value", ColumnType.TEXT, nullable=False),
        ],
    )


def _open(directory: Path, mode: str) -> Database:
    db = Database(directory, durability=mode)
    db.create_table(_schema())
    return db


def _deliberate_rollback(db: Database, row_id: int, aborted: list[int]) -> None:
    """A transaction the application itself abandons — must never recover."""
    txn = db.transaction()
    txn.insert(TABLE, {"id": row_id, "value": f"aborted-{row_id}"})
    txn.rollback()
    aborted.append(row_id)


@dataclass
class CaseResult:
    """Outcome of one (durability mode, fault site) crash case."""

    mode: str
    site: str
    fired: bool
    committed: list[int]
    uncertain: list[int]
    aborted: list[int]
    present: list[int]
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        fired = "crash" if self.fired else "site not reached"
        return (
            f"[{status}] {self.mode:>12} × {self.site:<15} ({fired}): "
            f"{len(self.committed)} committed, {len(self.uncertain)} uncertain, "
            f"{len(self.aborted)} aborted, {len(self.present)} recovered"
            + ("" if self.ok else f" — {'; '.join(self.problems)}")
        )


@dataclass
class TortureReport:
    """Every case of one torture run."""

    seed: int
    commits: int
    cases: list[CaseResult]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def failures(self) -> list[CaseResult]:
        return [case for case in self.cases if not case.ok]

    def summary(self) -> str:
        lines = [
            f"torture: seed={self.seed} commits={self.commits} "
            f"cases={len(self.cases)} failures={len(self.failures())}"
        ]
        lines.extend(case.describe() for case in self.cases)
        return "\n".join(lines)


def run_torture(
    base_dir: "str | Path",
    *,
    modes: "tuple[str, ...]" = DEFAULT_MODES,
    sites: "tuple[str, ...]" = WAL_SITES,
    commits: int = 6,
    seed: int = 2010,
) -> TortureReport:
    """Run every mode × site crash case under *base_dir*; never raises
    for an invariant violation — failures land in the report."""
    if commits < 3:
        raise ValueError("commits must be >= 3 so the fault step is reachable")
    base = Path(base_dir)
    cases: list[CaseResult] = []
    offset = 0
    for mode in modes:
        for site in sites:
            slug = f"{mode.replace(':', '_')}-{site.replace('.', '_')}"
            cases.append(
                run_case(
                    base / slug,
                    mode=mode,
                    site=site,
                    commits=commits,
                    seed=seed,
                    offset=offset,
                )
            )
            offset += 1
    return TortureReport(seed=seed, commits=commits, cases=cases)


def run_case(
    directory: "str | Path",
    *,
    mode: str,
    site: str,
    commits: int,
    seed: int,
    offset: int = 0,
) -> CaseResult:
    """One crash case: workload → injected kill → recovery → invariants."""
    directory = Path(directory)
    committed: list[int] = []
    uncertain: list[int] = []
    aborted: list[int] = []

    db = _open(directory, mode)
    next_id = 1
    # Warm-up: a durable baseline and a checkpoint, so recovery has to
    # combine snapshot load with WAL replay, then a deliberate rollback
    # that must never resurrect.
    for _ in range(2):
        db.insert(TABLE, {"id": next_id, "value": f"commit-{next_id}"})
        committed.append(next_id)
        next_id += 1
    db.checkpoint()
    _deliberate_rollback(db, 1000 + offset * 10, aborted)

    # The scripted kill: torn write at the write site (exercising
    # torn-tail healing), a CrashPoint everywhere else.  at_call is
    # seed-derived but always within the workload's reach.
    kind = "torn_write" if site == "wal.write" else "error"
    fault = (
        Fault(site, kind="torn_write", at_call=1 + (seed + offset) % 2, fraction=0.6)
        if kind == "torn_write"
        else Fault(site, kind="error", at_call=1 + (seed + offset) % 2, error=CrashPoint)
    )
    plan = FaultPlan([fault], seed=seed)
    with inject(plan):
        for step in range(commits):
            if step == 1:
                _deliberate_rollback(db, 1001 + offset * 10, aborted)
            row_id = next_id
            next_id += 1
            try:
                db.insert(TABLE, {"id": row_id, "value": f"commit-{row_id}"})
            except FaultInjected:
                # The "process" died mid-commit.  Pre-write faults are
                # clean aborts; everything later is uncertain.
                (aborted if site == "wal.append" else uncertain).append(row_id)
                break
            committed.append(row_id)
    fired = plan.fired() > 0
    # Crash simulation: drop the handle WITHOUT close() — close would
    # drain batches and fsync, defeating the whole exercise.
    del db

    problems: list[str] = []
    recovered = _open(directory, mode)
    recovered.recover()
    present = sorted(row["id"] for row in recovered.rows(TABLE))
    present_set = set(present)
    allowed = set(committed) | set(uncertain)

    lost = [i for i in committed if i not in present_set]
    if lost:
        problems.append(f"lost committed rows {lost}")
    invented = [i for i in present if i not in allowed]
    if invented:
        problems.append(f"recovered rows never committed {invented}")
    resurrected = [i for i in aborted if i in present_set]
    if resurrected:
        problems.append(f"resurrected aborted rows {resurrected}")
    integrity = recovered.verify_integrity()
    if integrity:
        problems.append(f"integrity violations {integrity}")

    # The healed log must accept appends again.
    epilogue_id = 900_000 + offset
    try:
        recovered.insert(TABLE, {"id": epilogue_id, "value": "post-recovery"})
    except Exception as exc:
        problems.append(f"post-recovery commit failed: {exc}")
    recovered.close()

    # A second recovery over the same directory must reproduce the
    # exact row set (replay is idempotent, the tail is truly healed).
    again = _open(directory, mode)
    again.recover()
    expected = sorted(present_set | {epilogue_id})
    second = sorted(row["id"] for row in again.rows(TABLE))
    if second != expected:
        problems.append(
            f"second recovery diverged: expected {expected}, got {second}"
        )
    again.close()

    return CaseResult(
        mode=mode,
        site=site,
        fired=fired,
        committed=committed,
        uncertain=uncertain,
        aborted=aborted,
        present=present,
        problems=problems,
    )


#: The cross-shard crash cases `repro torture --shards` runs.  Each is
#: (name, fault site, at_call, expectation after recovery) — ``absent``
#: while the coordinator decision is not yet durable (presumed abort),
#: ``present`` once it is (roll forward), always atomically.
SHARD_CASES = (
    ("prepare-partial", "2pc.prepare", 2, "absent"),
    ("decide-lost", "2pc.decide", 1, "absent"),
    ("decide-torn-tail", "2pc.decide", 1, "absent"),
    ("commit-none-published", "2pc.commit", 1, "present"),
    ("commit-half-published", "2pc.commit", 2, "present"),
)


def run_shard_torture(
    base_dir: "str | Path",
    *,
    shards: int = 2,
    seed: int = 2010,
) -> TortureReport:
    """Kill a cross-shard commit at every 2PC crash point.

    Each case runs a two-participant transaction (one row per shard)
    into an injected :class:`CrashPoint` at one 2PC site, abandons the
    coordinator without closing it, reopens the directory and recovers.
    The recovery invariants are sharper than the single-WAL ones because
    2PC resolution is *deterministic*, not merely uncertain:

    * **atomicity** — the transaction's rows are present on all of its
      shards or on none of them, never a subset;
    * **determinism** — a crash before the coordinator's decision record
      is durable recovers to *absent* (presumed abort); a crash after it
      recovers to *present* (roll forward), including when only some
      participants had published;
    * the coordinator decision log heals a torn tail like any WAL;
    * ``committed ⊆ present ⊆ committed ∪ uncertain`` still holds for
      the surrounding single-shard traffic;
    * a second recovery over the same directory reproduces the same
      rows without consulting the decision log (resolutions are made
      durable in the shard WALs themselves).
    """
    from repro.storage.sharding import ShardedDatabase

    if shards < 2:
        raise ValueError("shard torture needs >= 2 shards for cross-shard txns")
    base = Path(base_dir)
    cases: list[CaseResult] = []

    def open_sharded(directory: Path) -> ShardedDatabase:
        sdb = ShardedDatabase(directory, shards=shards, durability="always")
        sdb.create_table(_schema())
        return sdb

    for offset, (name, site, at_call, expectation) in enumerate(SHARD_CASES):
        directory = base / name
        committed: list[int] = []
        uncertain: list[int] = []
        aborted: list[int] = []
        problems: list[str] = []

        sdb = open_sharded(directory)
        # Two pks that land on different shards — the cross-shard pair.
        pk_a = next(i for i in range(1, 1000) if sdb.shard_index(i) == 0)
        pk_b = next(i for i in range(1, 1000) if sdb.shard_index(i) == 1)
        # Warm-up: durable single-shard commits on both shards, plus a
        # deliberate rollback that must never resurrect.
        for pk in (pk_a + 100, pk_b + 100):
            sdb.insert(TABLE, {"id": pk, "value": f"commit-{pk}"})
            committed.append(pk)
        txn = sdb.transaction()
        txn.insert(TABLE, {"id": 5000 + offset, "value": "aborted"})
        txn.rollback()
        aborted.append(5000 + offset)

        plan = FaultPlan(
            [Fault(site, kind="error", at_call=at_call, error=CrashPoint)],
            seed=seed,
        )
        fired = False
        with inject(plan):
            txn = sdb.transaction()
            txn.insert(TABLE, {"id": pk_a, "value": f"xs-{pk_a}"})
            txn.insert(TABLE, {"id": pk_b, "value": f"xs-{pk_b}"})
            try:
                txn.commit()
                committed.extend([pk_a, pk_b])
            except FaultInjected:
                fired = True
                uncertain.extend([pk_a, pk_b])
        if name == "decide-torn-tail":
            # A torn coordinator record on top of the crash: the log
            # must heal its tail exactly like a shard WAL does.
            log_path = directory / "coordinator.log"
            with open(log_path, "a", encoding="utf-8") as fh:
                fh.write('deadbeef {"kind": "decision", "gt')
        # Crash simulation: abandon without close().
        del txn
        del sdb

        recovered = open_sharded(directory)
        recovered.recover()
        present = sorted(
            row["id"] for row in recovered.rows(TABLE)
        )
        present_set = set(present)

        pair_present = [pk in present_set for pk in (pk_a, pk_b)]
        if pair_present[0] != pair_present[1]:
            problems.append(
                f"atomicity violated: pk {pk_a} on shard 0 "
                f"{'present' if pair_present[0] else 'absent'} but pk "
                f"{pk_b} on shard 1 "
                f"{'present' if pair_present[1] else 'absent'}"
            )
        if fired:
            if expectation == "absent" and any(pair_present):
                problems.append(
                    "presumed-abort violated: cross-shard rows recovered "
                    "without a durable decision"
                )
            if expectation == "present" and not all(pair_present):
                problems.append(
                    "roll-forward violated: decision was durable but "
                    "cross-shard rows are missing"
                )
        lost = [i for i in committed if i not in present_set]
        if lost:
            problems.append(f"lost committed rows {lost}")
        allowed = set(committed) | set(uncertain)
        invented = [i for i in present if i not in allowed]
        if invented:
            problems.append(f"recovered rows never committed {invented}")
        resurrected = [i for i in aborted if i in present_set]
        if resurrected:
            problems.append(f"resurrected aborted rows {resurrected}")
        integrity = recovered.verify_integrity()
        if integrity:
            problems.append(f"integrity violations {integrity}")
        # The healed deployment must accept new cross-shard commits.
        try:
            with recovered.transaction() as epilogue:
                epilogue.insert(
                    TABLE, {"id": pk_a + 200, "value": "post-recovery"}
                )
                epilogue.insert(
                    TABLE, {"id": pk_b + 200, "value": "post-recovery"}
                )
        except Exception as exc:
            problems.append(f"post-recovery cross-shard commit failed: {exc}")
        recovered.close()

        # Second recovery: resolutions were made durable in the shard
        # WALs, so the same rows come back even though the decision log
        # was reset after the first recovery.
        again = open_sharded(directory)
        again.recover()
        expected = sorted(present_set | {pk_a + 200, pk_b + 200})
        second = sorted(row["id"] for row in again.rows(TABLE))
        if second != expected:
            problems.append(
                f"second recovery diverged: expected {expected}, got {second}"
            )
        again.close()

        cases.append(
            CaseResult(
                mode=f"sharded:{shards}",
                site=name,
                fired=fired,
                committed=committed,
                uncertain=uncertain,
                aborted=aborted,
                present=present,
                problems=problems,
            )
        )
    return TortureReport(seed=seed, commits=len(SHARD_CASES), cases=cases)


def run_replication_torture(
    base_dir: "str | Path",
    *,
    commits: int = 24,
    seed: int = 2010,
    replicas: int = 2,
    confirm_timeout: float = 5.0,
) -> TortureReport:
    """Kill the primary mid-stream, promote, verify nothing confirmed is lost.

    A primary publishes its WAL to *replicas* followers while a writer
    commits.  Each commit is classified the way a replication-aware
    client would see it:

    * **committed** — a replica confirmed applying it (``wait_for``
      returned) before the crash.  Because every replica applies a
      *prefix* of the primary's history and promotion picks the
      maximum-applied replica, one confirmation from *any* replica
      guarantees survival.
    * **uncertain** — the primary acknowledged it but no replica
      confirmed before the publisher was killed.  It raced the crash
      onto the wire: the promoted replica may or may not have it, and
      either answer is correct.

    The last quarter of the workload is deliberately left unconfirmed
    so some commits genuinely race the kill.  After abandoning the
    primary (no ``close()`` — a dead process flushes nothing), the
    most-caught-up replica drains, promotes, and must satisfy the same
    invariants as the crash-point torture: ``committed ⊆ present ⊆
    committed ∪ uncertain``, aborted transactions never resurrect,
    integrity is clean, and the promoted database accepts new commits.
    """
    from repro.errors import ReplicaLagExceeded
    from repro.replication import Replica, ReplicationPublisher

    if commits < 8:
        raise ValueError("commits must be >= 8 so the race window exists")
    base = Path(base_dir)
    committed: list[int] = []
    uncertain: list[int] = []
    aborted: list[int] = []
    problems: list[str] = []

    primary = _open(base / "primary", "always")
    publisher = ReplicationPublisher(primary).start()
    followers = [
        Replica(
            _open(base / f"replica-{i}", "always"),
            ("127.0.0.1", publisher.port),
            name=f"r{i}",
        ).start()
        for i in range(replicas)
    ]

    _deliberate_rollback(primary, 5000 + seed % 100, aborted)
    kill_at = commits - max(3, commits // 4)
    for step in range(commits):
        row_id = step + 1
        primary.insert(TABLE, {"id": row_id, "value": f"commit-{row_id}"})
        seq = primary.replication_start_point()[0]
        if step >= kill_at:
            # Unconfirmed tail: these race the kill onto the wire.
            uncertain.append(row_id)
            continue
        confirmed = False
        for follower in followers:
            try:
                follower.wait_for(seq, timeout=confirm_timeout)
                confirmed = True
                break
            except ReplicaLagExceeded:
                continue
        (committed if confirmed else uncertain).append(row_id)
    publisher.kill()
    # Crash simulation: abandon the primary without close() — a killed
    # process drains and flushes nothing for its replicas' benefit.
    del primary

    best = max(followers, key=lambda r: r.applied_seq)
    promoted = best.promote(drain_timeout=2.0)
    survivors = [f for f in followers if f is not best]
    for follower in survivors:
        follower.stop()

    present = sorted(row["id"] for row in promoted.rows(TABLE))
    present_set = set(present)
    allowed = set(committed) | set(uncertain)
    lost = [i for i in committed if i not in present_set]
    if lost:
        problems.append(f"promoted replica lost confirmed commits {lost}")
    invented = [i for i in present if i not in allowed]
    if invented:
        problems.append(f"promoted replica has rows never committed {invented}")
    resurrected = [i for i in aborted if i in present_set]
    if resurrected:
        problems.append(f"promoted replica resurrected aborted rows {resurrected}")
    # The prefix property that makes single-confirmation safe: no
    # survivor may be ahead of the replica that was promoted.
    ahead = [f.name for f in survivors if f.applied_seq > best.applied_seq]
    if ahead:
        problems.append(f"promotion skipped more-caught-up replicas {ahead}")
    integrity = promoted.verify_integrity()
    if integrity:
        problems.append(f"integrity violations {integrity}")
    epilogue_id = 900_000 + seed % 100
    try:
        promoted.insert(TABLE, {"id": epilogue_id, "value": "post-promote"})
    except Exception as exc:
        problems.append(f"post-promote commit failed: {exc}")

    if problems:
        # Flight recorder: an invariant failure is exactly the state an
        # operator needs frozen — capture it before anything closes.
        from repro.obs import collect_debug_bundle, write_debug_bundle

        try:
            bundle = collect_debug_bundle(
                obs=promoted.obs,
                db=promoted,
                replicas=survivors,
                note=(
                    f"replication torture failure seed={seed}: "
                    + "; ".join(problems)
                ),
            )
            write_debug_bundle(bundle, base, prefix="torture-failure")
        except Exception:  # pragma: no cover - the recorder must not mask
            pass

    for follower in survivors:
        follower.db.close()
    promoted.close()

    case = CaseResult(
        mode="replication",
        site="kill_primary",
        fired=True,
        committed=committed,
        uncertain=uncertain,
        aborted=aborted,
        present=present,
        problems=problems,
    )
    return TortureReport(seed=seed, commits=commits, cases=[case])


#: The synthetic site label of the ingest case that also kills and
#: restarts the *database* (not just the workers) while leases are held.
INGEST_RESTART_SITE = "db.restart"


def run_ingest_torture(
    base_dir: "str | Path",
    *,
    sites: "tuple[str, ...]" = INGEST_SITES,
    jobs: int = 4,
    files_per_job: int = 3,
    seed: int = 2010,
    lease_seconds: float = 0.75,
    drain_timeout: float = 60.0,
) -> TortureReport:
    """Kill queue workers at every lease-protocol site mid-import.

    Each case enqueues *jobs* file imports as background jobs, starts a
    two-worker pool with a short visibility timeout, and injects a
    :class:`CrashPoint` at one fault site — the worker thread dies with
    no nack and no cleanup, exactly what ``kill -9`` leaves behind.  A
    fresh pool (or, in the final :data:`INGEST_RESTART_SITE` case, a
    fresh *process* over the reopened durable database) then drains the
    backlog and the driver asserts the at-least-once / effects-once
    contract:

    * **no lost jobs** — every enqueued job ends ``done``; expired
      leases were redelivered, nothing stayed ``leased``/``pending``;
    * **no double-applied effects** — exactly one workunit per import
      job key, exactly ``files_per_job`` resources on it, one active
      import workflow instance, and the global resource count equals
      ``jobs x files_per_job``;
    * **compensation invariants** — every stored file's bytes re-hash to
      the recorded checksum (no partial ingest survived), and no orphan
      store directory or resource row outlives its workunit.

    Site semantics exercised: ``queue.claim`` dies before any lease is
    written; ``worker.run`` dies after the claim, before the handler;
    ``dataimport.fetch``/``dataimport.ingest`` die mid-import leaving a
    partial workunit for redelivery to compensate; ``queue.ack`` is the
    torn-ack (work complete, job still leased — redelivery must resume,
    not re-import); ``queue.heartbeat`` kills the lease extender under a
    slowed fetch.  The restart case kills both workers at ``worker.run``
    and then abandons the whole facade without ``close()`` — the job
    table (leases included) must come back from WAL recovery and expire
    by wall clock.
    """
    if jobs < 1 or files_per_job < 1:
        raise ValueError("ingest torture needs at least one job and one file")
    base = Path(base_dir)
    cases: list[CaseResult] = []
    for offset, site in enumerate(sites):
        cases.append(
            _run_ingest_case(
                base / site.replace(".", "_"),
                site=site,
                restart=False,
                jobs=jobs,
                files_per_job=files_per_job,
                seed=seed,
                lease_seconds=lease_seconds,
                drain_timeout=drain_timeout,
                offset=offset,
            )
        )
    cases.append(
        _run_ingest_case(
            base / "db_restart",
            site=INGEST_RESTART_SITE,
            restart=True,
            jobs=jobs,
            files_per_job=files_per_job,
            seed=seed,
            lease_seconds=lease_seconds,
            drain_timeout=drain_timeout,
            offset=len(sites),
        )
    )
    return TortureReport(seed=seed, commits=jobs, cases=cases)


def _run_ingest_case(
    directory: Path,
    *,
    site: str,
    restart: bool,
    jobs: int,
    files_per_job: int,
    seed: int,
    lease_seconds: float,
    drain_timeout: float,
    offset: int,
) -> CaseResult:
    """One worker-kill case: enqueue → kill → (restart) → drain → check."""
    import time

    from repro.dataimport.filesystem import LocalFileSystemProvider
    from repro.dataimport.importer import IMPORT_JOB_KEY_PARAM, IMPORT_WORKFLOW
    from repro.dataimport.store import sha256_of
    from repro.facade import BFabric

    directory = Path(directory)
    problems: list[str] = []

    # Source corpus: deterministic bytes so checksums are reproducible.
    source = directory / "source"
    source.mkdir(parents=True, exist_ok=True)
    file_names = [f"run-{offset:02d}-{i:02d}.raw" for i in range(files_per_job)]
    checksums: dict[str, str] = {}
    for index, name in enumerate(file_names):
        (source / name).write_bytes(
            f"ingest torture seed={seed} site={site} file={name}\n".encode()
            * (24 + index)
        )
        checksums[name] = sha256_of(source / name)

    # The restart case needs a durable deployment to reopen; the others
    # run in memory (the queue semantics under test are identical).
    data_dir = directory / "system"
    provider_name = "torture-src"

    def open_system() -> "BFabric":
        return BFabric(
            data_dir if restart else None,
            durability="always" if restart else None,
        )

    def add_provider(system: "BFabric") -> None:
        system.imports.register_provider(
            LocalFileSystemProvider(provider_name, source)
        )

    system = open_system()
    add_provider(system)
    admin = system.bootstrap()
    project = system.projects.create(admin, f"ingest torture {site}")

    job_keys = [f"case{offset}-job{i}" for i in range(jobs)]
    job_ids = [
        system.imports.enqueue_import(
            admin,
            project.id,
            provider_name,
            file_names,
            workunit_name=f"torture import {key}",
            job_key=key,
        ).id
        for key in job_keys
    ]

    # The scripted kills.  Every site is hit once per job delivery, so
    # at_call 1 and 2 land in the two workers' first passes.  The
    # heartbeat only beats jobs that outlive its interval, so that case
    # slows every fetch down; the single heartbeat thread dying is the
    # whole kill (kills_expected=1).
    fault_site = "worker.run" if site == INGEST_RESTART_SITE else site
    kills_expected = 1 if site == "queue.heartbeat" else 2
    faults = [
        Fault(fault_site, kind="error", at_call=call, error=CrashPoint)
        for call in range(1, kills_expected + 1)
    ]
    if site == "queue.heartbeat":
        faults.append(
            Fault(
                "dataimport.fetch",
                kind="latency",
                probability=1.0,
                times=-1,
                latency_s=0.2,
            )
        )

    plan = FaultPlan(faults, seed=seed)
    install(plan)
    try:
        pool = system.start_workers(
            workers=2,
            lease_seconds=lease_seconds,
            name=f"torture-{offset}",
        )
        kill_deadline = time.monotonic() + 15.0
        while (
            pool.killed_workers < kills_expected
            and time.monotonic() < kill_deadline
        ):
            time.sleep(0.02)
    finally:
        install(None)
    killed = pool.killed_workers
    fired = killed >= kills_expected
    if not fired:
        problems.append(
            f"kill never landed at {fault_site}: {killed} of "
            f"{kills_expected} expected deaths"
        )

    if restart:
        # Let the dying workers actually exit before the directory is
        # reopened — a real SIGKILL stops all threads at once; here the
        # CrashPoint has to unwind each one.
        exit_deadline = time.monotonic() + 10.0
        while pool.alive_count() > 0 and time.monotonic() < exit_deadline:
            time.sleep(0.02)
        if pool.alive_count() > 0:
            problems.append("killed workers failed to exit before restart")
        # Crash simulation: abandon the facade WITHOUT close() — close
        # would drain pools and flush the WAL, defeating the exercise.
        # The job rows (leases included) must come back from recovery.
        system.queue.detach_pool(pool)
        del pool
        del system
        system = open_system()
        system.recover()
        add_provider(system)
        admin = system.bootstrap()
        system.start_workers(
            workers=2,
            lease_seconds=lease_seconds,
            name=f"torture-{offset}-reborn",
        )
    elif pool.alive_count() < 2:
        # Dead workers stay dead; a fresh pool takes over the backlog
        # (expired leases redeliver to it).
        pool.kill()
        system.start_workers(
            workers=2,
            lease_seconds=lease_seconds,
            name=f"torture-{offset}-reborn",
        )

    # Drain: every job must reach a terminal state inside the deadline.
    drain_deadline = time.monotonic() + drain_timeout
    for job_id in job_ids:
        remaining = max(0.1, drain_deadline - time.monotonic())
        system.queue.wait(job_id, timeout=remaining)
    system.stop_workers(drain=True, timeout=10.0)

    # -- invariants ------------------------------------------------------------

    present: list[int] = []
    stuck: list[str] = []
    for job_id in job_ids:
        job = system.queue.get(job_id)
        if job.state == "done":
            present.append(job_id)
        else:
            stuck.append(f"job {job_id} {job.state} ({job.error or 'no error'})")
    if stuck:
        problems.append("jobs lost or dead: " + "; ".join(stuck))
    status = system.queue.status()
    if status["depth"] != 0:
        problems.append(f"queue not drained: depth {status['depth']}")

    workunit_repo = system.registry.repository_for("workunit")
    all_workunits = workunit_repo.find(project_id=project.id)
    keyed: dict[str, list] = {}
    for workunit in all_workunits:
        key = (workunit.parameters or {}).get(IMPORT_JOB_KEY_PARAM)
        if key is not None:
            keyed.setdefault(key, []).append(workunit)
    stray = sorted(set(keyed) - set(job_keys))
    if stray:
        problems.append(f"workunits with unknown job keys {stray}")
    for key in job_keys:
        hits = keyed.get(key, [])
        if len(hits) != 1:
            problems.append(
                f"job {key!r} left {len(hits)} workunits (effects applied "
                f"{len(hits)} times, want exactly once)"
            )
            continue
        workunit = hits[0]
        resources = system.workunits.resources_of(admin, workunit.id)
        names = sorted(resource.name for resource in resources)
        if names != sorted(file_names):
            problems.append(
                f"workunit {workunit.id} ({key}) has resources {names}, "
                f"want {sorted(file_names)}"
            )
            continue
        for resource in resources:
            if resource.checksum != checksums[resource.name]:
                problems.append(
                    f"resource {resource.id} ({resource.name}) checksum "
                    "differs from the source file (partial ingest survived)"
                )
            elif not system.store.verify(resource.uri, resource.checksum):
                problems.append(
                    f"stored bytes for {resource.uri} missing or corrupt"
                )
        instances = [
            instance
            for instance in system.workflow.for_entity("workunit", workunit.id)
            if instance.definition == IMPORT_WORKFLOW
            and instance.status == "active"
        ]
        if len(instances) != 1:
            problems.append(
                f"workunit {workunit.id} ({key}) has {len(instances)} active "
                "import workflows, want exactly 1"
            )

    total_resources = system.db.count("data_resource")
    expected_resources = jobs * files_per_job
    if total_resources != expected_resources:
        problems.append(
            f"{total_resources} resource rows for {expected_resources} "
            "imported files (lost or double-applied effects)"
        )
    live_ids = {row["id"] for row in system.db.rows("workunit")}
    orphan_rows = [
        row["id"]
        for row in system.db.rows("data_resource")
        if row["workunit_id"] not in live_ids
    ]
    if orphan_rows:
        problems.append(f"resource rows orphaned by compensation {orphan_rows}")
    for child in sorted(system.store.root.iterdir()):
        if not (child.is_dir() and child.name.startswith("workunit_")):
            continue
        workunit_id = int(child.name.split("_", 1)[1])
        if workunit_id not in live_ids:
            problems.append(f"orphan store directory {child.name}")

    system.close()
    return CaseResult(
        mode="ingest+restart" if restart else "ingest",
        site=site,
        fired=fired,
        committed=list(job_ids),
        uncertain=[],
        aborted=[],
        present=present,
        problems=problems,
    )
