"""Full-text search (paper §2, Full-text Search).

"A search may vary from certain attributes of certain objects to the
content of readable attachments and data resources."  The engine:

* an incremental inverted index with TF-IDF ranking;
* quick search (one box, all object types) and advanced search (a small
  query language with field scoping, type filters, negation, OR);
* per-session search history and persistent saved queries, re-executed
  against live data;
* result export to CSV/TSV.
"""

from repro.search.tokenizer import tokenize
from repro.search.index import InvertedIndex, Document
from repro.search.query import SearchQuery, parse_query
from repro.search.engine import SearchEngine, SearchResult
from repro.search.history import SearchHistory, SavedQueryStore, SavedQuery
from repro.search.export import export_csv, export_tsv

__all__ = [
    "tokenize",
    "InvertedIndex",
    "Document",
    "SearchQuery",
    "parse_query",
    "SearchEngine",
    "SearchResult",
    "SearchHistory",
    "SavedQueryStore",
    "SavedQuery",
    "export_csv",
    "export_tsv",
]
