"""The search service: evaluation, access control, snippets."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.obs import Observability
from repro.search.index import Document, InvertedIndex
from repro.search.query import SearchQuery, parse_query
from repro.search.tokenizer import tokenize
from repro.security.acl import AccessControl
from repro.security.principals import Principal


@dataclass(frozen=True)
class SearchResult:
    """One hit, ready for display or export."""

    entity_type: str
    entity_id: int
    score: float
    label: str
    snippet: str
    metadata: dict[str, Any]


#: Bound on cached candidate sets (distinct query shapes per index
#: generation); small because one index mutation invalidates them all.
SEARCH_CACHE_SIZE = 128


def _snippet(document: Document, terms: set[str], *, width: int = 90) -> str:
    """A short excerpt around the first matching term."""
    text = document.text()
    lowered = text.lower()
    position = -1
    for term in terms:
        position = lowered.find(term)
        if position >= 0:
            break
    if position < 0:
        return text[:width]
    start = max(0, position - width // 3)
    excerpt = text[start : start + width]
    prefix = "…" if start > 0 else ""
    suffix = "…" if start + width < len(text) else ""
    return f"{prefix}{excerpt}{suffix}"


class SearchEngine:
    """Quick and advanced search over the indexed corpus."""

    def __init__(
        self,
        *,
        acl: AccessControl | None = None,
        obs: Observability | None = None,
    ):
        self.index = InvertedIndex()
        self._acl = acl
        self.obs = obs if obs is not None else Observability()
        self._m_query_seconds = self.obs.metrics.histogram(
            "search_query_seconds", "Full query evaluation latency"
        )
        self._m_queries = self.obs.metrics.counter(
            "search_queries_total", "Queries evaluated"
        )
        self._m_results = self.obs.metrics.histogram(
            "search_result_count",
            "Results returned per query",
            buckets=(0, 1, 2, 5, 10, 25, 50, 100, 250),
        )
        self._m_index_ops = self.obs.metrics.counter(
            "search_index_ops_total",
            "Documents (re)indexed or removed",
            labels=("action",),
        )
        cache_total = self.obs.metrics.counter(
            "search_cache_total",
            "Candidate-set cache lookups by result",
            labels=("result",),
        )
        self._m_cache_hit = cache_total.labels(result="hit")
        self._m_cache_miss = cache_total.labels(result="miss")
        # Posting-intersection cache, keyed by the index generation plus
        # the canonical query shape.  Everything cached here is derived
        # purely from index contents (term candidates, boolean algebra,
        # type filter); per-principal ACL filtering happens after and is
        # never cached.
        self._candidate_cache: "OrderedDict[tuple, frozenset]" = OrderedDict()

    # -- indexing -----------------------------------------------------------------

    def index_document(
        self,
        entity_type: str,
        entity_id: int,
        fields: dict[str, str],
        *,
        project_id: int | None = None,
        label: str = "",
        **metadata: Any,
    ) -> None:
        """(Re-)index one object.

        ``project_id`` drives access-control filtering at query time;
        objects without one (e.g. vocabulary values) are public.
        """
        meta = dict(metadata)
        meta["project_id"] = project_id
        meta["label"] = label or fields.get("name", f"{entity_type} {entity_id}")
        self.index.add(
            Document(
                entity_type=entity_type,
                entity_id=entity_id,
                fields={k: str(v) for k, v in fields.items()},
                metadata=meta,
            )
        )
        self._m_index_ops.labels(action="index").inc()

    def remove_document(self, entity_type: str, entity_id: int) -> bool:
        removed = self.index.remove(entity_type, entity_id)
        if removed:
            self._m_index_ops.labels(action="remove").inc()
        return removed

    # -- searching -------------------------------------------------------------------

    def search(
        self,
        principal: Principal,
        query: "str | SearchQuery",
        *,
        types: list[str] | None = None,
        limit: int = 25,
        snapshot=None,
    ) -> list[SearchResult]:
        """Evaluate *query* for *principal*, best matches first.

        With *snapshot* (an MVCC read view) the per-principal ACL
        filter reads project membership at that snapshot, so a search
        issued inside a pinned request sees access rights consistent
        with every other read of that request — and never blocks on a
        concurrent membership write.
        """
        with self.obs.tracer.span("search.query", user=principal.login) as span:
            timer = self.obs.timer()
            results = self._evaluate(
                principal, query, types=types, limit=limit, snapshot=snapshot
            )
            self._m_queries.inc()
            self._m_query_seconds.observe(timer.elapsed())
            self._m_results.observe(len(results))
            span.set(results=len(results))
            return results

    def _evaluate(
        self,
        principal: Principal,
        query: "str | SearchQuery",
        *,
        types: list[str] | None,
        limit: int,
        snapshot=None,
    ) -> list[SearchResult]:
        if isinstance(query, str):
            query = parse_query(query)
        effective_types = set(query.types or [])
        if types:
            effective_types |= set(types)

        candidates = self._candidates(query, effective_types)
        if candidates is None:
            return []
        candidates = self._visible(principal, candidates, snapshot=snapshot)

        positive = query.positive_terms
        term_set = {term for term, _ in positive}
        scored = [
            (self.index.score(key, positive), key) for key in candidates
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        results = []
        for score, key in scored[:limit]:
            document = self.index.document(*key)
            assert document is not None
            results.append(
                SearchResult(
                    entity_type=key[0],
                    entity_id=key[1],
                    score=round(score, 6),
                    label=document.metadata.get("label", ""),
                    snippet=_snippet(document, term_set),
                    metadata=dict(document.metadata),
                )
            )
        return results

    def _candidates(
        self, query: SearchQuery, effective_types: set[str]
    ) -> frozenset | None:
        """The pre-ACL candidate set for *query*, cached per generation.

        Returns ``None`` for a query with no positive clause.  The cache
        key includes the index generation, so any add/remove/clear makes
        every previous entry unreachable (entries age out of the bounded
        LRU rather than being swept eagerly).
        """
        if not query.required and not query.any_of:
            return None
        shape = (
            self.index.generation,
            tuple((c.term, c.field) for c in query.required),
            tuple(
                tuple((c.term, c.field) for c in group)
                for group in query.any_of
            ),
            tuple((c.term, c.field) for c in query.negated),
            tuple(sorted(effective_types)),
        )
        cached = self._candidate_cache.get(shape)
        if cached is not None:
            self._candidate_cache.move_to_end(shape)
            self._m_cache_hit.inc()
            return cached
        self._m_cache_miss.inc()

        # Intersection over required terms, union within each OR group,
        # then intersected; negations subtracted, then the type filter.
        candidate_sets = []
        for clause in query.required:
            candidate_sets.append(self.index.candidates(clause.term, clause.field))
        for group in query.any_of:
            union: set = set()
            for clause in group:
                union |= self.index.candidates(clause.term, clause.field)
            candidate_sets.append(union)
        candidates = set.intersection(*candidate_sets)
        for clause in query.negated:
            candidates -= self.index.candidates(clause.term, clause.field)
        if effective_types:
            candidates = {
                key for key in candidates if key[0] in effective_types
            }
        result = frozenset(candidates)
        self._candidate_cache[shape] = result
        while len(self._candidate_cache) > SEARCH_CACHE_SIZE:
            self._candidate_cache.popitem(last=False)
        return result

    def quick_search(
        self, principal: Principal, text: str, *, limit: int = 10, snapshot=None
    ) -> list[SearchResult]:
        """The main-screen quick box: plain words, all object types."""
        terms = tokenize(text)
        if not terms:
            return []
        return self.search(
            principal, " ".join(terms), limit=limit, snapshot=snapshot
        )

    def _visible(self, principal: Principal, candidates: set, *, snapshot=None) -> set:
        """Filter candidates to projects the principal may read.

        The membership lookup runs at *snapshot* when one is given, so
        the ACL decision is repeatable within a pinned request.
        """
        if self._acl is None or principal.is_expert:
            return candidates
        if snapshot is not None:
            ids = self._acl.visible_project_ids(principal, snapshot=snapshot)
        else:
            # Keyword omitted so duck-typed ACL stand-ins predating the
            # snapshot parameter keep working for live searches.
            ids = self._acl.visible_project_ids(principal)
        visible_projects = set(ids)
        kept = set()
        for key in candidates:
            document = self.index.document(*key)
            if document is None:
                continue
            project_id = document.metadata.get("project_id")
            if project_id is None or project_id in visible_projects:
                kept.add(key)
        return kept

    # -- stats -----------------------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        return {
            "documents": len(self.index),
            "terms": self.index.term_count(),
            "generation": self.index.generation,
            "candidate_cache_entries": len(self._candidate_cache),
        }
