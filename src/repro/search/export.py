"""Exporting search results to files (paper: "search results can be
exported into files")."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from repro.search.engine import SearchResult

_COLUMNS = ("entity_type", "entity_id", "score", "label", "snippet")


def _rows(results: Iterable[SearchResult]) -> Iterable[list]:
    for result in results:
        yield [
            result.entity_type,
            result.entity_id,
            f"{result.score:.6f}",
            result.label,
            result.snippet,
        ]


def export_csv(
    results: Iterable[SearchResult], path: "str | Path | None" = None
) -> str:
    """Write results as CSV; returns the text (and writes *path* if given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_COLUMNS)
    writer.writerows(_rows(results))
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def export_tsv(
    results: Iterable[SearchResult], path: "str | Path | None" = None
) -> str:
    """Write results as TSV; returns the text (and writes *path* if given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter="\t", lineterminator="\n")
    writer.writerow(_COLUMNS)
    writer.writerows(_rows(results))
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
