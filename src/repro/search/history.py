"""Search history and saved queries (paper §2, Full-text Search).

"Searches done by the user are kept in the search history during his
session and can be executed easily... A query can also be saved for
future reuse.  A later invocation of such a saved query will of course
include all objects satisfying the query at run-time."

History is per login session (in memory, bounded); saved queries are
persistent rows.
"""

from __future__ import annotations

from collections import deque

from repro.orm import DateTimeField, IntField, Model, Registry, TextField
from repro.errors import EntityNotFound, ValidationError
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock

_HISTORY_LIMIT = 50


class SearchHistory:
    """The bounded, most-recent-first history of one session."""

    def __init__(self, limit: int = _HISTORY_LIMIT):
        self._entries: deque[str] = deque(maxlen=limit)

    def record(self, query: str) -> None:
        query = query.strip()
        if not query:
            return
        # Re-running a query moves it to the front instead of duplicating.
        try:
            self._entries.remove(query)
        except ValueError:
            pass
        self._entries.appendleft(query)

    def entries(self) -> list[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class SavedQuery(Model):
    """A persistently saved search."""

    __table__ = "saved_query"
    id = IntField(primary_key=True)
    user_id = IntField(nullable=False, foreign_key="user.id")
    name = TextField(nullable=False)
    query = TextField(nullable=False)
    created_at = DateTimeField()
    __unique_together__ = [("user_id", "name")]


class SavedQueryStore:
    """CRUD for saved queries."""

    def __init__(self, registry: Registry, *, clock: Clock | None = None):
        self._clock = clock or SystemClock()
        self._queries = registry.repository(SavedQuery)

    def save(self, principal: Principal, name: str, query: str) -> SavedQuery:
        name = name.strip()
        query = query.strip()
        if not name or not query:
            raise ValidationError("saved query needs a name and a query string")
        existing = self._queries.find_one(user_id=principal.user_id, name=name)
        if existing is not None:
            return self._queries.update(existing.id, query=query)
        return self._queries.create(
            user_id=principal.user_id,
            name=name,
            query=query,
            created_at=self._clock.now(),
        )

    def get(self, principal: Principal, name: str) -> SavedQuery:
        saved = self._queries.find_one(user_id=principal.user_id, name=name)
        if saved is None:
            raise EntityNotFound("SavedQuery", name)
        return saved

    def list_for(self, principal: Principal) -> list[SavedQuery]:
        return (
            self._queries.query()
            .where("user_id", "=", principal.user_id)
            .order_by("name")
            .all()
        )

    def delete(self, principal: Principal, name: str) -> None:
        saved = self.get(principal, name)
        self._queries.delete(saved.id)
