"""The inverted index with TF-IDF ranking.

Documents are field-structured (``{"name": ..., "description": ...}``)
so queries can scope to a field (``name:arabidopsis``).  Postings map
``term -> {doc_key -> {field -> tf}}``; scoring is classic TF-IDF with
cosine-style length normalization and a configurable per-field boost
(names weigh more than free text).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.search.tokenizer import tokenize

#: Default boost per field; unlisted fields weigh 1.0.
DEFAULT_FIELD_BOOSTS = {"name": 3.0, "value": 2.0}

DocKey = tuple[str, int]  # (entity_type, entity_id)


@dataclass
class Document:
    """One indexed object."""

    entity_type: str
    entity_id: int
    fields: dict[str, str]
    #: Metadata carried through to results (not searched): project_id
    #: for access control, display labels, timestamps...
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> DocKey:
        return (self.entity_type, self.entity_id)

    def text(self) -> str:
        return " ".join(str(v) for v in self.fields.values())


class InvertedIndex:
    """Incremental term index over :class:`Document` objects."""

    def __init__(self, *, field_boosts: dict[str, float] | None = None):
        self._postings: dict[str, dict[DocKey, dict[str, int]]] = {}
        self._documents: dict[DocKey, Document] = {}
        self._lengths: dict[DocKey, float] = {}
        self._boosts = dict(DEFAULT_FIELD_BOOSTS if field_boosts is None else field_boosts)
        # Monotonic generation, bumped on every index mutation.  The
        # search engine keys cached posting intersections on it — the
        # same trick the storage layer plays with table versions — so a
        # stale candidate set can never be served.
        self._generation = 0

    @property
    def generation(self) -> int:
        """Version of the index contents; changes on add/remove/clear."""
        return self._generation

    # -- maintenance -----------------------------------------------------------------

    def add(self, document: Document) -> None:
        """Index *document*, replacing any previous version."""
        if document.key in self._documents:
            self.remove(*document.key)
        term_fields: dict[str, dict[str, int]] = {}
        for field_name, value in document.fields.items():
            for token in tokenize(str(value)):
                term_fields.setdefault(token, {}).setdefault(field_name, 0)
                term_fields[token][field_name] += 1
        for term, per_field in term_fields.items():
            self._postings.setdefault(term, {})[document.key] = per_field
        self._documents[document.key] = document
        self._lengths[document.key] = self._length_of(term_fields)
        self._generation += 1

    def _length_of(self, term_fields: dict[str, dict[str, int]]) -> float:
        total = 0.0
        for per_field in term_fields.values():
            weighted = sum(
                tf * self._boosts.get(field_name, 1.0)
                for field_name, tf in per_field.items()
            )
            total += weighted * weighted
        return math.sqrt(total) or 1.0

    def remove(self, entity_type: str, entity_id: int) -> bool:
        """Drop a document; returns whether it was indexed."""
        key = (entity_type, entity_id)
        if key not in self._documents:
            return False
        dead_terms = []
        for term, docs in self._postings.items():
            docs.pop(key, None)
            if not docs:
                dead_terms.append(term)
        for term in dead_terms:
            del self._postings[term]
        del self._documents[key]
        del self._lengths[key]
        self._generation += 1
        return True

    def clear(self) -> None:
        self._postings.clear()
        self._documents.clear()
        self._lengths.clear()
        self._generation += 1

    # -- introspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, key: DocKey) -> bool:
        return key in self._documents

    def document(self, entity_type: str, entity_id: int) -> Document | None:
        return self._documents.get((entity_type, entity_id))

    def term_count(self) -> int:
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    # -- retrieval ------------------------------------------------------------------------

    def _idf(self, term: str) -> float:
        df = self.document_frequency(term)
        if df == 0:
            return 0.0
        return math.log(1.0 + len(self._documents) / df)

    def _term_score(
        self, term: str, key: DocKey, scoped_field: str | None
    ) -> float:
        per_field = self._postings.get(term, {}).get(key)
        if per_field is None:
            return 0.0
        if scoped_field is not None:
            tf = per_field.get(scoped_field, 0)
            if tf == 0:
                return 0.0
            weighted = tf * self._boosts.get(scoped_field, 1.0)
        else:
            weighted = sum(
                tf * self._boosts.get(field_name, 1.0)
                for field_name, tf in per_field.items()
            )
        return (1.0 + math.log(weighted)) * self._idf(term)

    def candidates(self, term: str, scoped_field: str | None = None) -> set[DocKey]:
        """Documents containing *term* (optionally only in one field)."""
        docs = self._postings.get(term)
        if docs is None:
            return set()
        if scoped_field is None:
            return set(docs)
        return {key for key, per_field in docs.items() if scoped_field in per_field}

    def score(
        self,
        key: DocKey,
        terms: list[tuple[str, str | None]],
    ) -> float:
        """TF-IDF score of a document against ``(term, field)`` pairs."""
        raw = sum(self._term_score(term, key, scoped) for term, scoped in terms)
        if raw == 0.0:
            return 0.0
        return raw / self._lengths[key]

    def documents(self) -> list[Document]:
        return list(self._documents.values())
