"""The advanced-search query language.

Grammar (whitespace-separated clauses, AND is implicit)::

    query      := clause+
    clause     := ["-"] [field ":"] word     # "-" negates
                | "type" ":" object_type     # restrict object types
                | word "OR" word ...         # any-of group

Examples::

    arabidopsis light                  # both terms, any field
    name:arabidopsis -heat             # term in name field, NOT heat
    type:sample hopeless               # only samples
    light OR dark                      # either term

The parser is intentionally forgiving: empty clauses are dropped, an
unknown trailing ``OR`` is treated as a word.  It raises
:class:`~repro.errors.QuerySyntaxError` only for queries with no
positive content (pure negation cannot be evaluated sensibly against an
inverted index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QuerySyntaxError
from repro.search.tokenizer import tokenize


@dataclass(frozen=True)
class TermClause:
    """One (possibly field-scoped, possibly negated) term."""

    term: str
    field: str | None = None
    negated: bool = False


@dataclass
class SearchQuery:
    """The parsed form the engine evaluates."""

    required: list[TermClause] = field(default_factory=list)
    negated: list[TermClause] = field(default_factory=list)
    #: Groups of alternatives: a document must match ≥1 term per group.
    any_of: list[list[TermClause]] = field(default_factory=list)
    types: list[str] = field(default_factory=list)
    raw: str = ""

    @property
    def positive_terms(self) -> list[tuple[str, str | None]]:
        terms = [(c.term, c.field) for c in self.required]
        for group in self.any_of:
            terms.extend((c.term, c.field) for c in group)
        return terms

    def is_empty(self) -> bool:
        return not (self.required or self.any_of)


def _clause_from(token: str) -> TermClause | None:
    negated = token.startswith("-")
    if negated:
        token = token[1:]
    field_name: str | None = None
    if ":" in token:
        field_name, token = token.split(":", 1)
        field_name = field_name.strip().lower() or None
    words = tokenize(token, keep_stopwords=True)
    if not words:
        return None
    # Multi-word after tokenization (e.g. "wt_light") — keep the first
    # word scoped; the rest become part of the same clause is overkill,
    # the engine treats each parsed clause as one term.
    return TermClause(term=words[0], field=field_name, negated=negated)


def parse_query(raw: str) -> SearchQuery:
    """Parse *raw* into a :class:`SearchQuery`.

    Raises :class:`QuerySyntaxError` when nothing positive remains.
    """
    query = SearchQuery(raw=raw)
    tokens = raw.split()
    index = 0
    pending_or: list[TermClause] = []
    while index < len(tokens):
        token = tokens[index]
        if token.upper() == "OR":
            index += 1
            continue
        lowered = token.lower()
        if lowered.startswith("type:"):
            type_name = lowered[len("type:"):].strip()
            if type_name:
                query.types.append(type_name)
            index += 1
            continue
        clause = _clause_from(token)
        index += 1
        if clause is None:
            continue
        # Look ahead: is this token part of an OR chain?
        in_or_chain = (
            index < len(tokens) and tokens[index].upper() == "OR"
        ) or bool(pending_or)
        if clause.negated:
            query.negated.append(clause)
            continue
        if in_or_chain:
            pending_or.append(clause)
            chain_continues = (
                index < len(tokens) and tokens[index].upper() == "OR"
            )
            if not chain_continues:
                query.any_of.append(pending_or)
                pending_or = []
        else:
            query.required.append(clause)
    if pending_or:
        query.any_of.append(pending_or)
    if query.is_empty():
        raise QuerySyntaxError(
            f"query {raw!r} contains no searchable positive term"
        )
    return query
