"""Tokenization for indexing and querying.

Deliberately simple and symmetric: the same function tokenizes documents
and query strings, so a term matches iff the index saw it.  Separator
characters common in lab file names (``_``, ``-``, ``.``) split tokens,
so ``wt_light_1.cel`` is findable as ``wt`` / ``light`` / ``cel``.
"""

from __future__ import annotations

import re
import unicodedata

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to carry signal in lab metadata.
STOPWORDS = frozenset(
    "a an and are as at be by for from in is it of on or the this to was with".split()
)


def _fold(text: str) -> str:
    text = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in text if not unicodedata.combining(ch)).lower()


def tokenize(text: str, *, keep_stopwords: bool = False) -> list[str]:
    """Split *text* into lowercase alphanumeric tokens.

    >>> tokenize("Arabidopsis Thaliana wt_light_1.cel")
    ['arabidopsis', 'thaliana', 'wt', 'light', '1', 'cel']
    """
    tokens = _TOKEN_RE.findall(_fold(text))
    if keep_stopwords:
        return tokens
    return [t for t in tokens if t not in STOPWORDS]
