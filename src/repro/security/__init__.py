"""Access control: principals, roles, project ACLs, login sessions.

The paper: "B-Fabric captures and provides the data transparently and in
access-controlled fashion through a Web portal."  Concretely:

* every acting user is a :class:`Principal` carrying a role —
  ``scientist`` (regular researcher), ``employee`` (FGCZ expert, reviews
  annotations), or ``admin``;
* data visibility is scoped per project: scientists only see objects of
  projects they are members of, employees and admins see everything;
* the web portal authenticates against stored (salted, hashed) passwords
  and tracks login sessions.
"""

from repro.security.principals import Principal, Role, SYSTEM
from repro.security.acl import AccessControl, Permission
from repro.security.auth import Authenticator, LoginSession, hash_password, verify_password

__all__ = [
    "Principal",
    "Role",
    "SYSTEM",
    "AccessControl",
    "Permission",
    "Authenticator",
    "LoginSession",
    "hash_password",
    "verify_password",
]
