"""Project-scoped access control.

Visibility in B-Fabric follows project membership: a scientist sees and
manipulates only objects belonging to projects they are a member of.
Experts (FGCZ employees) and admins operate across projects.  The
:class:`AccessControl` service answers permission questions against the
``project_membership`` table and raises
:class:`~repro.errors.AccessDenied` from its ``require_*`` variants.
"""

from __future__ import annotations

import enum

from repro.errors import AccessDenied
from repro.security.principals import Principal
from repro.storage.database import Database


class Permission(enum.Enum):
    """What a principal may do with a project's objects."""

    READ = "read"
    WRITE = "write"
    MANAGE = "manage"  # membership changes, project settings


class AccessControl:
    """Answers "may *principal* do *permission* on *project*?"."""

    def __init__(self, database: Database):
        self._db = database

    # -- membership -------------------------------------------------------------

    def membership_role(self, principal: Principal, project_id: int) -> str | None:
        """The principal's role within the project, or ``None``."""
        row = (
            self._db.query("project_membership")
            .where("user_id", "=", principal.user_id)
            .where("project_id", "=", project_id)
            .first()
        )
        return row["role"] if row else None

    def is_member(self, principal: Principal, project_id: int) -> bool:
        return self.membership_role(principal, project_id) is not None

    def grant(
        self,
        project_id: int,
        user_id: int,
        role: str = "member",
        *,
        txn=None,
    ) -> dict:
        """Add (or upgrade) a membership.  ``role`` is member|leader."""
        if role not in ("member", "leader"):
            raise ValueError(f"membership role must be member|leader, got {role!r}")
        existing = (
            self._db.query("project_membership")
            .where("user_id", "=", user_id)
            .where("project_id", "=", project_id)
            .first()
        )
        target = txn if txn is not None else self._db
        if existing is not None:
            return target.update(
                "project_membership", existing["id"], {"role": role}
            )
        return target.insert(
            "project_membership",
            {"user_id": user_id, "project_id": project_id, "role": role},
        )

    def revoke(self, project_id: int, user_id: int, *, txn=None) -> bool:
        existing = (
            self._db.query("project_membership")
            .where("user_id", "=", user_id)
            .where("project_id", "=", project_id)
            .first()
        )
        if existing is None:
            return False
        target = txn if txn is not None else self._db
        target.delete("project_membership", existing["id"])
        return True

    # -- checks -------------------------------------------------------------------

    def can(
        self, principal: Principal, permission: Permission, project_id: int
    ) -> bool:
        if principal.is_expert:
            # Employees and admins operate center-wide.
            return True
        role = self.membership_role(principal, project_id)
        if role is None:
            return False
        if permission is Permission.MANAGE:
            return role == "leader"
        return True

    def require(
        self, principal: Principal, permission: Permission, project_id: int
    ) -> None:
        if not self.can(principal, permission, project_id):
            raise AccessDenied(
                f"{principal} lacks {permission.value} on project {project_id}",
                principal=principal.login,
                permission=permission.value,
            )

    def visible_project_ids(
        self, principal: Principal, *, snapshot=None
    ) -> list[int]:
        """Projects the principal may read (all, for experts).

        With *snapshot* (an MVCC read view) the membership tables are
        evaluated at that snapshot — lock-free and consistent with any
        other reads pinned to it — instead of the live state.
        """
        if principal.is_expert:
            return self._db.query("project", snapshot=snapshot).pks()
        return (
            self._db.query("project_membership", snapshot=snapshot)
            .where("user_id", "=", principal.user_id)
            .values("project_id")
        )
