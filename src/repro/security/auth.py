"""Authentication: salted password hashing and login sessions."""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.errors import AuthenticationError
from repro.security.principals import Principal, Role
from repro.storage.database import Database
from repro.util.clock import Clock, SystemClock
from repro.util.ids import token_hex

_PBKDF2_ITERATIONS = 50_000
_SESSION_TTL_SECONDS = 8 * 3600


def hash_password(password: str, *, salt: bytes | None = None) -> str:
    """Return ``salt$hash`` using PBKDF2-HMAC-SHA256."""
    if salt is None:
        salt = os.urandom(16)
    digest = hashlib.pbkdf2_hmac(
        "sha256", password.encode("utf-8"), salt, _PBKDF2_ITERATIONS
    )
    return f"{salt.hex()}${digest.hex()}"


def verify_password(password: str, stored: str) -> bool:
    """Constant-time check of *password* against a stored ``salt$hash``."""
    try:
        salt_hex, digest_hex = stored.split("$", 1)
        salt = bytes.fromhex(salt_hex)
    except ValueError:
        return False
    candidate = hashlib.pbkdf2_hmac(
        "sha256", password.encode("utf-8"), salt, _PBKDF2_ITERATIONS
    )
    return hmac.compare_digest(candidate.hex(), digest_hex)


class LoginSession:
    """One authenticated portal session."""

    def __init__(self, token: str, principal: Principal, expires_at: float):
        self.token = token
        self.principal = principal
        self.expires_at = expires_at
        #: Arbitrary per-session state; the portal stores the search
        #: history here (paper §2 Full-text Search).
        self.data: dict = {}

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class Authenticator:
    """Login/logout against the ``user`` table."""

    def __init__(self, database: Database, *, clock: Clock | None = None):
        self._db = database
        self._clock = clock or SystemClock()
        self._sessions: dict[str, LoginSession] = {}

    def login(self, login: str, password: str) -> LoginSession:
        """Validate credentials and open a session."""
        user = self._db.query("user").where("login", "=", login).first()
        if user is None or not user.get("active", True):
            raise AuthenticationError(f"unknown or inactive user {login!r}")
        if not verify_password(password, user["password_hash"]):
            raise AuthenticationError("bad password")
        principal = Principal(
            user_id=user["id"], login=user["login"], role=Role(user["role"])
        )
        token = token_hex()
        session = LoginSession(
            token, principal, self._clock.timestamp() + _SESSION_TTL_SECONDS
        )
        self._sessions[token] = session
        return session

    def resolve(self, token: str) -> LoginSession:
        """Return the live session for *token* or raise."""
        session = self._sessions.get(token)
        if session is None:
            raise AuthenticationError("no such session")
        if session.expired(self._clock.timestamp()):
            del self._sessions[token]
            raise AuthenticationError("session expired")
        return session

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    def active_sessions(self) -> int:
        now = self._clock.timestamp()
        return sum(1 for s in self._sessions.values() if not s.expired(now))
