"""Principals and roles."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Role(enum.Enum):
    """The three roles the demo distinguishes.

    * ``SCIENTIST`` — registers samples/extracts, imports data, runs
      experiments within their projects.
    * ``EMPLOYEE`` — an FGCZ expert: everything a scientist can, plus
      annotation review/release/merge and cross-project visibility.
    * ``ADMIN`` — employee rights plus administrative functions
      (workflow admin, error registry, maintenance).
    """

    SCIENTIST = "scientist"
    EMPLOYEE = "employee"
    ADMIN = "admin"

    @property
    def is_expert(self) -> bool:
        """Experts review annotations (paper: 'an FGCZ employee')."""
        return self in (Role.EMPLOYEE, Role.ADMIN)


@dataclass(frozen=True)
class Principal:
    """The acting identity every service call carries.

    ``user_id`` is the persistent ``user`` row id; the special
    :data:`SYSTEM` principal (id 0) is used for engine-internal writes
    such as workflow bookkeeping.
    """

    user_id: int
    login: str
    role: Role

    @property
    def is_admin(self) -> bool:
        return self.role is Role.ADMIN

    @property
    def is_expert(self) -> bool:
        return self.role.is_expert

    def __str__(self) -> str:
        return f"{self.login}({self.role.value})"


#: Engine-internal actor for bookkeeping writes.
SYSTEM = Principal(user_id=0, login="system", role=Role.ADMIN)
