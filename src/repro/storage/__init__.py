"""Embedded relational storage engine.

This package is the substrate under everything else: a small, fully
transactional, indexed, typed row store with a write-ahead log.  The
original B-Fabric deployment sat on a commercial RDBMS; this engine
reproduces the semantics the system relies on — typed columns, primary
key / unique / foreign-key / not-null / check constraints, secondary
indexes, atomic multi-table transactions with rollback, durable commits
via a WAL, crash recovery, and a query interface with index-backed
filtering, ordering, and pagination.

Quick tour::

    from repro.storage import Database, TableSchema, Column, ColumnType

    db = Database()
    db.create_table(TableSchema(
        name="sample",
        columns=[
            Column("id", ColumnType.INT, primary_key=True),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("project_id", ColumnType.INT,
                   foreign_key="project.id"),
        ],
        indexes=["name", "project_id"],
    ))
    with db.transaction() as txn:
        txn.insert("sample", {"name": "wt light 1", "project_id": 1})
"""

from repro.storage.types import ColumnType
from repro.storage.schema import Column, TableSchema, ForeignKey
from repro.storage.durability import Durability
from repro.storage.index import OrderedIndex
from repro.storage.query import Plan, Query, QueryCache, F
from repro.storage.stats import TableStatistics
from repro.storage.snapshot import Snapshot
from repro.storage.database import Database
from repro.storage.transaction import Transaction
from repro.storage.wal import WriteAheadLog
from repro.storage.sharding import (
    ShardedDatabase,
    ShardedQuery,
    ShardedSnapshot,
    ShardedTransaction,
    ShardRouter,
)

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "ForeignKey",
    "Durability",
    "Database",
    "Transaction",
    "Query",
    "QueryCache",
    "Plan",
    "OrderedIndex",
    "TableStatistics",
    "Snapshot",
    "F",
    "WriteAheadLog",
    "ShardedDatabase",
    "ShardedQuery",
    "ShardedSnapshot",
    "ShardedTransaction",
    "ShardRouter",
]
