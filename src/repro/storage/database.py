"""The database: table registry, transactions, durability, recovery.

A :class:`Database` can run purely in memory (tests, benchmarks) or
attached to a directory, in which case every commit is appended to a
write-ahead log and :meth:`checkpoint` writes full snapshots.  Opening a
database over an existing directory and calling :meth:`recover` restores
the last snapshot and replays the log — including after a simulated
crash that tore the final record.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import SchemaError, WalCorruption, WalWriteError
from repro.obs import Observability
from repro.storage.durability import Durability
from repro.storage.query import DEFAULT_QUERY_CACHE_SIZE, Query, QueryCache
from repro.storage.schema import TableSchema
from repro.storage.snapshot import Snapshot
from repro.storage.table import Table, UndoEntry
from repro.storage.transaction import Transaction
from repro.storage.types import from_jsonable, to_jsonable
from repro.storage.wal import WriteAheadLog

SNAPSHOT_NAME = "snapshot.json"
WAL_NAME = "wal.log"


class Database:
    """An embedded multi-table transactional store."""

    def __init__(
        self,
        path: "str | Path | None" = None,
        *,
        durable: bool = True,
        durability: "Durability | str | None" = None,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        obs: Observability | None = None,
    ):
        """Create a database.

        :param path: directory for WAL + snapshots; ``None`` keeps
            everything in memory.
        :param durable: with a *path*, whether commits append to the WAL.
            Turning this off (while keeping snapshots available) exists
            for the A4 ablation benchmark.
        :param durability: WAL durability policy — ``"always"``
            (default), ``"group"``/``"group:<window_ms>:<max_batch>"``
            for group commit, or ``"buffered"`` for re-runnable bulk
            loads.  See :class:`~repro.storage.durability.Durability`.
        :param query_cache_size: bound on the query-result cache
            (entries); ``0`` disables result caching.
        :param obs: observability hub shared with the rest of the
            deployment; a private one is created when omitted.
        """
        self.obs = obs if obs is not None else Observability()
        # Hot-path instruments are resolved to their (unlabelled) child
        # once, so each commit records without a family lookup.
        self._m_commit_seconds = self.obs.metrics.histogram(
            "storage_commit_seconds",
            "Transaction latency, begin to durable commit",
        ).labels()
        self._m_commits = self.obs.metrics.counter(
            "storage_commits_total", "Committed transactions"
        ).labels()
        self._m_ops = self.obs.metrics.counter(
            "storage_ops_total",
            "Committed row operations",
            labels=("table", "op"),
        )
        self._m_ops_children: dict[tuple[str, str], Any] = {}
        self._m_wal_append = self.obs.metrics.histogram(
            "storage_wal_append_seconds",
            "WAL append (serialize + write + fsync) per commit",
        ).labels()
        self._m_checkpoint = self.obs.metrics.histogram(
            "storage_checkpoint_seconds", "Snapshot + WAL reset duration"
        )
        self._m_recover = self.obs.metrics.histogram(
            "storage_recover_seconds", "Snapshot load + WAL replay duration"
        )
        self._tables: dict[str, Table] = {}
        # referenced table -> list of (referencing table, column, on_delete)
        self._referencing: dict[str, list[tuple[str, str, str]]] = {}
        self._lock = threading.RLock()
        self._txn_counter = 0
        # Writers that have declared intent (called transaction(), maybe
        # still blocked on the writer lock) and not yet handed their
        # record to the WAL.  Group-commit leaders poll this to decide
        # whether lingering in the batch window can pay off: counting
        # lock-waiters (not just the lock holder) means the leader keeps
        # the window open across the handoff between two transactions.
        # The counter is touched outside the writer lock, so it gets its
        # own tiny mutex (``+=`` on an attribute is not atomic).
        self._intent_lock = threading.Lock()
        self._write_intents = 0
        # MVCC state.  ``_committed_seq`` is the database-wide commit
        # sequence number: every commit stamps its new row versions with
        # the next number *before* publishing it here, so a lock-free
        # snapshot open that reads ``s`` can resolve every version at or
        # below ``s``.  The registry maps open snapshot ids to their
        # pinned sequence numbers; its minimum is the pruning horizon.
        # ``_snapshot_lock`` covers the registry and the horizon
        # computation so snapshot registration cannot race a prune.
        self._committed_seq = 0
        self._snapshot_lock = threading.Lock()
        self._snapshots: dict[int, int] = {}
        self._snapshot_counter = 0
        self._commit_listeners: list[Callable[[list[UndoEntry]], None]] = []
        self._path = Path(path) if path is not None else None
        self._durable = durable and self._path is not None
        self.durability = Durability.parse(durability)
        self.query_cache = QueryCache(query_cache_size, obs=self.obs)
        self._wal: WriteAheadLog | None = None
        if self._durable:
            assert self._path is not None
            self._path.mkdir(parents=True, exist_ok=True)
            self._wal = WriteAheadLog(
                self._path / WAL_NAME,
                obs=self.obs,
                durability=self.durability,
                pending_writers=lambda: self._write_intents,
            )

    # -- schema -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register *schema* and return the live table."""
        with self._lock:
            if schema.name in self._tables:
                raise SchemaError(f"table {schema.name!r} already exists")
            for _, fk in schema.foreign_keys():
                if fk.table != schema.name and fk.table not in self._tables:
                    raise SchemaError(
                        f"table {schema.name!r}: foreign key references "
                        f"unknown table {fk.table!r} (create it first)"
                    )
            table = Table(schema, self)
            self._tables[schema.name] = table
            for col, fk in schema.foreign_keys():
                self._referencing.setdefault(fk.table, []).append(
                    (schema.name, col.name, fk.on_delete)
                )
            return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return list(self._tables)

    def referencing(self, table: str) -> list[tuple[str, str, str]]:
        """``(referencing_table, column, on_delete)`` for FKs targeting *table*."""
        return list(self._referencing.get(table, ()))

    def add_column(self, table: str, column) -> None:
        """Schema evolution: add a column to a live table.

        FK-bearing columns update the referential map so delete actions
        apply immediately.
        """
        with self._lock:
            target = self.table(table)
            target.add_column(column)
            if column.foreign_key is not None:
                from repro.storage.schema import ForeignKey

                fk = ForeignKey.parse(column.foreign_key)
                if fk.table != table and fk.table not in self._tables:
                    raise SchemaError(
                        f"column {column.name!r} references unknown table "
                        f"{fk.table!r}"
                    )
                self._referencing.setdefault(fk.table, []).append(
                    (table, column.name, fk.on_delete)
                )

    def add_index(self, table: str, columns: "tuple[str, ...] | str") -> None:
        """Schema evolution: index existing data."""
        if isinstance(columns, str):
            columns = (columns,)
        with self._lock:
            self.table(table).add_index(tuple(columns))

    # -- transactions --------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Begin a transaction; the single-writer lock is held until it ends."""
        with self._intent_lock:
            self._write_intents += 1
        self._lock.acquire()
        self._txn_counter += 1
        return Transaction(self, self._txn_counter, timer=self.obs.timer())

    def _finish_commit(self, txn: Transaction) -> None:
        """Called by Transaction.commit while the lock is still held.

        Appends (or, under group durability, enqueues) the WAL record and
        publishes the new table versions, then releases the writer lock.
        A group-commit ticket is awaited *after* the release, so other
        transactions apply their changes while this one's batch fsyncs.

        On a WAL append failure the lock is kept and
        :class:`~repro.errors.WalWriteError` is raised so the caller can
        undo the in-memory changes before releasing.
        """
        operations = txn.operations
        ticket = None
        if self._wal is not None and operations:
            # Under group durability the per-commit append is only an
            # enqueue — the write+fsync happens in the leader's batch and
            # is covered by the fsync/batch histograms — so the append
            # timer is only meaningful (and only recorded) when the
            # record is written synchronously.
            wal_timer = None if self.durability.grouped else self.obs.timer()
            try:
                ticket = self._wal.append_commit(
                    txn.txn_id, operations, self._encode_row_for_wal
                )
            except Exception as exc:
                raise WalWriteError(
                    f"transaction #{txn.txn_id}: WAL append failed"
                ) from exc
            if wal_timer is not None:
                self._m_wal_append.observe(wal_timer.elapsed())
        if operations:
            # Stamp-then-publish: touched tables stamp their uncommitted
            # versions with the new sequence number first, and only then
            # does the number become visible to snapshot opens.
            seq = self._committed_seq + 1
            for name in {op.table for op in operations}:
                self._tables[name].commit_version(seq)
            self._committed_seq = seq
        with self._intent_lock:
            self._write_intents -= 1
        self._lock.release()
        if ticket is not None:
            # Block until the group leader's fsync covers our record.
            # The in-memory state is already committed; a failure here is
            # a durability failure, not a consistency one.
            ticket()
        for listener in self._commit_listeners:
            listener(operations)
        self._m_commits.inc()
        for op in operations:
            key = (op.table, op.op)
            child = self._m_ops_children.get(key)
            if child is None:
                child = self._m_ops.labels(table=op.table, op=op.op)
                self._m_ops_children[key] = child
            child.inc()
        elapsed = txn.timer.elapsed() if txn.timer is not None else 0.0
        self._m_commit_seconds.observe(elapsed)
        if operations:
            self.obs.log.log(
                "storage.commit",
                txn=txn.txn_id,
                operations=len(operations),
                duration=elapsed,
            )

    def _finish_abort(self, txn: Transaction) -> None:
        with self._intent_lock:
            self._write_intents -= 1
        self._lock.release()

    def on_commit(self, listener: Callable[[list[UndoEntry]], None]) -> None:
        """Register an observer invoked after each durable commit.

        Listeners receive the operation list; the audit log and the
        full-text indexer subscribe here.
        """
        self._commit_listeners.append(listener)

    # -- autocommit conveniences ------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        """Insert in a single-statement transaction."""
        with self.transaction() as txn:
            return txn.insert(table, values)

    def update(self, table: str, pk: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Update in a single-statement transaction."""
        with self.transaction() as txn:
            return txn.update(table, pk, changes)

    def delete(self, table: str, pk: Any) -> dict[str, Any]:
        """Delete in a single-statement transaction."""
        with self.transaction() as txn:
            return txn.delete(table, pk)

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        return self.table(table).get(pk)

    def get_or_none(self, table: str, pk: Any) -> dict[str, Any] | None:
        return self.table(table).get_or_none(pk)

    def query(self, table: str, *, snapshot: "Snapshot | None" = None) -> Query:
        """Start a fluent query over *table*, optionally snapshot-pinned."""
        return Query(self.table(table), snapshot=snapshot)

    def count(self, table: str) -> int:
        return len(self.table(table))

    # -- snapshots (MVCC read views) ---------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Open an immutable, lock-free read view at the current commit.

        The returned :class:`~repro.storage.snapshot.Snapshot` serves
        repeatable reads without ever acquiring the writer lock; commits
        that happen after the open stay invisible to it.  Open snapshots
        pin their row versions in memory — close them promptly (they are
        context managers) so pruning can reclaim superseded versions.
        """
        with self._snapshot_lock:
            sid = self._snapshot_counter
            self._snapshot_counter += 1
            seq = self._committed_seq
            self._snapshots[sid] = seq
        return Snapshot(self, sid, seq)

    def _release_snapshot(self, sid: int) -> None:
        with self._snapshot_lock:
            self._snapshots.pop(sid, None)
        # Closing the oldest snapshot may unlock a swath of prunable
        # versions; sweep opportunistically if the writer lock is free
        # (never block a reader-side close behind a writer).
        if self._lock.acquire(blocking=False):
            try:
                horizon = self.version_horizon()
                for table in self._tables.values():
                    table.prune_versions(horizon)
            finally:
                self._lock.release()

    def version_horizon(self) -> int:
        """Oldest commit sequence any live snapshot may still read.

        Version chains are never cut at or above this number.  With no
        open snapshots it is the current committed sequence — only the
        latest version of each row needs to stay.
        """
        with self._snapshot_lock:
            if self._snapshots:
                return min(self._snapshots.values())
            return self._committed_seq

    def open_snapshots(self) -> int:
        with self._snapshot_lock:
            return len(self._snapshots)

    def prune_versions(self) -> dict[str, int]:
        """Blocking sweep of every table's version chains.

        Takes the writer lock; returns reclaimed node counts per table.
        The write path and snapshot closes already prune lazily — this
        exists for admin tooling and tests.
        """
        with self._lock:
            horizon = self.version_horizon()
            return {
                name: table.prune_versions(horizon)
                for name, table in self._tables.items()
            }

    def _reserve_commit_seq(self) -> int:
        """Next commit sequence number, not yet published (writer lock held)."""
        return self._committed_seq + 1

    def _publish_commit_seq(self, seq: int) -> None:
        """Make *seq* visible to snapshot opens (after stamping)."""
        self._committed_seq = seq

    # -- WAL encoding ------------------------------------------------------------------

    def _encode_row_for_wal(
        self, table: str, row: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        if row is None:
            return None
        schema = self.table(table).schema
        # Only DATETIME values need transforming; every other type is
        # already JSON-safe, so most tables skip the per-value pass.
        if schema.wal_passthrough:
            return row
        return {
            name: to_jsonable(value, schema.column(name).type)
            for name, value in row.items()
        }

    def _decode_row_from_wal(
        self, table: str, row: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        if row is None:
            return None
        schema = self.table(table).schema
        return {
            name: from_jsonable(value, schema.column(name).type)
            for name, value in row.items()
            if schema.has_column(name)
        }

    # -- snapshots & recovery -----------------------------------------------------------

    def checkpoint(self) -> Path:
        """Write a full snapshot and reset the WAL.  Returns snapshot path."""
        if self._path is None:
            raise SchemaError("checkpoint requires a database directory")
        timer = self.obs.timer()
        with self._lock:
            snapshot = {
                name: [
                    self._encode_row_for_wal(name, row)
                    for row in table.rows()
                ]
                for name, table in self._tables.items()
            }
            target = self._path / SNAPSHOT_NAME
            tmp = target.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, separators=(",", ":"), default=str)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
            if self._wal is not None:
                self._wal.reset()
                self._wal.append_checkpoint_marker(SNAPSHOT_NAME)
            elapsed = timer.elapsed()
            self._m_checkpoint.observe(elapsed)
            self.obs.log.log(
                "storage.checkpoint", path=str(target), duration=elapsed
            )
            return target

    def recover(self) -> dict[str, int]:
        """Load the latest snapshot, replay the WAL, heal a torn tail.

        Must be called after every table has been declared (schemas live
        in code).  Returns ``{"snapshot_rows": n, "wal_txns": m}``.
        """
        if self._path is None:
            raise SchemaError("recover requires a database directory")
        stats = {"snapshot_rows": 0, "wal_txns": 0}
        timer = self.obs.timer()
        with self._lock:
            snapshot_path = self._path / SNAPSHOT_NAME
            if snapshot_path.exists():
                with open(snapshot_path, "r", encoding="utf-8") as fh:
                    snapshot = json.load(fh)
                for name, rows in snapshot.items():
                    if name not in self._tables:
                        raise SchemaError(
                            f"snapshot contains unknown table {name!r}; "
                            "declare schemas before recover()"
                        )
                    table = self._tables[name]
                    for encoded in rows:
                        decoded = self._decode_row_from_wal(name, encoded)
                        assert decoded is not None
                        table.apply_insert(decoded)
                        stats["snapshot_rows"] += 1
            if self._wal is not None:
                try:
                    for record in self._wal.records():
                        if record.get("kind") != "commit":
                            continue
                        self._replay_commit(record)
                        stats["wal_txns"] += 1
                except WalCorruption:
                    raise
                self._wal.truncate_torn_tail()
            # Replay applied rows outside any transaction; settle them
            # into one committed version per table (a single fresh
            # commit sequence number) so the query cache starts from a
            # clean, non-dirty state and every row carries exactly one
            # current version.
            seq = self._committed_seq + 1
            settled = False
            for table in self._tables.values():
                if table.dirty:
                    table.commit_version(seq)
                    settled = True
            if settled:
                self._committed_seq = seq
            # No snapshot can be open during recovery, so the replayed
            # history (one version per replayed op, tombstones for
            # replayed deletes) is pure garbage: cut every chain down to
            # its current version.
            for table in self._tables.values():
                table.prune_versions(self._committed_seq)
        elapsed = timer.elapsed()
        self._m_recover.observe(elapsed)
        self.obs.log.log("storage.recover", duration=elapsed, **stats)
        return stats

    def _replay_commit(self, record: dict[str, Any]) -> None:
        for op in record["ops"]:
            table = self.table(op["table"])
            # "before"/"after" are omitted when they carry nothing (an
            # insert has no before-image, a delete no after-image); use
            # .get so both the compact and the legacy encoding replay.
            if op["op"] == "insert":
                after = self._decode_row_from_wal(op["table"], op.get("after"))
                assert after is not None
                table.apply_insert(after)
            elif op["op"] == "update":
                after = self._decode_row_from_wal(op["table"], op.get("after"))
                assert after is not None
                table.apply_update(op["pk"], after)
            elif op["op"] == "delete":
                table.apply_delete(op["pk"])

    # -- maintenance -------------------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        """Run every table's self-check; returns a list of problems."""
        problems: list[str] = []
        with self._lock:
            for table in self._tables.values():
                problems.extend(table.verify_integrity())
        return problems

    def rebuild_indexes(self) -> None:
        with self._lock:
            for table in self._tables.values():
                table.rebuild_indexes()

    def statistics(self) -> dict[str, Any]:
        """Row counts per table plus WAL size; powers the admin console."""
        with self._lock:
            return {
                "tables": {name: len(tbl) for name, tbl in self._tables.items()},
                "total_rows": sum(len(tbl) for tbl in self._tables.values()),
                "wal_bytes": self._wal.size_bytes() if self._wal else 0,
                "transactions": self._txn_counter,
                "durability": self.durability.spec(),
                "query_cache": self.query_cache.statistics(),
                "mvcc": {
                    "committed_seq": self._committed_seq,
                    "open_snapshots": self.open_snapshots(),
                    "retained_versions": sum(
                        tbl.version_statistics()["nodes"]
                        for tbl in self._tables.values()
                    ),
                },
            }

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- bulk iteration ------------------------------------------------------------------

    def rows(self, table: str) -> Iterator[dict[str, Any]]:
        return self.table(table).rows()
