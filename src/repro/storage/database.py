"""The database: table registry, transactions, durability, recovery.

A :class:`Database` can run purely in memory (tests, benchmarks) or
attached to a directory, in which case every commit is appended to a
write-ahead log and :meth:`checkpoint` writes full snapshots.  Opening a
database over an existing directory and calling :meth:`recover` restores
the last snapshot and replays the log — including after a simulated
crash that tore the final record.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.errors import (
    SchemaError,
    TransactionError,
    WalCorruption,
    WalWriteError,
)
from repro.obs import Observability, TraceContext
from repro.storage.durability import Durability
from repro.storage.query import DEFAULT_QUERY_CACHE_SIZE, Query, QueryCache
from repro.storage.schema import TableSchema
from repro.storage.snapshot import Snapshot
from repro.storage.table import Table, UndoEntry
from repro.storage.transaction import Transaction
from repro.storage.types import from_jsonable, to_jsonable
from repro.storage.wal import WriteAheadLog

SNAPSHOT_NAME = "snapshot.json"
WAL_NAME = "wal.log"
HISTORY_NAME = "history.id"

#: Key reserved in the snapshot file for non-table bookkeeping (the
#: committed sequence the snapshot captured).  No table may use it.
SNAPSHOT_META_KEY = "__meta__"


class Database:
    """An embedded multi-table transactional store."""

    def __init__(
        self,
        path: "str | Path | None" = None,
        *,
        durable: bool = True,
        durability: "Durability | str | None" = None,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        obs: Observability | None = None,
        shard: str | None = None,
    ):
        """Create a database.

        :param path: directory for WAL + snapshots; ``None`` keeps
            everything in memory.
        :param durable: with a *path*, whether commits append to the WAL.
            Turning this off (while keeping snapshots available) exists
            for the A4 ablation benchmark.
        :param durability: WAL durability policy — ``"always"``
            (default), ``"group"``/``"group:<window_ms>:<max_batch>"``
            for group commit, or ``"buffered"`` for re-runnable bulk
            loads.  See :class:`~repro.storage.durability.Durability`.
        :param query_cache_size: bound on the query-result cache
            (entries); ``0`` disables result caching.
        :param obs: observability hub shared with the rest of the
            deployment; a private one is created when omitted.
        :param shard: shard label for this database's per-instance
            metrics.  ``None`` (standalone databases) keeps the
            historical unlabelled families; a sharded deployment labels
            every shard's commit/fsync/MVCC instruments with
            ``{shard=...}`` in the *shared* registry so the per-shard
            series stay distinguishable instead of clobbering each
            other.  All databases sharing one registry must agree on
            whether the label is used.
        """
        self.obs = obs if obs is not None else Observability()
        self.shard_label = shard
        # Hot-path instruments are resolved to their child once, so each
        # commit records without a family lookup.  Standalone databases
        # use the unlabelled child; shards resolve their {shard=...} one.
        _names = ("shard",) if shard is not None else ()
        _vals: dict[str, str] = {"shard": shard} if shard is not None else {}
        metrics = self.obs.metrics
        self._m_commit_seconds = metrics.histogram(
            "storage_commit_seconds",
            "Transaction latency, begin to durable commit",
            labels=_names,
        ).labels(**_vals)
        self._m_commits = metrics.counter(
            "storage_commits_total", "Committed transactions", labels=_names
        ).labels(**_vals)
        self._m_ops = metrics.counter(
            "storage_ops_total",
            "Committed row operations",
            labels=("table", "op"),
        )
        self._m_ops_children: dict[tuple[str, str], Any] = {}
        self._m_wal_append = metrics.histogram(
            "storage_wal_append_seconds",
            "WAL append (serialize + write + fsync) per commit",
            labels=_names,
        ).labels(**_vals)
        self._m_checkpoint = metrics.histogram(
            "storage_checkpoint_seconds",
            "Snapshot + WAL reset duration",
            labels=_names,
        ).labels(**_vals)
        self._m_recover = metrics.histogram(
            "storage_recover_seconds",
            "Snapshot load + WAL replay duration",
            labels=_names,
        ).labels(**_vals)
        # MVCC bookkeeping gauges: snapshot opens/closes keep the first
        # two current (O(1) updates); the retained-version count is only
        # refreshed where chains are already being walked (statistics,
        # explicit prunes) because counting nodes is O(rows).
        self._g_open_snapshots = metrics.gauge(
            "storage_open_snapshots",
            "Currently open MVCC snapshots",
            labels=_names,
        ).labels(**_vals)
        self._g_version_horizon = metrics.gauge(
            "storage_version_horizon",
            "Oldest commit sequence a live snapshot may still read",
            labels=_names,
        ).labels(**_vals)
        self._g_retained_versions = metrics.gauge(
            "storage_retained_versions",
            "Row-version nodes retained across all version chains",
            labels=_names,
        ).labels(**_vals)
        self._tables: dict[str, Table] = {}
        # referenced table -> list of (referencing table, column, on_delete)
        self._referencing: dict[str, list[tuple[str, str, str]]] = {}
        self._lock = threading.RLock()
        self._txn_counter = 0
        # Writers that have declared intent (called transaction(), maybe
        # still blocked on the writer lock) and not yet handed their
        # record to the WAL.  Group-commit leaders poll this to decide
        # whether lingering in the batch window can pay off: counting
        # lock-waiters (not just the lock holder) means the leader keeps
        # the window open across the handoff between two transactions.
        # The counter is touched outside the writer lock, so it gets its
        # own tiny mutex (``+=`` on an attribute is not atomic).
        self._intent_lock = threading.Lock()
        self._write_intents = 0
        # MVCC state.  ``_committed_seq`` is the database-wide commit
        # sequence number: every commit stamps its new row versions with
        # the next number *before* publishing it here, so a lock-free
        # snapshot open that reads ``s`` can resolve every version at or
        # below ``s``.  The registry maps open snapshot ids to their
        # pinned sequence numbers; its minimum is the pruning horizon.
        # ``_snapshot_lock`` covers the registry and the horizon
        # computation so snapshot registration cannot race a prune.
        self._committed_seq = 0
        self._snapshot_lock = threading.Lock()
        self._snapshots: dict[int, int] = {}
        self._snapshot_counter = 0
        self._commit_listeners: list[Callable[[list[UndoEntry]], None]] = []
        self._commit_seq_listeners: list[Callable[[int], None]] = []
        # Trace context of recent traced commits, by sequence number.
        # The replication publisher reads it when building commit frames
        # so a replica's apply span can join the originating trace; the
        # map is bounded (traces are ephemeral) and deliberately not
        # persisted.
        self._trace_lock = threading.Lock()
        self._trace_by_seq: "OrderedDict[int, TraceContext]" = OrderedDict()
        self._history_id: str | None = None
        self._path = Path(path) if path is not None else None
        self._durable = durable and self._path is not None
        self.durability = Durability.parse(durability)
        self.query_cache = QueryCache(query_cache_size, obs=self.obs)
        self._wal: WriteAheadLog | None = None
        if self._durable:
            assert self._path is not None
            self._path.mkdir(parents=True, exist_ok=True)
            self._wal = WriteAheadLog(
                self._path / WAL_NAME,
                obs=self.obs,
                durability=self.durability,
                pending_writers=lambda: self._write_intents,
                shard=shard,
            )

    # -- schema -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register *schema* and return the live table."""
        with self._lock:
            if schema.name in self._tables:
                raise SchemaError(f"table {schema.name!r} already exists")
            for _, fk in schema.foreign_keys():
                if fk.table != schema.name and fk.table not in self._tables:
                    raise SchemaError(
                        f"table {schema.name!r}: foreign key references "
                        f"unknown table {fk.table!r} (create it first)"
                    )
            table = Table(schema, self)
            self._tables[schema.name] = table
            for col, fk in schema.foreign_keys():
                self._referencing.setdefault(fk.table, []).append(
                    (schema.name, col.name, fk.on_delete)
                )
            return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return list(self._tables)

    def referencing(self, table: str) -> list[tuple[str, str, str]]:
        """``(referencing_table, column, on_delete)`` for FKs targeting *table*."""
        return list(self._referencing.get(table, ()))

    def table_dirty(self, name: str) -> bool:
        """Whether *name* has uncommitted (in-transaction) changes.

        The ORM session uses this to decide between a pinned snapshot
        read and a live read-your-writes read without reaching for the
        raw :class:`Table` — which a sharded coordinator cannot hand
        out for partitioned tables.
        """
        return self.table(name).dirty

    def add_column(self, table: str, column) -> None:
        """Schema evolution: add a column to a live table.

        FK-bearing columns update the referential map so delete actions
        apply immediately.
        """
        with self._lock:
            target = self.table(table)
            target.add_column(column)
            if column.foreign_key is not None:
                from repro.storage.schema import ForeignKey

                fk = ForeignKey.parse(column.foreign_key)
                if fk.table != table and fk.table not in self._tables:
                    raise SchemaError(
                        f"column {column.name!r} references unknown table "
                        f"{fk.table!r}"
                    )
                self._referencing.setdefault(fk.table, []).append(
                    (table, column.name, fk.on_delete)
                )

    def add_index(
        self,
        table: str,
        columns: "tuple[str, ...] | str",
        *,
        ordered: bool = False,
    ) -> None:
        """Schema evolution: index existing data.

        ``ordered=True`` builds a composite **ordered** index instead of
        a hash index — range-capable, prefix-seekable, and usable for
        covering reads by the cost-based planner.
        """
        if isinstance(columns, str):
            columns = (columns,)
        with self._lock:
            self.table(table).add_index(tuple(columns), ordered=ordered)

    # -- transactions --------------------------------------------------------------

    def transaction(self, *, timeout: float | None = None) -> Transaction:
        """Begin a transaction; the single-writer lock is held until it ends.

        *timeout* bounds the wait for the writer lock.  ``None`` (the
        default) blocks indefinitely — the historical behaviour.  A
        cross-shard coordinator passes a finite timeout so two
        transactions acquiring shard locks in different orders resolve
        as a :class:`~repro.errors.TransactionError` (and a full
        rollback) instead of a deadlock.
        """
        with self._intent_lock:
            self._write_intents += 1
        if timeout is None:
            self._lock.acquire()
        elif not self._lock.acquire(timeout=timeout):
            with self._intent_lock:
                self._write_intents -= 1
            raise TransactionError(
                f"writer lock not acquired within {timeout:.3f}s "
                "(possible cross-shard lock conflict)"
            )
        self._txn_counter += 1
        return Transaction(self, self._txn_counter, timer=self.obs.timer())

    def _finish_commit(self, txn: Transaction) -> None:
        """Called by Transaction.commit while the lock is still held.

        Appends (or, under group durability, enqueues) the WAL record and
        publishes the new table versions, then releases the writer lock.
        A group-commit ticket is awaited *after* the release, so other
        transactions apply their changes while this one's batch fsyncs.

        On a WAL append failure the lock is kept and
        :class:`~repro.errors.WalWriteError` is raised so the caller can
        undo the in-memory changes before releasing.

        Commits running inside a live trace (a portal request, a traced
        client) get a ``storage.commit`` span — linked, under group
        durability, to the leader's ``wal.group_fsync`` span — and their
        trace context is retained by sequence number so the replication
        publisher can stamp it into the commit frame.  Standalone
        commits skip span bookkeeping entirely (the histograms already
        measure them, and span setup inside the writer lock would tax
        every untraced bench commit); the slow log still sees them
        through a direct duration check.
        """
        tracer = self.obs.tracer
        if tracer.current() is not None:
            with tracer.span(
                "storage.commit", txn=txn.txn_id, ops=len(txn.operations)
            ) as span:
                self._commit_locked(txn, span)
        else:
            self._commit_locked(txn, None)

    def _commit_locked(self, txn: Transaction, span) -> None:
        operations = txn.operations
        ticket = None
        # The commit sequence number is reserved before the WAL append so
        # the record itself can carry it — replication identifies commits
        # by this number, and the sequence space has gaps (out-of-band
        # schema publishes) that a record count cannot reproduce.
        seq = self._committed_seq + 1 if operations else None
        if self._wal is not None and operations:
            # Under group durability the per-commit append is only an
            # enqueue — the write+fsync happens in the leader's batch and
            # is covered by the fsync/batch histograms — so the append
            # timer is only meaningful (and only recorded) when the
            # record is written synchronously.
            wal_timer = None if self.durability.grouped else self.obs.timer()
            try:
                ticket = self._wal.append_commit(
                    txn.txn_id,
                    operations,
                    self._encode_row_for_wal,
                    seq=seq,
                    gtid=getattr(txn, "gtid", None),
                )
            except Exception as exc:
                raise WalWriteError(
                    f"transaction #{txn.txn_id}: WAL append failed"
                ) from exc
            if wal_timer is not None:
                self._m_wal_append.observe(wal_timer.elapsed())
        if seq is not None:
            # Stamp-then-publish: touched tables stamp their uncommitted
            # versions with the new sequence number first, and only then
            # does the number become visible to snapshot opens.
            for name in {op.table for op in operations}:
                self._tables[name].commit_version(seq)
            self._committed_seq = seq
            if span is not None:
                self._register_trace(seq, span.context())
        with self._intent_lock:
            self._write_intents -= 1
        self._lock.release()
        if ticket is not None:
            # Block until the group leader's fsync covers our record.
            # The in-memory state is already committed; a failure here is
            # a durability failure, not a consistency one.
            leader_ctx = ticket()
            if span is not None and leader_ctx is not None:
                # The fsync ran on the group leader's thread; link it so
                # the trace shows which flush made this commit durable.
                span.set(
                    fsync_trace_id=leader_ctx.trace_id,
                    fsync_span_id=leader_ctx.span_id,
                )
        for listener in self._commit_listeners:
            listener(operations)
        if seq is not None:
            # Sequence listeners fire after the durability ticket, so by
            # the time a replication publisher is poked the record is in
            # the log file (modulo `buffered` mode's OS cache).
            for seq_listener in self._commit_seq_listeners:
                seq_listener(seq)
        self._m_commits.inc()
        for op in operations:
            key = (op.table, op.op)
            child = self._m_ops_children.get(key)
            if child is None:
                child = self._m_ops.labels(table=op.table, op=op.op)
                self._m_ops_children[key] = child
            child.inc()
        elapsed = txn.timer.elapsed() if txn.timer is not None else 0.0
        self._m_commit_seconds.observe(elapsed)
        if (
            span is None
            and operations
            and elapsed >= self.obs.slowlog.threshold_for("storage.commit")
        ):
            # Untraced commits have no span for the sink to promote, so
            # the slow log is fed directly.
            self.obs.slowlog.record(
                "storage.commit",
                elapsed,
                {"txn": txn.txn_id, "ops": len(operations)},
            )
        if operations:
            self.obs.log.log(
                "storage.commit",
                txn=txn.txn_id,
                operations=len(operations),
                duration=elapsed,
            )

    def _finish_abort(self, txn: Transaction) -> None:
        with self._intent_lock:
            self._write_intents -= 1
        self._lock.release()

    # -- two-phase commit (participant side) --------------------------------------------

    def prepare_commit(self, txn: Transaction, gtid: str) -> None:
        """Phase 1 of a cross-shard commit: force the redo log to disk.

        Appends a ``prepare`` record carrying the global transaction id
        *gtid* and the transaction's full operation list, fsynced before
        return (prepares never ride a group batch — a prepared vote must
        survive a crash unconditionally).  The caller still holds this
        database's writer lock through the transaction object; the lock
        stays held until :meth:`commit_prepared` or
        :meth:`abort_prepared` completes phase 2, so no local commit or
        checkpoint can interleave with an in-flight prepare.
        """
        if self._wal is not None and txn.operations:
            try:
                self._wal.append_prepare(
                    txn.txn_id,
                    txn.operations,
                    self._encode_row_for_wal,
                    gtid=gtid,
                )
            except Exception as exc:
                raise WalWriteError(
                    f"transaction #{txn.txn_id}: prepare append failed "
                    f"(gtid={gtid})"
                ) from exc

    def commit_prepared(self, txn: Transaction, gtid: str) -> None:
        """Phase 2 (commit): publish a prepared transaction.

        The commit record is a *normal* commit record with a ``gtid``
        field, so replication publishers ship it unchanged and replay
        treats it like any other commit; the gtid's only recovery role
        is terminating the matching ``prepare``.
        """
        txn.gtid = gtid
        txn.commit()

    def commit_prepared_durable(self, txn: Transaction, gtid: str) -> "int | None":
        """Phase 2a of a split prepared commit: append the record.

        Appends the same commit record :meth:`commit_prepared` would
        (normal commit record plus gtid) but does **not** publish the
        transaction — the coordinator publishes all participants
        together under its publish lock.  Returns the reserved commit
        sequence (``None`` for an empty transaction).  The writer lock
        reserved the sequence, so nothing else can take it before
        :meth:`commit_prepared_publish`.

        The append is *lazy* under ``always`` durability: the
        coordinator's fsynced decision record is the transaction's
        commit point, and recovery rolls the prepare forward from the
        decision log if this record is lost, so no per-participant fsync
        is needed in phase 2 — the record becomes durable with the next
        sync on this shard's WAL.  Under ``group`` durability the record
        rides a batch and the ticket is honoured here so replication
        tailers never outrun the file.

        A WAL failure here happens *after* the coordinator's decision is
        durable: the transaction is committed come what may (recovery
        rolls the prepare forward), so the error propagates with the
        writer lock still held rather than pretending to roll back.
        """
        operations = txn.operations
        seq = self._committed_seq + 1 if operations else None
        if self._wal is not None and operations:
            try:
                ticket = self._wal.append_commit(
                    txn.txn_id,
                    operations,
                    self._encode_row_for_wal,
                    seq=seq,
                    gtid=gtid,
                    lazy=True,
                )
            except Exception as exc:
                raise WalWriteError(
                    f"transaction #{txn.txn_id}: prepared-commit append "
                    f"failed (gtid={gtid})"
                ) from exc
            if ticket is not None:
                # Group durability: the record must be in the file before
                # the coordinator may publish, so the batch wait happens
                # here.
                ticket()
        txn.gtid = gtid
        return seq

    def commit_prepared_publish(self, txn: Transaction, seq: "int | None") -> None:
        """Phase 2b: make a durably-logged prepared commit visible.

        Memory-only — stamps the touched tables' versions, bumps the
        committed sequence, and releases the writer lock.  Cheap enough
        to run under the coordinator's publish lock.  Follow with
        :meth:`commit_prepared_finish` outside that lock.
        """
        operations = txn.operations
        txn._mark_committed()
        if seq is not None:
            for name in {op.table for op in operations}:
                self._tables[name].commit_version(seq)
            self._committed_seq = seq
        with self._intent_lock:
            self._write_intents -= 1
        self._lock.release()

    def commit_prepared_finish(self, txn: Transaction, seq: "int | None") -> None:
        """Phase 2c: post-publish bookkeeping, outside every lock.

        Commit listeners (audit, search indexing), sequence listeners
        (replication publishers) and the commit metrics — the same tail
        :meth:`_commit_locked` runs after its lock release.
        """
        operations = txn.operations
        for listener in self._commit_listeners:
            listener(operations)
        if seq is not None:
            for seq_listener in self._commit_seq_listeners:
                seq_listener(seq)
        self._m_commits.inc()
        for op in operations:
            key = (op.table, op.op)
            child = self._m_ops_children.get(key)
            if child is None:
                child = self._m_ops.labels(table=op.table, op=op.op)
                self._m_ops_children[key] = child
            child.inc()
        elapsed = txn.timer.elapsed() if txn.timer is not None else 0.0
        self._m_commit_seconds.observe(elapsed)

    def abort_prepared(self, txn: Transaction, gtid: str) -> None:
        """Phase 2 (abort): roll back a prepared transaction.

        Best-effort appends an ``abort`` record so future recoveries of
        this shard resolve the prepare locally without consulting the
        coordinator log; if the append fails the rollback proceeds
        anyway — presumed abort covers an unterminated prepare whose
        gtid has no coordinator decision.
        """
        if self._wal is not None and txn.operations:
            try:
                self._wal.append_abort(gtid)
            except Exception:
                pass
        txn.rollback()

    def on_commit(self, listener: Callable[[list[UndoEntry]], None]) -> None:
        """Register an observer invoked after each durable commit.

        Listeners receive the operation list; the audit log and the
        full-text indexer subscribe here.
        """
        self._commit_listeners.append(listener)

    def on_commit_seq(self, listener: Callable[[int], None]) -> None:
        """Register an observer invoked with each published commit seq.

        Fires after the commit's durability ticket has been honoured —
        the WAL record is in the file by then — which makes it the right
        hook for a replication publisher to poke its tailer.  Also fires
        for replicated applies, so cascading topologies work.
        """
        self._commit_seq_listeners.append(listener)

    # -- trace propagation --------------------------------------------------------

    #: Bound on the seq → trace-context map; old entries age out FIFO.
    _TRACE_MAP_CAPACITY = 2048

    def _register_trace(self, seq: int, ctx: TraceContext) -> None:
        with self._trace_lock:
            self._trace_by_seq[seq] = ctx
            while len(self._trace_by_seq) > self._TRACE_MAP_CAPACITY:
                self._trace_by_seq.popitem(last=False)

    def trace_for_seq(self, seq: int) -> "TraceContext | None":
        """The trace context commit *seq* ran under, if it was traced
        recently enough to still be in the bounded map."""
        with self._trace_lock:
            return self._trace_by_seq.get(seq)

    # -- autocommit conveniences ------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        """Insert in a single-statement transaction."""
        with self.transaction() as txn:
            return txn.insert(table, values)

    def update(self, table: str, pk: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Update in a single-statement transaction."""
        with self.transaction() as txn:
            return txn.update(table, pk, changes)

    def delete(self, table: str, pk: Any) -> dict[str, Any]:
        """Delete in a single-statement transaction."""
        with self.transaction() as txn:
            return txn.delete(table, pk)

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        return self.table(table).get(pk)

    def get_or_none(self, table: str, pk: Any) -> dict[str, Any] | None:
        return self.table(table).get_or_none(pk)

    def query(self, table: str, *, snapshot: "Snapshot | None" = None) -> Query:
        """Start a fluent query over *table*, optionally snapshot-pinned."""
        return Query(self.table(table), snapshot=snapshot)

    def count(self, table: str) -> int:
        return len(self.table(table))

    # -- version vectors (HTTP caching) ------------------------------------------------

    @property
    def committed_seq(self) -> int:
        """The last published commit sequence number.

        The token a client's session carries for read-your-writes across
        replicas: a replica that has applied at least this sequence can
        serve the client's own writes back.
        """
        return self._committed_seq

    def version_vector(
        self, names: "Iterable[str] | None" = None
    ) -> dict[str, int]:
        """Per-table committed versions — ``{table: last commit seq}``.

        The cheap state the MVCC machinery already maintains for query
        caching, exposed so the serving tier can derive strong ``ETag``s
        from it: two reads of the same tables with equal vectors are
        guaranteed byte-identical renders (versions only move when a
        transaction commits).  With *names* the vector is restricted to
        those tables (unknown names are skipped); ``None`` returns every
        table.  Lock-free: one attribute read per table.
        """
        tables = self._tables
        if names is None:
            return {name: table.version for name, table in tables.items()}
        vector: dict[str, int] = {}
        for name in names:
            table = tables.get(name)
            if table is not None:
                vector[name] = table.version
        return vector

    # -- snapshots (MVCC read views) ---------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Open an immutable, lock-free read view at the current commit.

        The returned :class:`~repro.storage.snapshot.Snapshot` serves
        repeatable reads without ever acquiring the writer lock; commits
        that happen after the open stay invisible to it.  Open snapshots
        pin their row versions in memory — close them promptly (they are
        context managers) so pruning can reclaim superseded versions.
        """
        with self._snapshot_lock:
            sid = self._snapshot_counter
            self._snapshot_counter += 1
            seq = self._committed_seq
            self._snapshots[sid] = seq
            self._g_open_snapshots.set(len(self._snapshots))
            self._g_version_horizon.set(min(self._snapshots.values()))
        return Snapshot(self, sid, seq)

    def _release_snapshot(self, sid: int) -> None:
        with self._snapshot_lock:
            self._snapshots.pop(sid, None)
            self._g_open_snapshots.set(len(self._snapshots))
            self._g_version_horizon.set(
                min(self._snapshots.values())
                if self._snapshots
                else self._committed_seq
            )
        # Closing the oldest snapshot may unlock a swath of prunable
        # versions; sweep opportunistically if the writer lock is free
        # (never block a reader-side close behind a writer).
        if self._lock.acquire(blocking=False):
            try:
                horizon = self.version_horizon()
                for table in self._tables.values():
                    table.prune_versions(horizon)
            finally:
                self._lock.release()

    def version_horizon(self) -> int:
        """Oldest commit sequence any live snapshot may still read.

        Version chains are never cut at or above this number.  With no
        open snapshots it is the current committed sequence — only the
        latest version of each row needs to stay.
        """
        with self._snapshot_lock:
            if self._snapshots:
                return min(self._snapshots.values())
            return self._committed_seq

    def open_snapshots(self) -> int:
        with self._snapshot_lock:
            return len(self._snapshots)

    def prune_versions(self) -> dict[str, int]:
        """Blocking sweep of every table's version chains.

        Takes the writer lock; returns reclaimed node counts per table.
        The write path and snapshot closes already prune lazily — this
        exists for admin tooling and tests.
        """
        with self._lock:
            horizon = self.version_horizon()
            reclaimed = {
                name: table.prune_versions(horizon)
                for name, table in self._tables.items()
            }
            self._g_retained_versions.set(
                sum(
                    tbl.version_statistics()["nodes"]
                    for tbl in self._tables.values()
                )
            )
            return reclaimed

    def _reserve_commit_seq(self) -> int:
        """Next commit sequence number, not yet published (writer lock held)."""
        return self._committed_seq + 1

    def _publish_commit_seq(self, seq: int) -> None:
        """Make *seq* visible to snapshot opens (after stamping)."""
        self._committed_seq = seq

    # -- WAL encoding ------------------------------------------------------------------

    def _encode_row_for_wal(
        self, table: str, row: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        if row is None:
            return None
        schema = self.table(table).schema
        # Only DATETIME values need transforming; every other type is
        # already JSON-safe, so most tables skip the per-value pass.
        if schema.wal_passthrough:
            return row
        return {
            name: to_jsonable(value, schema.column(name).type)
            for name, value in row.items()
        }

    def _decode_row_from_wal(
        self, table: str, row: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        if row is None:
            return None
        schema = self.table(table).schema
        return {
            name: from_jsonable(value, schema.column(name).type)
            for name, value in row.items()
            if schema.has_column(name)
        }

    # -- snapshots & recovery -----------------------------------------------------------

    def checkpoint(self) -> Path:
        """Write a full snapshot and reset the WAL.  Returns snapshot path."""
        if self._path is None:
            raise SchemaError("checkpoint requires a database directory")
        timer = self.obs.timer()
        with self._lock:
            # The commit sequence rides along in the snapshot *and* the
            # post-reset WAL marker: resetting the log discards every
            # seq-carrying commit record, and a counter that regressed
            # across a restart would re-issue numbers replication has
            # already shipped (a reconnecting replica could then pass
            # the chain-point check and silently diverge).  Two copies
            # cover a crash between the snapshot rename and the marker
            # append.
            seq = self._committed_seq
            # Planner statistics ride in the meta block: recovery could
            # rebuild them by re-sampling the replayed rows, but the
            # reservoirs would then depend on replay order — persisting
            # the sampler state keeps NDV estimates (and therefore plan
            # choices) identical across a restart.
            snapshot: dict[str, Any] = {
                SNAPSHOT_META_KEY: {
                    "seq": seq,
                    "stats": {
                        name: table.stats_state()
                        for name, table in self._tables.items()
                    },
                }
            }
            for name, table in self._tables.items():
                snapshot[name] = [
                    self._encode_row_for_wal(name, row)
                    for row in table.rows()
                ]
            target = self._path / SNAPSHOT_NAME
            tmp = target.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, separators=(",", ":"), default=str)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
            if self._wal is not None:
                self._wal.reset()
                self._wal.append_checkpoint_marker(SNAPSHOT_NAME, seq=seq)
            elapsed = timer.elapsed()
            self._m_checkpoint.observe(elapsed)
            self.obs.log.log(
                "storage.checkpoint", path=str(target), duration=elapsed
            )
            return target

    def recover(
        self,
        *,
        resolve_prepared: "Callable[[str], str] | None" = None,
    ) -> dict[str, int]:
        """Load the latest snapshot, replay the WAL, heal a torn tail.

        Must be called after every table has been declared (schemas live
        in code).  Returns ``{"snapshot_rows": n, "wal_txns": m, ...}``.

        ``prepare`` records left by a crashed two-phase commit are
        *in-doubt*: the shard voted yes but never saw the outcome.  A
        prepare terminated later in the log — by a commit record with
        the same gtid, or an ``abort`` record — is settled; the
        terminator decides.  Leftover prepares are resolved through
        *resolve_prepared*, the coordinator's decision log: it maps a
        gtid to ``"commit"`` or ``"abort"``.  With no resolver (a shard
        opened standalone) the presumed-abort rule applies.  Either way
        the resolution is made durable by appending the corresponding
        commit/abort record, so a future recovery of the same log
        reaches the same answer without the resolver.
        """
        if self._path is None:
            raise SchemaError("recover requires a database directory")
        stats = {
            "snapshot_rows": 0,
            "wal_txns": 0,
            "resolved_commits": 0,
            "resolved_aborts": 0,
        }
        timer = self.obs.timer()
        checkpoint_seq = 0
        with self._lock:
            snapshot_path = self._path / SNAPSHOT_NAME
            if snapshot_path.exists():
                with open(snapshot_path, "r", encoding="utf-8") as fh:
                    snapshot = json.load(fh)
                meta = snapshot.pop(SNAPSHOT_META_KEY, None)
                if isinstance(meta, dict) and isinstance(meta.get("seq"), int):
                    checkpoint_seq = meta["seq"]
                for name, rows in snapshot.items():
                    if name not in self._tables:
                        raise SchemaError(
                            f"snapshot contains unknown table {name!r}; "
                            "declare schemas before recover()"
                        )
                    table = self._tables[name]
                    for encoded in rows:
                        decoded = self._decode_row_from_wal(name, encoded)
                        assert decoded is not None
                        table.apply_insert(decoded)
                        stats["snapshot_rows"] += 1
                # Restore the checkpoint-time sampler state, replacing
                # the reservoirs the snapshot load just re-sampled; WAL
                # replay below then feeds its increments on top — the
                # same stream the pre-crash process saw.
                if isinstance(meta, dict) and isinstance(
                    meta.get("stats"), dict
                ):
                    for name, state in meta["stats"].items():
                        if name in self._tables and isinstance(state, dict):
                            self._tables[name].restore_stats(state)
            replayed_seq = 0
            # gtid -> prepare record, in log order.  A later commit
            # record with the same gtid (phase 2 ran) or an abort record
            # terminates the prepare; survivors are in-doubt.
            in_doubt: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
            if self._wal is not None:
                try:
                    for record in self._wal.records():
                        kind = record.get("kind")
                        record_seq = record.get("seq")
                        if kind == "checkpoint":
                            # The marker re-states the snapshot's seq so
                            # the counter survives even if the snapshot
                            # file predates the meta block.
                            if isinstance(record_seq, int):
                                checkpoint_seq = max(
                                    checkpoint_seq, record_seq
                                )
                            continue
                        if kind == "prepare":
                            gtid = record.get("gtid")
                            if isinstance(gtid, str):
                                in_doubt[gtid] = record
                            continue
                        if kind == "abort":
                            in_doubt.pop(record.get("gtid"), None)
                            continue
                        if kind != "commit":
                            continue
                        gtid = record.get("gtid")
                        if gtid is not None:
                            # Phase 2 reached the log: the prepare is
                            # settled and the commit record itself (not
                            # the prepare) carries the replayed ops.
                            in_doubt.pop(gtid, None)
                        self._replay_commit(record)
                        if isinstance(record_seq, int):
                            replayed_seq = max(replayed_seq, record_seq)
                        stats["wal_txns"] += 1
                except WalCorruption:
                    raise
                self._wal.truncate_torn_tail()
            # Replay applied rows outside any transaction; settle them
            # into one committed version per table (a single fresh
            # commit sequence number) so the query cache starts from a
            # clean, non-dirty state and every row carries exactly one
            # current version.
            seq = self._committed_seq + 1
            settled = False
            for table in self._tables.values():
                if table.dirty:
                    table.commit_version(seq)
                    settled = True
            if settled:
                self._committed_seq = seq
            # Commit records carry their sequence number since PR 5, and
            # checkpoints persist it in the snapshot meta + WAL marker.
            # Restoring the highest of the three keeps the counter
            # monotonic across every restart — including a restart right
            # after a checkpoint, where no commit record remains in the
            # log — so the primary never re-issues a sequence number and
            # a restarted replica reports a truthful resume position.
            self._committed_seq = max(
                self._committed_seq, replayed_seq, checkpoint_seq
            )
            # Resolve in-doubt prepares, in log order.  The torn tail is
            # already healed, so the resolution records appended here
            # land on a clean log; re-appending the decision (a commit
            # record with the gtid, or an abort record) makes the
            # resolution durable — the next recovery of this log finds a
            # terminated prepare and never consults a resolver.
            for gtid, record in in_doubt.items():
                outcome = "abort"
                if resolve_prepared is not None:
                    outcome = resolve_prepared(gtid)
                if outcome == "commit":
                    self._replay_commit(record)
                    seq = self._committed_seq + 1
                    for name in {op["table"] for op in record["ops"]}:
                        self._tables[name].commit_version(seq)
                    self._committed_seq = seq
                    stats["resolved_commits"] += 1
                    if self._wal is not None:
                        ticket = self._wal.append_resolution(record, seq=seq)
                        if ticket is not None:
                            ticket()
                else:
                    stats["resolved_aborts"] += 1
                    if self._wal is not None:
                        self._wal.append_abort(gtid)
            # No snapshot can be open during recovery, so the replayed
            # history (one version per replayed op, tombstones for
            # replayed deletes) is pure garbage: cut every chain down to
            # its current version.
            for table in self._tables.values():
                table.prune_versions(self._committed_seq)
        elapsed = timer.elapsed()
        self._m_recover.observe(elapsed)
        self.obs.log.log("storage.recover", duration=elapsed, **stats)
        return stats

    def _replay_commit(self, record: dict[str, Any]) -> list[UndoEntry]:
        applied: list[UndoEntry] = []
        for op in record["ops"]:
            table = self.table(op["table"])
            # "before"/"after" are omitted when they carry nothing (an
            # insert has no before-image, a delete no after-image); use
            # .get so both the compact and the legacy encoding replay.
            if op["op"] == "insert":
                after = self._decode_row_from_wal(op["table"], op.get("after"))
                assert after is not None
                applied.append(table.apply_insert(after)[1])
            elif op["op"] == "update":
                after = self._decode_row_from_wal(op["table"], op.get("after"))
                assert after is not None
                applied.append(table.apply_update(op["pk"], after)[1])
            elif op["op"] == "delete":
                applied.append(table.apply_delete(op["pk"])[1])
        return applied

    # -- replication apply path ----------------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        """The write-ahead log (``None`` for in-memory databases)."""
        return self._wal

    @property
    def history_id(self) -> str:
        """Stable identifier of the commit history this database extends.

        Two databases share a history id only when one's commits are a
        prefix of the other's — a replica adopts its primary's id on
        bootstrap, and promotion mints a fresh one.  The replication
        handshake refuses incremental resume across different ids, so a
        replica can never silently graft onto a sequence space whose
        numbers mean something else (e.g. after the counter of an
        unrelated primary happens to cross its applied position).
        Durable databases persist the id next to the WAL.
        """
        with self._lock:
            if self._history_id is None:
                self._history_id = self._load_or_create_history()
            return self._history_id

    def _load_or_create_history(self) -> str:
        if self._path is not None:
            stored = self._path / HISTORY_NAME
            if stored.exists():
                text = stored.read_text(encoding="utf-8").strip()
                if text:
                    return text
        fresh = uuid.uuid4().hex
        self._persist_history(fresh)
        return fresh

    def _persist_history(self, history: str) -> None:
        if self._path is None:
            return
        self._path.mkdir(parents=True, exist_ok=True)
        tmp = self._path / (HISTORY_NAME + ".tmp")
        tmp.write_text(history, encoding="utf-8")
        os.replace(tmp, self._path / HISTORY_NAME)

    def adopt_history(self, history: str) -> None:
        """Take on *history* as this database's lineage (and persist it)."""
        with self._lock:
            self._history_id = history
            self._persist_history(history)

    def new_history(self) -> str:
        """Mint and adopt a fresh history id (called on promotion)."""
        fresh = uuid.uuid4().hex
        self.adopt_history(fresh)
        return fresh

    def replication_start_point(self) -> tuple[int, int]:
        """Atomically capture ``(committed_seq, wal_tail_offset)``.

        Takes the writer lock so the pair is consistent: every commit at
        or below the returned sequence has its record below the returned
        offset (pending group batches are drained first).  This is where
        a publisher begins tailing.
        """
        with self._lock:
            offset = 0
            if self._wal is not None:
                self._wal.sync()
                offset = self._wal.tail_offset()
            return self._committed_seq, offset

    def export_snapshot(self) -> tuple[int, dict[str, list[dict[str, Any]]]]:
        """One consistent, JSON-safe copy of every table for bootstrap.

        Served from an MVCC snapshot, so concurrent commits neither
        block nor tear the export.  Table order in the map carries no
        meaning (the wire codec sorts keys anyway);
        :meth:`load_replicated_snapshot` re-orders by its own schema.
        """
        with self.snapshot() as snap:
            tables = {
                name: [
                    self._encode_row_for_wal(name, row)
                    for row in snap.scan(name)
                ]
                for name in self.table_names()
            }
            return snap.seq, tables

    def version_vector_at(self, seq: int) -> dict[str, int]:
        """The per-table version vector as of commit sequence *seq*.

        For a table whose live version is at or below *seq* the answer
        is exact (no later commit touched it).  A table that moved past
        *seq* since the snapshot was taken is conservatively reported at
        *seq* itself — a replica bootstrapping from this vector then
        differs from the primary only until that table's next shipped
        commit restamps it, and only in the safe direction (spurious
        ``ETag`` misses, never a false match).
        """
        return {
            name: version if version <= seq else seq
            for name, version in self.version_vector().items()
        }

    def apply_replicated_commit(
        self,
        record: dict[str, Any],
        *,
        seq: int,
        trace: "TraceContext | None" = None,
    ) -> bool:
        """Apply one shipped commit record at primary sequence *seq*.

        This is the replica-side twin of :meth:`_finish_commit`: it takes
        the writer lock, replays the record's operations through the
        recovery path, appends the record (sequence number included) to
        this database's own WAL so a replica restart can replay it, then
        stamps and publishes *seq* — keeping the replica in the
        *primary's* sequence space so snapshot tokens transfer across
        the wire.

        *trace* is the originating trace context carried by the commit
        frame; registering it here keeps cascading topologies traced —
        this database's own publisher will stamp it onward.

        Returns ``False`` without touching anything when ``seq`` is not
        ahead of the published sequence (a redelivered frame); the
        caller treats that as a clean duplicate, not an error.
        """
        with self._intent_lock:
            self._write_intents += 1
        self._lock.acquire()
        ticket = None
        try:
            if seq <= self._committed_seq:
                return False
            applied = self._replay_commit(record)
            if self._wal is not None:
                try:
                    ticket = self._wal.append_replicated(record)
                except Exception as exc:
                    raise WalWriteError(
                        f"replicated commit seq={seq}: WAL append failed"
                    ) from exc
            for table in self._tables.values():
                if table.dirty:
                    table.commit_version(seq)
            self._committed_seq = seq
            if trace is not None:
                self._register_trace(seq, trace)
        finally:
            with self._intent_lock:
                self._write_intents -= 1
            self._lock.release()
        if ticket is not None:
            ticket()
        for listener in self._commit_listeners:
            listener(applied)
        for seq_listener in self._commit_seq_listeners:
            seq_listener(seq)
        return True

    def load_replicated_snapshot(
        self,
        tables: dict[str, list[dict[str, Any]]],
        *,
        seq: int,
        history: "str | None" = None,
        versions: "dict[str, int] | None" = None,
    ) -> None:
        """Replace the whole database with a bootstrap snapshot at *seq*.

        Used when a joining replica is too far behind for incremental
        tailing.  Existing rows are deleted in reverse creation order
        and the snapshot's rows inserted in creation order, so foreign
        keys hold at every step; open local snapshots keep reading their
        pinned versions (the wipe writes tombstones, it does not cut
        chains below the horizon).  The published sequence is set to
        *exactly* ``seq`` — not ``max(...)`` — because the replica must
        mirror the primary's sequence space or later frames would be
        misjudged as duplicates.  *history*, when given, is the
        primary's history id: the bootstrap makes this database a copy
        of that history, so it is adopted (and persisted) here, which is
        what later entitles the replica to an incremental resume.

        *versions*, when given, is the primary's per-table version
        vector at *seq*: each table is stamped with the primary's own
        last-commit sequence for it instead of uniformly with *seq*, so
        ``ETag``s derived from :meth:`version_vector` agree across the
        whole replica fleet from the first request after bootstrap.
        """
        with self._intent_lock:
            self._write_intents += 1
        self._lock.acquire()
        try:
            for name in reversed(list(self._tables)):
                table = self._tables[name]
                for pk in table.pks():
                    table.apply_delete(pk)
            unknown = [name for name in tables if name not in self._tables]
            if unknown:
                raise SchemaError(
                    f"bootstrap snapshot contains unknown table(s) "
                    f"{unknown!r}; replica schemas must match the primary"
                )
            # Insert in *this* database's creation order, not the wire
            # map's order — the frame codec sorts keys, but creation
            # order is the FK-topological one.
            for name, table in self._tables.items():
                for encoded in tables.get(name, ()):
                    decoded = self._decode_row_from_wal(name, encoded)
                    assert decoded is not None
                    table.apply_insert(decoded)
            for name, table in self._tables.items():
                stamp = seq
                if versions is not None:
                    stamp = min(int(versions.get(name, seq)), seq)
                if table.dirty:
                    table.commit_version(stamp)
                elif versions is not None and name in versions:
                    table.adopt_version(stamp)
            self._committed_seq = seq
            if history:
                self._history_id = history
                self._persist_history(history)
            horizon = self.version_horizon()
            for table in self._tables.values():
                table.prune_versions(horizon)
            # Persist the bootstrap as a checkpoint so the stale WAL
            # records from before the wipe can never replay over it.
            if self._durable:
                self.checkpoint()
        finally:
            with self._intent_lock:
                self._write_intents -= 1
            self._lock.release()
        for seq_listener in self._commit_seq_listeners:
            seq_listener(seq)

    # -- maintenance -------------------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        """Run every table's self-check; returns a list of problems."""
        problems: list[str] = []
        with self._lock:
            for table in self._tables.values():
                problems.extend(table.verify_integrity())
        return problems

    def rebuild_indexes(self) -> None:
        with self._lock:
            for table in self._tables.values():
                table.rebuild_indexes()

    def statistics(self) -> dict[str, Any]:
        """Row counts per table plus WAL size; powers the admin console."""
        with self._lock:
            retained = sum(
                tbl.version_statistics()["nodes"]
                for tbl in self._tables.values()
            )
            self._g_retained_versions.set(retained)
            return {
                "tables": {name: len(tbl) for name, tbl in self._tables.items()},
                "total_rows": sum(len(tbl) for tbl in self._tables.values()),
                "wal_bytes": self._wal.size_bytes() if self._wal else 0,
                "transactions": self._txn_counter,
                "durability": self.durability.spec(),
                "query_cache": self.query_cache.statistics(),
                "mvcc": {
                    "committed_seq": self._committed_seq,
                    "open_snapshots": self.open_snapshots(),
                    "version_horizon": self.version_horizon(),
                    "retained_versions": retained,
                },
            }

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- bulk iteration ------------------------------------------------------------------

    def rows(self, table: str) -> Iterator[dict[str, Any]]:
        return self.table(table).rows()
