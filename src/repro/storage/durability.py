"""Durability policies for the write-ahead log.

Every committed transaction must reach the WAL, but *when* the bytes are
forced to stable storage is a policy decision with a large performance
range (an ``fsync`` costs orders of magnitude more than a buffered
write).  Three modes:

``always``
    One ``write + fsync`` per commit, inside the commit path.  The
    strongest guarantee — a commit that returned is on disk — and the
    historical behaviour; remains the default.

``group``
    Group commit: committers enqueue their encoded records and wait;
    one *leader* performs a single ``write + fsync`` for the whole
    batch.  A commit that returned is still on disk — the guarantee is
    unchanged — but concurrent committers share the fsync cost, and the
    fsync itself happens *outside* the database writer lock, so other
    transactions apply their changes while the disk head is busy.
    ``window_ms`` bounds how long a leader waits for stragglers to join
    its batch; ``max_batch`` caps batch size.

``buffered``
    ``write + flush`` only, no fsync (the OS decides when blocks reach
    the platter).  For bulk imports where the job is re-runnable; a
    crash can lose the tail of the log.

Specs parse from strings so the mode can ride through CLI flags and
config files: ``"always"``, ``"buffered"``, ``"group"``,
``"group:5"`` (5 ms window), ``"group:5:128"`` (window + max batch).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Leader wait for stragglers, in milliseconds, when unspecified.
DEFAULT_GROUP_WINDOW_MS = 2.0
#: Batch-size cap when unspecified.
DEFAULT_GROUP_MAX_BATCH = 128

_MODES = ("always", "group", "buffered")


@dataclass(frozen=True)
class Durability:
    """One parsed durability policy (see module docstring)."""

    mode: str = "always"
    window_ms: float = DEFAULT_GROUP_WINDOW_MS
    max_batch: int = DEFAULT_GROUP_MAX_BATCH

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown durability mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.window_ms < 0:
            raise ValueError("group window must be >= 0 ms")
        if self.max_batch < 1:
            raise ValueError("group max_batch must be >= 1")

    @property
    def fsync_per_commit(self) -> bool:
        return self.mode == "always"

    @property
    def grouped(self) -> bool:
        return self.mode == "group"

    @classmethod
    def parse(cls, spec: "str | Durability | None") -> "Durability":
        """Accept a :class:`Durability`, a spec string, or ``None`` (default)."""
        if spec is None:
            return cls()
        if isinstance(spec, Durability):
            return spec
        parts = str(spec).strip().lower().split(":")
        mode = parts[0]
        if mode != "group" and len(parts) > 1:
            raise ValueError(f"mode {mode!r} takes no parameters: {spec!r}")
        window_ms = DEFAULT_GROUP_WINDOW_MS
        max_batch = DEFAULT_GROUP_MAX_BATCH
        try:
            if len(parts) > 1 and parts[1]:
                window_ms = float(parts[1])
            if len(parts) > 2 and parts[2]:
                max_batch = int(parts[2])
        except ValueError:
            raise ValueError(f"bad durability spec {spec!r}") from None
        if len(parts) > 3:
            raise ValueError(f"bad durability spec {spec!r}")
        return cls(mode=mode, window_ms=window_ms, max_batch=max_batch)

    def spec(self) -> str:
        """The canonical string form (inverse of :meth:`parse`)."""
        if self.mode == "group":
            return f"group:{self.window_ms:g}:{self.max_batch}"
        return self.mode
