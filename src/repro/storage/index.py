"""Secondary indexes.

Two flavours:

* :class:`HashIndex` — equality lookups; used for plain and composite
  secondary indexes and for unique constraints.
* :class:`SortedIndex` — equality *and* range lookups over a single
  column, kept as a sorted key list (binary search via :mod:`bisect`).

Indexes map a key (tuple of column values) to the set of primary keys of
rows carrying that key.  They are maintained synchronously by the table
on every insert/update/delete so reads never rebuild anything.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.errors import UniqueViolation
from repro.storage.types import sort_key


class HashIndex:
    """Equality index over one or more columns.

    Keys are tuples of the indexed column values.  With ``unique=True``
    the index additionally enforces at most one row per fully-non-null
    key (SQL semantics: NULLs never collide).
    """

    def __init__(self, table: str, columns: tuple[str, ...], *, unique: bool = False):
        self.table = table
        self.columns = columns
        self.unique = unique
        self._buckets: dict[tuple, set[Any]] = {}

    @property
    def name(self) -> str:
        prefix = "uq" if self.unique else "ix"
        return f"{prefix}_{self.table}_{'_'.join(self.columns)}"

    def key_for(self, row: dict[str, Any]) -> tuple:
        return tuple(row[c] for c in self.columns)

    def _enforceable(self, key: tuple) -> bool:
        """Unique constraints ignore keys containing NULL."""
        return self.unique and all(part is not None for part in key)

    def check_insert(self, row: dict[str, Any], pk: Any) -> None:
        """Raise :class:`UniqueViolation` if inserting *row* would collide."""
        key = self.key_for(row)
        if self._enforceable(key):
            existing = self._buckets.get(key)
            if existing and any(other != pk for other in existing):
                raise UniqueViolation(
                    f"duplicate value {key!r} for unique index "
                    f"{self.name!r}",
                    table=self.table,
                    constraint=self.name,
                )

    def add(self, row: dict[str, Any], pk: Any) -> None:
        self._buckets.setdefault(self.key_for(row), set()).add(pk)

    def remove(self, row: dict[str, Any], pk: Any) -> None:
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(pk)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple) -> set[Any]:
        """Return the pks of rows whose indexed columns equal *key*."""
        return set(self._buckets.get(key, ()))

    def keys(self) -> Iterator[tuple]:
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def clear(self) -> None:
        self._buckets.clear()


class SortedIndex:
    """Single-column index supporting range scans.

    Maintains a sorted list of distinct comparable keys alongside a hash
    map to pk-sets.  Keys are wrapped with
    :func:`repro.storage.types.sort_key` so mixed/None values stay
    ordered.
    """

    def __init__(self, table: str, column: str):
        self.table = table
        self.column = column
        self._sorted_keys: list[tuple] = []   # sort_key-wrapped
        self._by_key: dict[tuple, tuple[Any, set[Any]]] = {}
        # _by_key maps wrapped_key -> (raw_value, pk_set)

    @property
    def name(self) -> str:
        return f"sx_{self.table}_{self.column}"

    def add(self, row: dict[str, Any], pk: Any) -> None:
        raw = row[self.column]
        wrapped = sort_key(raw)
        entry = self._by_key.get(wrapped)
        if entry is None:
            bisect.insort(self._sorted_keys, wrapped)
            self._by_key[wrapped] = (raw, {pk})
        else:
            entry[1].add(pk)

    def remove(self, row: dict[str, Any], pk: Any) -> None:
        wrapped = sort_key(row[self.column])
        entry = self._by_key.get(wrapped)
        if entry is None:
            return
        entry[1].discard(pk)
        if not entry[1]:
            del self._by_key[wrapped]
            pos = bisect.bisect_left(self._sorted_keys, wrapped)
            if pos < len(self._sorted_keys) and self._sorted_keys[pos] == wrapped:
                del self._sorted_keys[pos]

    def lookup(self, value: Any) -> set[Any]:
        entry = self._by_key.get(sort_key(value))
        return set(entry[1]) if entry else set()

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> set[Any]:
        """Return pks with indexed value in the given (optionally open) range."""
        if low is None:
            lo_pos = 0
        else:
            wrapped_low = sort_key(low)
            lo_pos = (
                bisect.bisect_left(self._sorted_keys, wrapped_low)
                if include_low
                else bisect.bisect_right(self._sorted_keys, wrapped_low)
            )
        if high is None:
            hi_pos = len(self._sorted_keys)
        else:
            wrapped_high = sort_key(high)
            hi_pos = (
                bisect.bisect_right(self._sorted_keys, wrapped_high)
                if include_high
                else bisect.bisect_left(self._sorted_keys, wrapped_high)
            )
        result: set[Any] = set()
        for wrapped in self._sorted_keys[lo_pos:hi_pos]:
            result |= self._by_key[wrapped][1]
        return result

    def ordered_pks(self, *, descending: bool = False) -> Iterable[Any]:
        """Yield pks in indexed-value order (ties in arbitrary order)."""
        keys = reversed(self._sorted_keys) if descending else self._sorted_keys
        for wrapped in keys:
            yield from self._by_key[wrapped][1]

    def __len__(self) -> int:
        return sum(len(entry[1]) for entry in self._by_key.values())

    def clear(self) -> None:
        self._sorted_keys.clear()
        self._by_key.clear()
