"""Secondary indexes.

Two flavours:

* :class:`HashIndex` — equality lookups; used for plain and composite
  secondary indexes and for unique constraints.
* :class:`OrderedIndex` — equality, prefix, and range lookups over one
  or more columns, kept as a sorted list of composite keys (binary
  search via :mod:`bisect`).  :class:`SortedIndex` is its single-column
  specialisation with the historical scalar API.

Indexes map a key (tuple of column values) to the set of primary keys of
rows carrying that key.  They are maintained synchronously by the table
on every insert/update/delete so reads never rebuild anything.

Planner support: both flavours maintain an O(1) entry counter
(``len(index)`` is a hot path for metrics and cost estimation) and
expose cheap cardinality probes — :meth:`HashIndex.bucket_size` is an
O(1) dict hit, :meth:`OrderedIndex.estimate_range` is two binary
searches — so the cost-based planner can price candidate plans without
executing them.  Range reads are **iterator-based**:
:meth:`OrderedIndex.seek` walks the sorted keys lazily instead of
materializing a pk set, which is what makes LIMIT-aware early exit
worth planning.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.errors import UniqueViolation
from repro.storage.types import sort_key

#: Compares greater than every :func:`sort_key` result (type tags are
#: 0..5); appended to a wrapped prefix it forms the exclusive upper
#: bound of that prefix's key range.
_KEY_INFINITY = (6,)


class HashIndex:
    """Equality index over one or more columns.

    Keys are tuples of the indexed column values.  With ``unique=True``
    the index additionally enforces at most one row per fully-non-null
    key (SQL semantics: NULLs never collide).
    """

    def __init__(self, table: str, columns: tuple[str, ...], *, unique: bool = False):
        self.table = table
        self.columns = columns
        self.unique = unique
        self._buckets: dict[tuple, set[Any]] = {}
        #: Total pk entries across buckets; kept current on add/remove
        #: so ``len(index)`` is O(1) (it feeds metrics and plan costs).
        self._entries = 0

    @property
    def name(self) -> str:
        prefix = "uq" if self.unique else "ix"
        return f"{prefix}_{self.table}_{'_'.join(self.columns)}"

    def key_for(self, row: dict[str, Any]) -> tuple:
        return tuple(row[c] for c in self.columns)

    def _enforceable(self, key: tuple) -> bool:
        """Unique constraints ignore keys containing NULL."""
        return self.unique and all(part is not None for part in key)

    def check_insert(self, row: dict[str, Any], pk: Any) -> None:
        """Raise :class:`UniqueViolation` if inserting *row* would collide."""
        key = self.key_for(row)
        if self._enforceable(key):
            existing = self._buckets.get(key)
            if existing and any(other != pk for other in existing):
                raise UniqueViolation(
                    f"duplicate value {key!r} for unique index "
                    f"{self.name!r}",
                    table=self.table,
                    constraint=self.name,
                )

    def add(self, row: dict[str, Any], pk: Any) -> None:
        bucket = self._buckets.setdefault(self.key_for(row), set())
        before = len(bucket)
        bucket.add(pk)
        self._entries += len(bucket) - before

    def remove(self, row: dict[str, Any], pk: Any) -> None:
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            before = len(bucket)
            bucket.discard(pk)
            self._entries -= before - len(bucket)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple) -> set[Any]:
        """Return the pks of rows whose indexed columns equal *key*."""
        return set(self._buckets.get(key, ()))

    def bucket_size(self, key: tuple) -> int:
        """Exact row count under *key* without copying the bucket (O(1)).

        The planner prices candidate equality plans with this, so plan
        selection never materializes pk sets it may discard.
        """
        bucket = self._buckets.get(key)
        return 0 if bucket is None else len(bucket)

    def distinct_keys(self) -> int:
        """Number of distinct key tuples currently indexed (O(1))."""
        return len(self._buckets)

    def keys(self) -> Iterator[tuple]:
        return iter(self._buckets)

    def __len__(self) -> int:
        return self._entries

    def clear(self) -> None:
        self._buckets.clear()
        self._entries = 0


class OrderedIndex:
    """Ordered (range-capable) index over one or more columns.

    Maintains a sorted list of distinct composite keys alongside a hash
    map to pk-sets.  Each component is wrapped with
    :func:`repro.storage.types.sort_key` so mixed/None values stay
    ordered; composite keys compare lexicographically, which is what
    makes **prefix seeks** work: every key extending prefix ``p`` sorts
    inside ``[p, p + infinity)``.

    The index is *covering* for any column subset of :attr:`columns`:
    entries retain the raw column values, so a plan whose selected and
    residual columns all live here can be answered without touching the
    row store (see :meth:`covers` / :meth:`seek`).
    """

    def __init__(self, table: str, columns: "tuple[str, ...] | str"):
        if isinstance(columns, str):
            columns = (columns,)
        self.table = table
        self.columns = tuple(columns)
        self._sorted_keys: list[tuple] = []   # sort_key-wrapped composites
        #: wrapped key -> (raw value tuple, pk set)
        self._by_key: dict[tuple, tuple[tuple, set[Any]]] = {}
        #: Total pk entries; O(1) ``len`` for metrics and plan costing.
        self._entries = 0

    @property
    def name(self) -> str:
        # Single-column ordered indexes keep the historical sx_ prefix
        # (explain() strategies like "range:sx_t_c" are asserted by the
        # ablation benchmarks); composites get their own ox_ family.
        if len(self.columns) == 1:
            return f"sx_{self.table}_{self.columns[0]}"
        return f"ox_{self.table}_{'_'.join(self.columns)}"

    def key_for(self, row: dict[str, Any]) -> tuple:
        return tuple(row[c] for c in self.columns)

    @staticmethod
    def _wrap(raw: tuple) -> tuple:
        return tuple(sort_key(part) for part in raw)

    def covers(self, columns: Iterable[str]) -> bool:
        """Whether every column in *columns* is stored in this index."""
        own = set(self.columns)
        return all(c in own for c in columns)

    # -- maintenance -------------------------------------------------------

    def add(self, row: dict[str, Any], pk: Any) -> None:
        raw = self.key_for(row)
        wrapped = self._wrap(raw)
        entry = self._by_key.get(wrapped)
        if entry is None:
            bisect.insort(self._sorted_keys, wrapped)
            self._by_key[wrapped] = (raw, {pk})
            self._entries += 1
        else:
            before = len(entry[1])
            entry[1].add(pk)
            self._entries += len(entry[1]) - before

    def remove(self, row: dict[str, Any], pk: Any) -> None:
        wrapped = self._wrap(self.key_for(row))
        entry = self._by_key.get(wrapped)
        if entry is None:
            return
        before = len(entry[1])
        entry[1].discard(pk)
        self._entries -= before - len(entry[1])
        if not entry[1]:
            del self._by_key[wrapped]
            # The key was present in _by_key, so it is present in the
            # sorted list at exactly bisect_left — a single probe, no
            # re-check needed (the old code bisected and then compared).
            del self._sorted_keys[bisect.bisect_left(self._sorted_keys, wrapped)]

    def clear(self) -> None:
        self._sorted_keys.clear()
        self._by_key.clear()
        self._entries = 0

    def __len__(self) -> int:
        return self._entries

    # -- point lookups -----------------------------------------------------

    def lookup_key(self, values: tuple) -> set[Any]:
        """Pks of rows whose indexed columns equal *values* (full key)."""
        entry = self._by_key.get(self._wrap(values))
        return set(entry[1]) if entry else set()

    def distinct_keys(self) -> int:
        """Number of distinct composite keys currently indexed (O(1))."""
        return len(self._by_key)

    def min_key(self) -> "tuple | None":
        """Smallest raw key tuple, or ``None`` when empty (O(1))."""
        if not self._sorted_keys:
            return None
        return self._by_key[self._sorted_keys[0]][0]

    def max_key(self) -> "tuple | None":
        """Largest raw key tuple, or ``None`` when empty (O(1))."""
        if not self._sorted_keys:
            return None
        return self._by_key[self._sorted_keys[-1]][0]

    # -- range machinery ---------------------------------------------------

    def _bounds(
        self,
        prefix: tuple,
        low: Any,
        high: Any,
        include_low: bool,
        include_high: bool,
        exclude_null: bool = False,
    ) -> tuple[int, int]:
        """Positions ``[lo, hi)`` in the sorted key list for a seek with
        equality on *prefix* and an optional range on the next column.

        ``exclude_null`` skips keys whose range column is NULL — range
        predicates never match NULL (SQL three-valued logic), so a seek
        with only an upper bound must not start at the NULL keys that
        sort below everything.
        """
        wrapped_prefix = self._wrap(prefix)
        if low is None:
            if exclude_null and len(prefix) < len(self.columns):
                lo_pos = bisect.bisect_left(
                    self._sorted_keys,
                    wrapped_prefix + (sort_key(None), _KEY_INFINITY),
                )
            else:
                lo_pos = bisect.bisect_left(self._sorted_keys, wrapped_prefix)
        else:
            bound = wrapped_prefix + (sort_key(low),)
            lo_pos = (
                bisect.bisect_left(self._sorted_keys, bound)
                if include_low
                else bisect.bisect_left(self._sorted_keys, bound + (_KEY_INFINITY,))
            )
        if high is None:
            hi_pos = bisect.bisect_left(
                self._sorted_keys, wrapped_prefix + (_KEY_INFINITY,)
            )
        else:
            bound = wrapped_prefix + (sort_key(high),)
            hi_pos = (
                bisect.bisect_left(self._sorted_keys, bound + (_KEY_INFINITY,))
                if include_high
                else bisect.bisect_left(self._sorted_keys, bound)
            )
        return lo_pos, hi_pos

    def estimate_range(
        self,
        prefix: tuple = (),
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
        exclude_null: bool = False,
    ) -> tuple[int, float]:
        """``(distinct_keys, estimated_rows)`` for a seek, in O(log n).

        Row estimate = matching keys × average bucket size; exact when
        every key holds one pk (unique-ish columns), an upper-ish bound
        otherwise.  This is the planner's costing probe — nothing is
        materialized.
        """
        lo_pos, hi_pos = self._bounds(
            prefix, low, high, include_low, include_high, exclude_null
        )
        keys = max(0, hi_pos - lo_pos)
        if not self._by_key:
            return 0, 0.0
        avg_bucket = self._entries / len(self._by_key)
        return keys, keys * avg_bucket

    def seek(
        self,
        prefix: tuple = (),
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
        descending: bool = False,
        exclude_null: bool = False,
    ) -> Iterator[tuple[tuple, set[Any]]]:
        """Lazily yield ``(raw_key, pk_set)`` entries in key order.

        Equality on *prefix* (possibly empty), optional range bounds on
        the column right after the prefix.  Non-materializing: the
        caller can stop after LIMIT rows and the remaining key range is
        never touched.  The yielded pk set is the live set — callers
        must not mutate it and should copy if they hold it across a
        write.
        """
        lo_pos, hi_pos = self._bounds(
            prefix, low, high, include_low, include_high, exclude_null
        )
        positions: Iterable[int] = (
            range(hi_pos - 1, lo_pos - 1, -1) if descending else range(lo_pos, hi_pos)
        )
        for pos in positions:
            # Lock-free readers can race a writer shrinking the key
            # list; results are best-effort latest-state (exactly like
            # the old materializing range()) and the query layer's
            # epoch checks keep torn results out of the cache.
            try:
                wrapped = self._sorted_keys[pos]
            except IndexError:
                break
            entry = self._by_key.get(wrapped)
            if entry is not None:
                yield entry

    def range_pks(
        self,
        prefix: tuple = (),
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
        descending: bool = False,
        exclude_null: bool = False,
    ) -> Iterator[Any]:
        """Lazily yield pks for a seek (ties in arbitrary order)."""
        for _raw, pks in self.seek(
            prefix,
            low,
            high,
            include_low=include_low,
            include_high=include_high,
            descending=descending,
            exclude_null=exclude_null,
        ):
            yield from pks

    def ordered_pks(self, *, descending: bool = False) -> Iterable[Any]:
        """Yield pks in indexed-key order (ties in arbitrary order)."""
        keys = reversed(self._sorted_keys) if descending else self._sorted_keys
        for wrapped in keys:
            yield from self._by_key[wrapped][1]


class SortedIndex(OrderedIndex):
    """Single-column ordered index with the historical scalar API."""

    def __init__(self, table: str, column: str):
        super().__init__(table, (column,))
        self.column = column

    def lookup(self, value: Any) -> set[Any]:
        return self.lookup_key((value,))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> set[Any]:
        """Materialized pk set for a scalar range (compat shim; the
        planner itself iterates :meth:`range_pks`)."""
        result: set[Any] = set()
        for pk in self.range_pks(
            (), low, high, include_low=include_low, include_high=include_high
        ):
            result.add(pk)
        return result
